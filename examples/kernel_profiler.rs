//! Nsight-style kernel profiling on the simulated GPU: pick any Table 1
//! graph and inspect traffic, cache hit rates and modelled latency for the
//! whole kernel suite.
//!
//! Run with `cargo run --release --example kernel_profiler -- [dataset] [k]`
//! e.g. `cargo run --release --example kernel_profiler -- ddi 16`.

use maxk_gnn::core::sim_kernels::profile_kernel_suite;
use maxk_gnn::gpu_sim::GpuConfig;
use maxk_gnn::graph::datasets::{DatasetSpec, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args.get(1).map(String::as_str).unwrap_or("ddi");
    let k: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(32);
    let dim = 256;

    let spec = DatasetSpec::find(dataset)
        .ok_or_else(|| format!("unknown dataset {dataset}; see Table 1 names"))?;
    let ds = spec.load(Scale::Test, 0x9e0f)?;
    let adj = &ds.csr;
    let factor = (spec.paper_nodes as f64 / adj.num_nodes() as f64).max(1.0);
    let cfg = GpuConfig::a100().scaled(factor);

    println!(
        "profiling {} stand-in: {} nodes, {} edges | dim {dim}, k {k} | A100/{factor:.0}",
        spec.name,
        adj.num_nodes(),
        adj.num_edges()
    );
    let suite = profile_kernel_suite(adj, dim, k, 32, 6, &cfg);

    println!(
        "\n{:<18} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "kernel", "L2 traffic", "L1 hit", "L2 hit", "latency", "bottleneck"
    );
    for (name, p) in [
        ("SpMM (cuSP-style)", &suite.spmm),
        ("SpMM (GNNA-style)", &suite.gnnadvisor),
        ("SpGEMM forward", &suite.spgemm),
        ("SSpMM backward", &suite.sspmm),
        ("MaxK select", &suite.maxk),
    ] {
        println!(
            "{:<18} {:>10.2}MB {:>9.1}% {:>9.1}% {:>10.3}ms {:>10}",
            name,
            p.l2_traffic_bytes() as f64 / 1e6,
            100.0 * p.l1_hit_rate(),
            100.0 * p.l2_hit_rate(),
            p.latency(&cfg) * 1e3,
            p.bottleneck(&cfg),
        );
    }
    println!(
        "\nforward speedup {:.2}x, backward {:.2}x vs cuSPARSE-style SpMM",
        suite.spmm.latency(&cfg) / suite.spgemm.latency(&cfg),
        suite.spmm.latency(&cfg) / suite.sspmm.latency(&cfg),
    );
    Ok(())
}
