//! Quickstart: train a MaxK-GNN GraphSAGE model on the Flickr stand-in
//! and compare it against the ReLU baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use maxk_gnn::graph::datasets::{Scale, TrainingDataset};
use maxk_gnn::nn::{train_full_batch, Activation, Arch, GnnModel, ModelConfig, TrainConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get a dataset: a synthetic stand-in for Flickr (89k nodes in the
    //    paper; scaled down here) with planted-community features/labels.
    let data = TrainingDataset::Flickr.generate(Scale::Train, 42)?;
    println!(
        "Flickr stand-in: {} nodes, {} edges, {} classes, {}-dim features",
        data.csr.num_nodes(),
        data.csr.num_edges(),
        data.num_classes,
        data.in_dim
    );

    // 2. Train the ReLU baseline and the MaxK model with identical
    //    hyperparameters (Table 3 preset).
    let train_cfg = TrainConfig {
        epochs: 60,
        lr: 0.001,
        seed: 7,
        eval_every: 10,
    };
    let mut results = Vec::new();
    for activation in [Activation::Relu, Activation::MaxK(32)] {
        let cfg = ModelConfig::paper_preset(
            "Flickr",
            Arch::Sage,
            activation,
            data.in_dim,
            data.num_classes,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model = GnnModel::new(cfg, &data.csr, &mut rng);
        println!(
            "\ntraining SAGE + {} ({} params)...",
            activation.label(),
            model.num_params()
        );
        let result = train_full_batch(&mut model, &data, &train_cfg);
        println!(
            "  {}: test accuracy {:.4}, {:.1} ms/epoch, aggregation share {:.1}%",
            activation.label(),
            result.best_test_metric,
            result.epoch_time_s * 1e3,
            100.0 * result.phases.agg_fraction()
        );
        results.push((activation.label(), result));
    }

    // 3. Headline: MaxK keeps accuracy while cutting aggregation work.
    let (base_label, base) = &results[0];
    let (maxk_label, maxk) = &results[1];
    println!(
        "\n{maxk_label} vs {base_label}: {:.2}x epoch speedup, accuracy {:+.4}",
        base.epoch_time_s / maxk.epoch_time_s,
        maxk.best_test_metric - base.best_test_metric,
    );
    Ok(())
}
