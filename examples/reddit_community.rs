//! Community prediction on the Reddit stand-in — the paper's headline
//! workload (Table 5 row 1): sweep MaxK k values on GraphSAGE and watch
//! the accuracy/speedup trade-off approach the Amdahl limit.
//!
//! Run with `cargo run --release --example reddit_community`.

use maxk_gnn::graph::datasets::{Scale, TrainingDataset};
use maxk_gnn::nn::{train_full_batch, Activation, Arch, GnnModel, ModelConfig, TrainConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = TrainingDataset::Reddit.generate(Scale::Train, 0x8edd)?;
    println!(
        "Reddit stand-in: {} nodes, {} edges (avg degree {:.0}), {} communities",
        data.csr.num_nodes(),
        data.csr.num_edges(),
        data.csr.avg_degree(),
        data.num_classes
    );

    let train_cfg = TrainConfig {
        epochs: 40,
        lr: 0.01,
        seed: 3,
        eval_every: 10,
    };
    let run = |activation: Activation| {
        let cfg = ModelConfig::paper_preset(
            "Reddit",
            Arch::Sage,
            activation,
            data.in_dim,
            data.num_classes,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = GnnModel::new(cfg, &data.csr, &mut rng);
        train_full_batch(&mut model, &data, &train_cfg)
    };

    let baseline = run(Activation::Relu);
    println!(
        "\nReLU baseline: accuracy {:.4}, {:.1} ms/epoch | p_SpMM = {:.2} -> Amdahl limit {:.2}x",
        baseline.best_test_metric,
        baseline.epoch_time_s * 1e3,
        baseline.phases.agg_fraction(),
        baseline.phases.amdahl_limit()
    );
    println!(
        "\n{:<8} {:>10} {:>12} {:>9}",
        "k", "accuracy", "ms/epoch", "speedup"
    );
    for k in [64usize, 32, 16, 8, 4] {
        let r = run(Activation::MaxK(k));
        println!(
            "{:<8} {:>10.4} {:>12.1} {:>8.2}x",
            k,
            r.best_test_metric,
            r.epoch_time_s * 1e3,
            baseline.epoch_time_s / r.epoch_time_s
        );
    }
    println!(
        "\nPaper (A100, full Reddit): k=32 gives 2.16x at +0.14 accuracy; k=16 gives \
         3.22x at -0.14 (Table 5). Expect the same monotone shape here."
    );
    Ok(())
}
