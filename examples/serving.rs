//! Serving round-trip: train a MaxK-GNN model, persist it as a snapshot,
//! reload it into the inference engine, demonstrate the seed-restricted
//! partial forward, serve Zipf query traffic through the micro-batching
//! server (which plans full vs. partial per batch), and finish with the
//! sharded router answering the same queries bitwise-identically from
//! halo-augmented partitions.
//!
//! Run with `cargo run --release --example serving`.

use maxk_gnn::graph::datasets::{Scale, TrainingDataset};
use maxk_gnn::graph::shard::ShardStrategy;
use maxk_gnn::nn::snapshot::ModelSnapshot;
use maxk_gnn::nn::{train_full_batch, Activation, Arch, GnnModel, ModelConfig, TrainConfig};
use maxk_gnn::serve::{
    replay, InferenceEngine, LoadConfig, OverloadPolicy, QueryOptions, QueryResponse, Server,
    ShardConfig, ShardedEngine,
};
use maxk_gnn::tensor::Matrix;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small model on the Flickr stand-in.
    let data = TrainingDataset::Flickr.generate(Scale::Test, 42)?;
    let mut cfg = ModelConfig::new(
        Arch::Sage,
        Activation::MaxK(8),
        data.in_dim,
        data.num_classes,
    );
    cfg.hidden_dim = 32;
    cfg.dropout = 0.2;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = GnnModel::new(cfg, &data.csr, &mut rng);
    let result = train_full_batch(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 30,
            lr: 0.01,
            seed: 1,
            eval_every: 10,
        },
    );
    println!(
        "trained on {} nodes: test {} {:.4}",
        data.csr.num_nodes(),
        result.metric_name,
        result.best_test_metric
    );

    // 2. Persist the model and reload it — the serving side never sees
    //    the training stack, only the snapshot file.
    std::fs::create_dir_all("target")?;
    let path = "target/serving_example.snap";
    ModelSnapshot::capture(&model).save(path)?;
    let snapshot = ModelSnapshot::load(path)?;
    println!(
        "snapshot saved + reloaded: {} params",
        snapshot.num_params()
    );

    // 3. Build the inference engine (normalization cached once).
    let features = Matrix::from_vec(data.csr.num_nodes(), data.in_dim, data.features.clone())?;
    let engine = Arc::new(InferenceEngine::from_snapshot(
        &snapshot, &data.csr, features,
    )?);

    // 3b. Seed-restricted partial forward: for a small seed set the
    //     engine expands the reverse L-hop frontier and computes only
    //     those rows — bitwise-identical logits, a fraction of the work.
    //     `logits_for` picks full vs. partial per call via the cost
    //     heuristic; the forced paths below show the equivalence.
    let seeds = [0u32, 1, 2];
    let full = engine.logits_full(&seeds)?;
    let partial = engine.logits_partial(&seeds)?;
    assert_eq!(full, partial, "partial forward must be bitwise exact");
    let plan = engine.plan_for(&seeds)?;
    println!(
        "partial forward for {} seeds: bitwise equal to full; planner picks {}",
        seeds.len(),
        if plan.is_partial() { "partial" } else { "full" }
    );

    // 3c. Start the micro-batching server; each batch plans full vs.
    //     partial over its seed union automatically. The seed-level
    //     logit cache makes repeats of hot Zipf seeds free: a fully-hot
    //     query is answered inline without reaching the engine.
    let server = Server::builder()
        .batch_window(Duration::from_millis(2))
        .max_batch(32)
        .workers(2)
        .cache_capacity(4096)
        .start(Arc::clone(&engine));

    // 4. A single seed-set query... (`query` resolves to a QueryResponse:
    //    Answered under the default Block admission policy; Rejected/Shed
    //    become possible once an overload policy is configured.)
    let handle = server.handle();
    let response = handle
        .query(&[0, 1, 2])?
        .into_answer()
        .expect("default admission answers every valid query");
    println!(
        "query for 3 seeds -> {}x{} logits (batch of {}, {:.2} ms, {} forward)",
        response.logits.rows(),
        response.logits.cols(),
        response.batch_size,
        response.latency.as_secs_f64() * 1e3,
        if response.partial { "partial" } else { "full" }
    );

    // 5. ...then closed-loop Zipf traffic from 8 concurrent clients.
    let report = replay(
        &handle,
        &LoadConfig {
            clients: 8,
            queries_per_client: 50,
            seeds_per_query: 1,
            zipf_exponent: 1.1,
            seed: 3,
        },
    )?;
    let stats = server.shutdown();
    println!(
        "served {} queries at {:.1} q/s (mean batch {:.1}, {}/{} partial batches); \
         latency p50 {:.0}us p99 {:.0}us",
        report.queries,
        report.throughput_qps,
        stats.mean_batch,
        stats.partial_batches,
        stats.batches,
        report.latency.p50_us,
        report.latency.p99_us
    );
    if let Some(cache) = stats.cache {
        println!(
            "logit cache on Zipf(1.1): {} hits / {} misses / {} coalesced \
             ({:.0}% hit rate), {} of {} queries answered without forward work",
            cache.hits,
            cache.misses,
            cache.coalesced,
            cache.hit_rate() * 100.0,
            stats.cached_queries,
            stats.queries
        );
    }

    // 6. Sharded serving: split the graph into 2 halo-augmented shards,
    //    one engine per shard behind a scatter/gather router — same
    //    Server API, bitwise-identical logits, and each shard resident
    //    only for its slice of the graph.
    let features = Matrix::from_vec(data.csr.num_nodes(), data.in_dim, data.features.clone())?;
    let sharded = ShardedEngine::from_snapshot(
        &snapshot,
        &data.csr,
        &features,
        ShardConfig {
            num_shards: 2,
            strategy: ShardStrategy::DegreeBalanced,
        },
    )?;
    for s in 0..sharded.num_shards() {
        let info = sharded.shard_info(s);
        println!(
            "shard {s}: owns {} nodes, {} ghosts, {} resident edges, {} feature rows",
            info.owned_nodes, info.ghost_nodes, info.resident_edges, info.feature_rows
        );
    }
    let sharded_logits = sharded.logits_for(&seeds)?;
    assert_eq!(
        sharded_logits, full,
        "sharded serving must be bitwise exact"
    );
    let server = Server::builder().start(Arc::new(sharded));
    let resp = server
        .handle()
        .query(&seeds)?
        .into_answer()
        .expect("default admission answers every valid query");
    assert_eq!(resp.logits, full);
    let stats = server.shutdown();
    println!(
        "sharded server answered bitwise-identically (shard batches {:?})",
        stats.shard_batches
    );

    // 7. Admission control: the same server API under an overload
    //    policy. A one-slot RejectNewest queue fed an instant burst of
    //    non-blocking submissions turns the excess away *at the door* —
    //    callers see QueryResponse::Rejected instead of waiting on an
    //    unbounded queue (see `serve_bench --offered ...` and
    //    BENCH_admission.json for the full open-loop overload sweep).
    let server = Server::builder()
        .batch_window(Duration::ZERO)
        .max_batch(1)
        .workers(1)
        .admission_capacity(1)
        .overload_policy(OverloadPolicy::RejectNewest)
        .start(Arc::clone(&engine));
    let handle = server.handle();
    let pendings: Vec<_> = (0..64u32)
        .map(|i| handle.request(&[i % 3], QueryOptions::new()))
        .collect::<Result<_, _>>()?;
    let (mut answered, mut rejected, mut shed) = (0u64, 0u64, 0u64);
    for pending in pendings {
        match pending.wait()? {
            QueryResponse::Answered(_) => answered += 1,
            QueryResponse::Rejected(_) => rejected += 1,
            QueryResponse::Shed(_) => shed += 1,
        }
    }
    let stats = server.shutdown();
    println!(
        "admission burst of 64 into a 1-slot queue: {answered} answered, \
         {rejected} rejected, {shed} shed"
    );
    assert_eq!(answered + rejected + shed, 64, "books must balance");
    assert_eq!(stats.submitted, 64);
    assert!(
        rejected > 0,
        "a 64-query burst must overflow a 1-slot queue"
    );
    println!(
        "admission books: submitted {} = answered {} + rejected {} + shed {} (queue peak {})",
        stats.submitted, stats.queries, stats.rejected, stats.shed, stats.queue_depth_peak
    );
    Ok(())
}
