//! Product-category prediction on the ogbn-products stand-in — the
//! recommendation-system workload motivating the paper's introduction —
//! with a GIN model, showing convergence parity between MaxK and ReLU
//! (Fig. 10's claim).
//!
//! Run with `cargo run --release --example product_recommender`.

use maxk_gnn::graph::datasets::{Scale, TrainingDataset};
use maxk_gnn::nn::{train_full_batch, Activation, Arch, GnnModel, ModelConfig, TrainConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = TrainingDataset::OgbnProducts.generate(Scale::Train, 0xcafe)?;
    println!(
        "ogbn-products stand-in: {} nodes, {} edges, {} product categories",
        data.csr.num_nodes(),
        data.csr.num_edges(),
        data.num_classes
    );

    let train_cfg = TrainConfig {
        epochs: 50,
        lr: 0.003,
        seed: 11,
        eval_every: 5,
    };
    let mut curves = Vec::new();
    for activation in [Activation::Relu, Activation::MaxK(32), Activation::MaxK(8)] {
        let cfg = ModelConfig::paper_preset(
            "ogbn-products",
            Arch::Gin,
            activation,
            data.in_dim,
            data.num_classes,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut model = GnnModel::new(cfg, &data.csr, &mut rng);
        println!("\ntraining GIN + {}...", activation.label());
        let result = train_full_batch(&mut model, &data, &train_cfg);
        println!(
            "  final accuracy {:.4} at {:.1} ms/epoch",
            result.final_test_metric,
            result.epoch_time_s * 1e3
        );
        curves.push((activation.label(), result));
    }

    // Convergence table (Fig. 10's shape: MaxK tracks the baseline).
    println!("\nconvergence (test accuracy):");
    print!("{:>7}", "epoch");
    for (label, _) in &curves {
        print!("{label:>10}");
    }
    println!();
    let points = curves[0].1.history.len();
    for i in 0..points {
        print!("{:>7}", curves[0].1.history[i].epoch);
        for (_, run) in &curves {
            print!("{:>10.4}", run.history[i].test_metric);
        }
        println!();
    }
    Ok(())
}
