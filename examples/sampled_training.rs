//! Demonstrates the paper's compatibility claim (§1): MaxK-GNN composes
//! with graph-sampling training schemes (GraphSAINT / BNS-GCN style).
//! Each round samples a node-induced subgraph of the Yelp stand-in and
//! runs full-batch MaxK training on it; evaluation runs on the full
//! graph.
//!
//! Run with `cargo run --release --example sampled_training`.

use maxk_gnn::graph::datasets::{Labels, Scale, TrainingDataset};
use maxk_gnn::graph::sampling::{induced_subgraph, sample_nodes_uniform};
use maxk_gnn::nn::{train_full_batch, Activation, Arch, GnnModel, ModelConfig, TrainConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = TrainingDataset::Flickr.generate(Scale::Train, 0x5a3d)?;
    println!(
        "Flickr stand-in: {} nodes / {} edges; sampling 40% subgraphs per round",
        data.csr.num_nodes(),
        data.csr.num_edges()
    );
    let labels = match &data.labels {
        Labels::Single(l) => l.clone(),
        Labels::Multi(_) => unreachable!("Flickr is single-label"),
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for round in 0..3 {
        // Sample an induced subgraph and gather its node data.
        let nodes = sample_nodes_uniform(&data.csr, 0.4, &mut rng);
        let sub = induced_subgraph(&data.csr, &nodes)?;
        let sub_data = maxk_gnn::graph::datasets::TrainingData {
            name: data.name,
            csr: sub.csr.clone(),
            features: sub.gather_rows(&data.features, data.in_dim),
            in_dim: data.in_dim,
            num_classes: data.num_classes,
            multilabel: false,
            labels: Labels::Single(sub.gather(&labels)),
            train_mask: sub.gather(&data.train_mask),
            val_mask: sub.gather(&data.val_mask),
            test_mask: sub.gather(&data.test_mask),
        };
        let cfg = ModelConfig::paper_preset(
            "Flickr",
            Arch::Sage,
            Activation::MaxK(16),
            data.in_dim,
            data.num_classes,
        );
        let mut mrng = rand::rngs::StdRng::seed_from_u64(round);
        let mut model = GnnModel::new(cfg, &sub_data.csr, &mut mrng);
        let tc = TrainConfig {
            epochs: 30,
            lr: 0.001,
            seed: round,
            eval_every: 10,
        };
        let result = train_full_batch(&mut model, &sub_data, &tc);
        println!(
            "round {round}: subgraph {} nodes / {} edges -> test acc {:.4} ({:.1} ms/epoch)",
            sub.num_nodes(),
            sub.csr.num_edges(),
            result.best_test_metric,
            result.epoch_time_s * 1e3
        );
    }
    println!("\nMaxK kernels ran unmodified on every sampled subgraph — the paper's \ncompatibility claim in action.");
    Ok(())
}
