//! Offline shim of the `criterion` 0.5 API surface used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of criterion the repo's benches use:
//! [`Criterion`], [`BenchmarkGroup`] with `bench_function` /
//! `bench_with_input` / `sample_size`, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark is warmed up briefly, then timed for a fixed number of
//! samples; mean and min/max per-iteration times are printed to stdout.
//! There are no plots, no statistics beyond the summary line, and no
//! baseline comparison — swap back to the real crate (one line in the
//! root `Cargo.toml`) for those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry / driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and harness flags) to the binary;
        // treat the first non-flag argument as a name filter, like
        // real criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.label(), sample_size, f);
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, sample_size: usize, mut f: F) {
        if !self.matches(label) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        b.report(label);
    }
}

/// A named group of benchmarks (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(&label, n, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (no-op beyond dropping; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Warm `f` up, then time `sample_size` executions.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, until ~10 ms have elapsed.
        let warmup = Duration::from_millis(10);
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= warmup {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<56} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{label:<56} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
