//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace uses.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; `sample`
/// draws one value directly.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
