//! Offline shim of the `proptest` 1.x API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of proptest the repo's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`ProptestConfig::with_cases`]. Inputs are sampled from a per-case
//! deterministic RNG; there is no shrinking — a failing case reports its
//! case index so it can be replayed (the whole run is deterministic).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `Cargo.toml` (`[workspace.dependencies] proptest = "1"`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Per-test configuration (subset: number of cases to run).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, carrying the formatted message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG for case number `case` (internal, used by the
/// [`proptest!`] expansion).
#[doc(hidden)]
pub fn __case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x70_72_6f_70 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Applies the test body to one sampled value. Exists so the closure's
/// parameter type is pinned by the `FnOnce(V)` bound (closure parameter
/// types are not inferred from later call sites).
#[doc(hidden)]
pub fn __run_case<V, F>(value: V, body: F) -> Result<(), TestCaseError>
where
    F: FnOnce(V) -> Result<(), TestCaseError>,
{
    body(value)
}

/// Assert a boolean property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "property failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "property failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Define property tests: each `fn name(pat in strategy) { body }` becomes
/// a `#[test]` that samples `strategy` for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg => $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default() => $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr => $(
        $(#[$meta:meta])+
        fn $name:ident($pat:pat in $strat:expr) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = $strat;
            for case in 0..config.cases {
                let mut rng = $crate::__case_rng(case as u64);
                let value = $crate::Strategy::sample(&strategy, &mut rng);
                let outcome = $crate::__run_case(value, |$pat| {
                    $body
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("{} failed at case {case}/{}: {e}", stringify!($name), config.cases);
                }
            }
        }
    )*};
}
