//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of `rand` 0.8 that the MaxK-GNN
//! reproduction calls: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64 — deterministic, not the upstream ChaCha12, so streams
//! differ from real `rand` but are stable across runs and platforms),
//! the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`] with
//! Fisher–Yates `shuffle`/`choose`.
//!
//! Swapping back to the real crate is a one-line change in the root
//! `Cargo.toml` (`[workspace.dependencies] rand = "0.8"`); everything
//! here type-checks against the same call sites.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of random `u64`/`u32` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`], mirroring `rand`'s `Standard`
/// distribution: floats are uniform in `[0, 1)`, integers uniform over
/// the whole domain, `bool` is a fair coin.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`], mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire multiply-shift; negligible bias for span << 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                // span == 0 means the range covers the full 64-bit domain
                // (signed or unsigned): every bit pattern is valid.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = <$t as StandardSample>::standard_sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value interface (the `rand` 0.8 `Rng` trait).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds (the `rand` 0.8 `SeedableRng` trait).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded via SplitMix64 (as real `rand` does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
