//! Sequence-related randomness (the `rand::seq` module subset).

use crate::{Rng, RngCore, SampleRange};

/// Random operations on slices (the `rand` 0.8 `SliceRandom` trait
/// subset used by this workspace).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[sample_index(rng, self.len())])
        }
    }
}

fn sample_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    (0..bound).sample_from(rng)
}
