//! Coordinate-format (edge list) graph representation.
//!
//! [`Coo`] is the construction-time format: generators emit edge lists,
//! which are then deduplicated, sorted and converted to [`Csr`] for
//! kernel consumption.
//!
//! [`Csr`]: crate::Csr

use crate::{Csr, GraphError, Result};

/// An edge list with a fixed node count.
///
/// Edges are directed `(src, dst)` pairs; use [`Coo::symmetrize`] to make
/// the adjacency symmetric (undirected), which is what all the paper's
/// datasets use.
///
/// # Example
///
/// ```
/// use maxk_graph::Coo;
///
/// # fn main() -> Result<(), maxk_graph::GraphError> {
/// let mut coo = Coo::new(4);
/// coo.push(0, 1);
/// coo.push(1, 2);
/// coo.push(3, 0);
/// let csr = coo.symmetrize().to_csr()?;
/// assert_eq!(csr.num_edges(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo {
    num_nodes: usize,
    edges: Vec<(u32, u32)>,
}

impl Coo {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Coo {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from raw pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `>=
    /// num_nodes`, and [`GraphError::EmptyGraph`] if `num_nodes == 0`.
    pub fn from_edges(num_nodes: usize, edges: Vec<(u32, u32)>) -> Result<Self> {
        if num_nodes == 0 {
            return Err(GraphError::EmptyGraph);
        }
        for &(s, d) in &edges {
            let bad = if (s as usize) >= num_nodes {
                Some(s)
            } else if (d as usize) >= num_nodes {
                Some(d)
            } else {
                None
            };
            if let Some(node) = bad {
                return Err(GraphError::NodeOutOfBounds { node, num_nodes });
            }
        }
        Ok(Coo { num_nodes, edges })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (directed) edges currently stored, including duplicates.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Appends a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds; generators are expected
    /// to produce valid ids (use [`Coo::from_edges`] for fallible bulk
    /// construction).
    pub fn push(&mut self, src: u32, dst: u32) {
        assert!(
            (src as usize) < self.num_nodes && (dst as usize) < self.num_nodes,
            "edge ({src}, {dst}) out of bounds for {} nodes",
            self.num_nodes
        );
        self.edges.push((src, dst));
    }

    /// Borrowed view of the raw edge pairs.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Adds the reverse of every edge, making the adjacency symmetric.
    ///
    /// Duplicates introduced by symmetrization are removed by
    /// [`Coo::to_csr`].
    #[must_use]
    pub fn symmetrize(mut self) -> Self {
        let rev: Vec<(u32, u32)> = self.edges.iter().map(|&(s, d)| (d, s)).collect();
        self.edges.extend(rev);
        self
    }

    /// Adds a self-loop `(i, i)` for every node (used by GCN normalization).
    #[must_use]
    pub fn with_self_loops(mut self) -> Self {
        for i in 0..self.num_nodes as u32 {
            self.edges.push((i, i));
        }
        self
    }

    /// Converts to CSR, sorting rows and removing duplicate edges.
    ///
    /// All edge values are initialised to `1.0`; apply
    /// [`normalize::normalized`](crate::normalize::normalized) to obtain
    /// aggregator-specific weights.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] for zero-node graphs.
    pub fn to_csr(&self) -> Result<Csr> {
        if self.num_nodes == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let n = self.num_nodes;
        // Counting sort by source node: O(V + E).
        let mut counts = vec![0usize; n + 1];
        for &(s, _) in &self.edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut bucket: Vec<u32> = vec![0; self.edges.len()];
        let mut cursor = counts.clone();
        for &(s, d) in &self.edges {
            bucket[cursor[s as usize]] = d;
            cursor[s as usize] += 1;
        }
        // Sort + dedup each row.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.edges.len());
        row_ptr.push(0usize);
        for i in 0..n {
            let row = &mut bucket[counts[i]..counts[i + 1]];
            row.sort_unstable();
            let mut prev: Option<u32> = None;
            for &d in row.iter() {
                if prev != Some(d) {
                    col_idx.push(d);
                    prev = Some(d);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0f32; col_idx.len()];
        Csr::from_parts(n, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut coo = Coo::new(3);
        coo.push(0, 1);
        coo.push(2, 0);
        assert_eq!(coo.num_edges(), 2);
        assert_eq!(coo.num_nodes(), 3);
    }

    #[test]
    fn from_edges_rejects_out_of_bounds() {
        let err = Coo::from_edges(2, vec![(0, 5)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                node: 5,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn from_edges_rejects_empty_graph() {
        assert_eq!(
            Coo::from_edges(0, vec![]).unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds() {
        let mut coo = Coo::new(1);
        coo.push(0, 1);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut coo = Coo::new(3);
        coo.push(0, 1);
        coo.push(1, 2);
        let sym = coo.symmetrize();
        assert_eq!(sym.num_edges(), 4);
        assert!(sym.edges().contains(&(1, 0)));
        assert!(sym.edges().contains(&(2, 1)));
    }

    #[test]
    fn to_csr_sorts_and_dedups() {
        let coo = Coo::from_edges(4, vec![(1, 3), (1, 0), (1, 3), (0, 2)]).unwrap();
        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.row(1).0, &[0, 3]);
        assert_eq!(csr.row(0).0, &[2]);
        assert_eq!(csr.row(2).0, &[] as &[u32]);
    }

    #[test]
    fn self_loops_added_once_per_node() {
        let coo = Coo::new(3).with_self_loops();
        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.num_edges(), 3);
        for i in 0..3 {
            assert_eq!(csr.row(i).0, &[i as u32]);
        }
    }

    #[test]
    fn empty_rows_are_preserved() {
        let coo = Coo::from_edges(5, vec![(4, 0)]).unwrap();
        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(4), 1);
    }
}
