//! Warp-level Edge-Group workload partitioning (§4.1 / §4.2 of the paper).
//!
//! Each nonzero of the adjacency is a *workload unit* (one edge value ×
//! one CBSR row multiply-accumulate). The paper segments every adjacency
//! row into **Edge Groups (EGs)** of at most `w` units, then maps EGs to
//! warps:
//!
//! * **Case 1** (`dim_k <= 16`): a 32-lane warp hosts `⌊32 / dim_k⌋` EGs
//!   side by side, each confined to one warp so the shared-memory
//!   accumulation never straddles warps;
//! * **Case 2** (`dim_k > 16`): one EG per warp, the warp iterating over
//!   the `dim_k` lanes in chunks of 32.
//!
//! The mapper is a single O(n) pass over the row-pointer array, matching
//! the paper's claim of a "light-weight warp-level partition mapper that
//! operates at O(n) complexity".

use crate::Csr;

/// Default maximum workload units per Edge Group (the paper's
/// hyperparameter `w`).
pub const DEFAULT_EG_WIDTH: usize = 32;

/// Number of threads in a warp on all modern NVIDIA parts.
pub const WARP_SIZE: usize = 32;

/// A contiguous chunk of one adjacency row, at most `w` nonzeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeGroup {
    /// The adjacency row this group belongs to (output node in forward).
    pub row: u32,
    /// First nonzero index (into the CSR `col_idx`/`values` arrays).
    pub start: usize,
    /// Number of nonzeros in this group (`1..=w`).
    pub len: u32,
}

/// The set of EGs a single warp executes, plus its lane geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAssignment {
    /// Indices into [`WarpPartition::groups`] executed by this warp.
    pub group_indices: Vec<usize>,
    /// Lanes each EG owns within the warp (Case 1: `dim_k`; Case 2: the
    /// full warp iterates).
    pub lanes_per_group: usize,
    /// Whether the warp iterates over the feature dimension (Case 2).
    pub iterates: bool,
}

/// Edge-Group partition of a CSR adjacency.
///
/// # Example
///
/// ```
/// use maxk_graph::{Coo, WarpPartition};
///
/// # fn main() -> Result<(), maxk_graph::GraphError> {
/// let csr = Coo::from_edges(3, vec![(0, 1), (0, 2), (1, 0)])?.to_csr()?;
/// let part = WarpPartition::build(&csr, 2);
/// assert_eq!(part.num_groups(), 2); // row 0 -> 1 EG of 2, row 1 -> 1 EG of 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpPartition {
    w: usize,
    groups: Vec<EdgeGroup>,
}

impl WarpPartition {
    /// Partitions every row of `csr` into EGs of at most `w` nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn build(csr: &Csr, w: usize) -> Self {
        assert!(w > 0, "edge-group width must be positive");
        let mut groups = Vec::with_capacity(csr.num_edges() / w + csr.num_nodes());
        let row_ptr = csr.row_ptr();
        for row in 0..csr.num_nodes() {
            let (mut start, end) = (row_ptr[row], row_ptr[row + 1]);
            while start < end {
                let len = (end - start).min(w);
                groups.push(EdgeGroup {
                    row: row as u32,
                    start,
                    len: len as u32,
                });
                start += len;
            }
        }
        WarpPartition { w, groups }
    }

    /// The maximum workload units per EG this partition was built with.
    pub fn w(&self) -> usize {
        self.w
    }

    /// All edge groups, ordered by row then offset.
    pub fn groups(&self) -> &[EdgeGroup] {
        &self.groups
    }

    /// Number of edge groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Maps EGs onto warps for a given effective feature width `dim_k`.
    ///
    /// `dim_k` is the MaxK `k` in the forward/backward sparse kernels, or
    /// the full hidden dimension for the SpMM baselines.
    ///
    /// # Panics
    ///
    /// Panics if `dim_k == 0`.
    pub fn assign_warps(&self, dim_k: usize) -> Vec<WarpAssignment> {
        assert!(dim_k > 0, "feature width must be positive");
        let mut out = Vec::new();
        if dim_k <= WARP_SIZE / 2 {
            // Case 1: several EGs share a warp.
            let egs_per_warp = (WARP_SIZE / dim_k).max(1);
            let mut i = 0;
            while i < self.groups.len() {
                let hi = (i + egs_per_warp).min(self.groups.len());
                out.push(WarpAssignment {
                    group_indices: (i..hi).collect(),
                    lanes_per_group: dim_k,
                    iterates: false,
                });
                i = hi;
            }
        } else {
            // Case 2: one EG per warp; the warp loops over the feature dim.
            for i in 0..self.groups.len() {
                out.push(WarpAssignment {
                    group_indices: vec![i],
                    lanes_per_group: WARP_SIZE,
                    iterates: true,
                });
            }
        }
        out
    }

    /// Largest imbalance ratio across EGs: `largest group length /
    /// smallest group length`.
    ///
    /// Any partition whose groups all carry the same workload — including
    /// a uniform graph whose row degrees are all some `d < w`, where every
    /// group has length `d` — returns 1.0; heavy-tailed graphs produce
    /// trailing sub-`w` groups and ratios above 1. (An earlier version
    /// divided `w` by the smallest group length, wrongly reporting `w/d`
    /// imbalance for perfectly uniform sub-`w` partitions.)
    pub fn imbalance(&self) -> f64 {
        let min = self.groups.iter().map(|g| g.len).min().unwrap_or(1).max(1);
        let max = self.groups.iter().map(|g| g.len).max().unwrap_or(1).max(1);
        max as f64 / min as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn sample_csr() -> Csr {
        generate::chung_lu_power_law(500, 12.0, 2.2, 17)
            .to_csr()
            .unwrap()
    }

    #[test]
    fn partition_covers_every_nonzero_exactly_once() {
        let csr = sample_csr();
        let part = WarpPartition::build(&csr, 8);
        let mut seen = vec![false; csr.num_edges()];
        for g in part.groups() {
            for (off, s) in seen[g.start..g.start + g.len as usize]
                .iter_mut()
                .enumerate()
            {
                assert!(!*s, "nonzero {} covered twice", g.start + off);
                *s = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some nonzeros uncovered");
    }

    #[test]
    fn groups_respect_width_and_rows() {
        let csr = sample_csr();
        let w = 8;
        let part = WarpPartition::build(&csr, w);
        let row_ptr = csr.row_ptr();
        for g in part.groups() {
            assert!(g.len as usize <= w);
            assert!(g.len > 0);
            let r = g.row as usize;
            assert!(g.start >= row_ptr[r] && g.start + g.len as usize <= row_ptr[r + 1]);
        }
    }

    #[test]
    fn group_count_matches_ceiling_formula() {
        let csr = sample_csr();
        let w = 8;
        let part = WarpPartition::build(&csr, w);
        let expected: usize = (0..csr.num_nodes())
            .map(|i| csr.degree(i).div_ceil(w))
            .sum();
        assert_eq!(part.num_groups(), expected);
    }

    #[test]
    fn case1_packs_multiple_egs_per_warp() {
        let csr = sample_csr();
        let part = WarpPartition::build(&csr, 8);
        let warps = part.assign_warps(8); // 32/8 = 4 EGs per warp
        for wa in &warps[..warps.len() - 1] {
            assert_eq!(wa.group_indices.len(), 4);
            assert_eq!(wa.lanes_per_group, 8);
            assert!(!wa.iterates);
        }
        let covered: usize = warps.iter().map(|w| w.group_indices.len()).sum();
        assert_eq!(covered, part.num_groups());
    }

    #[test]
    fn case2_one_eg_per_warp() {
        let csr = sample_csr();
        let part = WarpPartition::build(&csr, 8);
        let warps = part.assign_warps(32);
        assert_eq!(warps.len(), part.num_groups());
        for wa in &warps {
            assert_eq!(wa.group_indices.len(), 1);
            assert!(wa.iterates);
        }
    }

    #[test]
    fn case_boundary_at_16() {
        let csr = sample_csr();
        let part = WarpPartition::build(&csr, 4);
        let at16 = part.assign_warps(16);
        assert!(!at16[0].iterates, "dim_k = 16 is Case 1 per the paper");
        assert_eq!(at16[0].group_indices.len(), 2);
        let at17 = part.assign_warps(17);
        assert!(at17[0].iterates, "dim_k = 17 is Case 2");
    }

    #[test]
    fn imbalance_of_regular_partition() {
        // Row degrees all equal to w -> perfectly balanced.
        let coo = crate::Coo::from_edges(
            4,
            vec![
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 3),
                (2, 0),
                (2, 3),
                (3, 1),
                (3, 2),
            ],
        )
        .unwrap();
        let csr = coo.to_csr().unwrap();
        let part = WarpPartition::build(&csr, 2);
        assert_eq!(part.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_is_unity_for_uniform_sub_width_groups() {
        // Row degrees all d = 2 under w = 8: every group has length 2, a
        // perfectly uniform workload. The old `w / min` formula reported
        // 4.0 here; the ratio of group lengths must be 1.0.
        let coo = crate::Coo::from_edges(
            4,
            vec![
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 3),
                (2, 0),
                (2, 3),
                (3, 1),
                (3, 2),
            ],
        )
        .unwrap();
        let csr = coo.to_csr().unwrap();
        let part = WarpPartition::build(&csr, 8);
        for g in part.groups() {
            assert_eq!(g.len, 2);
        }
        assert_eq!(part.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_reflects_group_length_spread() {
        // Degrees 3 and 1 under w = 4: groups of length 3 and 1 -> 3.0.
        let coo = crate::Coo::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 0)]).unwrap();
        let csr = coo.to_csr().unwrap();
        let part = WarpPartition::build(&csr, 4);
        assert_eq!(part.imbalance(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = WarpPartition::build(&sample_csr(), 0);
    }
}
