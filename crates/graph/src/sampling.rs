//! Subgraph sampling (GraphSAINT/BNS-GCN-style compatibility).
//!
//! The paper positions MaxK-GNN as orthogonal to graph sampling and
//! partition-parallel training: "the adaptability of these novel
//! constructs aligns with current methods employed in graph partitioning
//! and graph sampling" (§1). This module provides the sampling substrate
//! that claim rests on: induced-subgraph extraction plus the two samplers
//! those systems use (uniform node sampling, random edge sampling), so a
//! MaxK model can train on sampled subgraphs exactly like a full-batch
//! graph.

use crate::{Coo, Csr, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// A sampled subgraph: renumbered adjacency plus the mapping back to the
/// parent graph's node ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Adjacency over the sampled nodes (renumbered `0..n_sub`).
    pub csr: Csr,
    /// `node_map[new_id] = old_id` into the parent graph.
    pub node_map: Vec<u32>,
}

impl Subgraph {
    /// Number of sampled nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_map.len()
    }

    /// Gathers row-major per-node data (features, labels, masks) from the
    /// parent ordering into the subgraph ordering.
    ///
    /// # Panics
    ///
    /// Panics when `data` is not `parent_nodes * width` long.
    pub fn gather_rows<T: Copy>(&self, data: &[T], width: usize) -> Vec<T> {
        assert_eq!(data.len() % width, 0, "row data not rectangular");
        let mut out = Vec::with_capacity(self.node_map.len() * width);
        for &old in &self.node_map {
            let old = old as usize;
            out.extend_from_slice(&data[old * width..(old + 1) * width]);
        }
        out
    }

    /// Gathers per-node scalars (labels, mask bits).
    pub fn gather<T: Copy>(&self, data: &[T]) -> Vec<T> {
        self.node_map
            .iter()
            .map(|&old| data[old as usize])
            .collect()
    }
}

/// Extracts the subgraph induced by `nodes` (duplicates ignored, order
/// preserved for the first occurrence).
///
/// # Errors
///
/// Propagates CSR construction errors; returns
/// [`GraphError::EmptyGraph`](crate::GraphError::EmptyGraph) when `nodes`
/// is empty.
pub fn induced_subgraph(parent: &Csr, nodes: &[u32]) -> Result<Subgraph> {
    let mut node_map = Vec::with_capacity(nodes.len());
    let mut inverse = vec![u32::MAX; parent.num_nodes()];
    for &old in nodes {
        if (old as usize) < parent.num_nodes() && inverse[old as usize] == u32::MAX {
            inverse[old as usize] = node_map.len() as u32;
            node_map.push(old);
        }
    }
    if node_map.is_empty() {
        return Err(crate::GraphError::EmptyGraph);
    }
    let mut coo = Coo::new(node_map.len());
    for (new_src, &old_src) in node_map.iter().enumerate() {
        let (cols, _) = parent.row(old_src as usize);
        for &old_dst in cols {
            let new_dst = inverse[old_dst as usize];
            if new_dst != u32::MAX {
                coo.push(new_src as u32, new_dst);
            }
        }
    }
    Ok(Subgraph {
        csr: coo.to_csr()?,
        node_map,
    })
}

/// GraphSAINT-style uniform node sampler: keeps each node independently…
/// more precisely, draws `⌈frac · n⌉` distinct nodes uniformly.
///
/// # Panics
///
/// Panics unless `0 < frac <= 1`.
pub fn sample_nodes_uniform<R: Rng>(parent: &Csr, frac: f64, rng: &mut R) -> Vec<u32> {
    assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
    let n = parent.num_nodes();
    let take = ((n as f64 * frac).ceil() as usize).clamp(1, n);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(rng);
    ids.truncate(take);
    ids.sort_unstable();
    ids
}

/// Edge sampler: draws `count` edges uniformly and returns the set of
/// endpoint nodes (the BNS-GCN boundary-sampling flavour).
pub fn sample_edge_endpoints<R: Rng>(parent: &Csr, count: usize, rng: &mut R) -> Vec<u32> {
    let nnz = parent.num_edges();
    if nnz == 0 {
        return vec![0];
    }
    let col_idx = parent.col_idx();
    let row_ptr = parent.row_ptr();
    let mut nodes = Vec::with_capacity(count * 2);
    for _ in 0..count {
        let e = rng.gen_range(0..nnz);
        // Binary search the source row of edge e.
        let src = row_ptr.partition_point(|&p| p <= e) - 1;
        nodes.push(src as u32);
        nodes.push(col_idx[e]);
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn parent() -> Csr {
        generate::chung_lu_power_law(400, 10.0, 2.2, 11)
            .to_csr()
            .unwrap()
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let p = parent();
        let nodes: Vec<u32> = (0..100).collect();
        let sub = induced_subgraph(&p, &nodes).unwrap();
        assert_eq!(sub.num_nodes(), 100);
        for new_src in 0..sub.num_nodes() {
            let old_src = sub.node_map[new_src] as usize;
            for &new_dst in sub.csr.row(new_src).0 {
                let old_dst = sub.node_map[new_dst as usize];
                assert!(
                    p.get(old_src, old_dst).is_some(),
                    "fabricated edge ({old_src},{old_dst})"
                );
            }
        }
        // Edge count equals the number of parent edges with both ends in
        // the sample.
        let expected: usize = (0..100usize)
            .map(|i| p.row(i).0.iter().filter(|&&j| (j as usize) < 100).count())
            .sum();
        assert_eq!(sub.csr.num_edges(), expected);
    }

    #[test]
    fn duplicates_are_ignored() {
        let p = parent();
        let sub = induced_subgraph(&p, &[5, 5, 7, 5, 7]).unwrap();
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.node_map, vec![5, 7]);
    }

    #[test]
    fn empty_sample_is_an_error() {
        let p = parent();
        assert!(induced_subgraph(&p, &[]).is_err());
    }

    #[test]
    fn gather_rows_follows_node_map() {
        let p = parent();
        let sub = induced_subgraph(&p, &[3, 1]).unwrap();
        let feats: Vec<f32> = (0..p.num_nodes() * 2).map(|v| v as f32).collect();
        let g = sub.gather_rows(&feats, 2);
        assert_eq!(g, vec![6.0, 7.0, 2.0, 3.0]);
        let labels: Vec<u32> = (0..p.num_nodes() as u32).collect();
        assert_eq!(sub.gather(&labels), vec![3, 1]);
    }

    #[test]
    fn uniform_sampler_respects_fraction() {
        let p = parent();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_nodes_uniform(&p, 0.25, &mut rng);
        assert_eq!(s.len(), 100);
        let mut sorted = s.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len(), "samples must be distinct");
    }

    #[test]
    fn edge_sampler_returns_real_endpoints() {
        let p = parent();
        let mut rng = StdRng::seed_from_u64(2);
        let nodes = sample_edge_endpoints(&p, 50, &mut rng);
        assert!(!nodes.is_empty());
        assert!(nodes.iter().all(|&v| (v as usize) < p.num_nodes()));
        // Induced subgraph over endpoints must contain the sampled edges'
        // worth of structure (non-empty for a connected-ish graph).
        let sub = induced_subgraph(&p, &nodes).unwrap();
        assert!(sub.csr.num_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn sampler_rejects_bad_fraction() {
        let p = parent();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_nodes_uniform(&p, 0.0, &mut rng);
    }

    #[test]
    fn sampled_training_pipeline_composes() {
        // The compatibility claim in miniature: sample -> induce -> the
        // subgraph is a valid kernel operand.
        let p = parent();
        let mut rng = StdRng::seed_from_u64(4);
        let nodes = sample_nodes_uniform(&p, 0.5, &mut rng);
        let sub = induced_subgraph(&p, &nodes).unwrap();
        sub.csr.validate().unwrap();
        let part = crate::WarpPartition::build(&sub.csr, 16);
        assert!(part.num_groups() > 0);
    }
}
