//! Dataset catalog: synthetic stand-ins for the paper's graphs.
//!
//! Table 1 of the paper lists 24 kernel-benchmark graphs; Table 3 lists the
//! five training datasets (Flickr, Yelp, Reddit, ogbn-products,
//! ogbn-proteins). None of them are available offline, so this module
//! substitutes deterministic synthetic graphs that preserve the properties
//! the MaxK-GNN kernels are sensitive to:
//!
//! * **average degree** (`nnz / N`) — the paper's §5.2 splits its speedup
//!   analysis on avg degree > 50;
//! * **heavy-tailed degree distribution** for the social/web graphs (the
//!   "power-law distributed non-zero elements" of §1) vs. flat degrees for
//!   the molecule/bio collections;
//! * node counts, scaled down by a [`Scale`] profile so CPU experiments
//!   finish in seconds while `nnz` stays large enough to exercise the
//!   kernels' cache behaviour.
//!
//! Training datasets additionally get planted-community features and
//! labels (single-label or multi-label per the original task) so that GNN
//! training genuinely converges and accuracy/speedup trade-offs can be
//! measured (Fig. 9, Table 5).

use crate::generate;
use crate::{Csr, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Degree-distribution family used for a synthetic stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Heavy-tailed Chung–Lu graph (social / web / co-purchase networks).
    PowerLaw,
    /// Flat-degree Erdős–Rényi graph (molecule / bio graph collections).
    Uniform,
}

/// Size profile controlling how far a paper dataset is scaled down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny graphs for unit tests (≤ 1.5 k nodes, ≤ 50 k nnz).
    Test,
    /// Kernel-benchmark scale (≤ 48 k nodes, ≤ 2 M nnz).
    Bench,
    /// Training scale (≤ 24 k nodes, ≤ 600 k nnz) — keeps a full
    /// multi-hundred-epoch run in seconds.
    Train,
}

impl Scale {
    fn caps(self) -> (usize, usize) {
        // (max nodes, max nnz)
        match self {
            Scale::Test => (1_500, 50_000),
            Scale::Bench => (48_000, 2_000_000),
            Scale::Train => (24_000, 600_000),
        }
    }
}

/// One entry of the Table 1 catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name exactly as printed in the paper.
    pub name: &'static str,
    /// Node count reported in Table 1.
    pub paper_nodes: usize,
    /// Edge (nnz) count reported in Table 1.
    pub paper_edges: usize,
    /// Degree-distribution family of the synthetic stand-in.
    pub kind: GraphKind,
}

impl DatasetSpec {
    /// Average degree of the paper's graph, `nnz / N`.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_nodes as f64
    }

    /// Number of nodes the stand-in uses at the given scale.
    pub fn scaled_nodes(&self, scale: Scale) -> usize {
        let (node_cap, nnz_cap) = scale.caps();
        let by_nnz = (nnz_cap as f64 / self.paper_avg_degree()).floor() as usize;
        self.paper_nodes.min(node_cap).min(by_nnz.max(256))
    }

    /// Generates the synthetic stand-in graph (symmetric, deduplicated).
    ///
    /// # Errors
    ///
    /// Propagates CSR construction errors (should not occur for valid
    /// generator output).
    pub fn load(&self, scale: Scale, seed: u64) -> Result<Dataset> {
        let n = self.scaled_nodes(scale);
        // Cap density relative to node count: a scaled graph at the
        // paper's absolute degree would be near-complete (e.g. proteins'
        // avg degree 597 on a few hundred nodes), which destroys both the
        // cache behaviour and the community structure.
        let avg = self.paper_avg_degree().min(n as f64 / 8.0);
        let coo = match self.kind {
            GraphKind::PowerLaw => generate::chung_lu_power_law(n, avg, 2.2, seed),
            GraphKind::Uniform => generate::erdos_renyi(n, avg, seed),
        };
        let csr = coo.to_csr()?;
        Ok(Dataset {
            spec: *self,
            scale,
            csr,
        })
    }

    /// Looks a spec up by (case-insensitive) name.
    pub fn find(name: &str) -> Option<&'static DatasetSpec> {
        CATALOG.iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }
}

/// A loaded kernel-benchmark dataset: spec + generated adjacency.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The catalog entry this graph stands in for.
    pub spec: DatasetSpec,
    /// The scale profile it was generated at.
    pub scale: Scale,
    /// Symmetric, deduplicated adjacency (unit edge values).
    pub csr: Csr,
}

/// The full Table 1 catalog (24 graphs).
pub const CATALOG: &[DatasetSpec] = &[
    DatasetSpec {
        name: "am",
        paper_nodes: 881_680,
        paper_edges: 5_668_682,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "amazon0505",
        paper_nodes: 410_236,
        paper_edges: 4_878_874,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "amazon0601",
        paper_nodes: 403_394,
        paper_edges: 5_478_357,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "artist",
        paper_nodes: 50_515,
        paper_edges: 1_638_396,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "citation",
        paper_nodes: 2_927_963,
        paper_edges: 30_387_995,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "collab",
        paper_nodes: 235_868,
        paper_edges: 2_358_104,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "com-amazon",
        paper_nodes: 334_863,
        paper_edges: 1_851_744,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "DD",
        paper_nodes: 334_925,
        paper_edges: 1_686_092,
        kind: GraphKind::Uniform,
    },
    DatasetSpec {
        name: "ddi",
        paper_nodes: 4_267,
        paper_edges: 2_135_822,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "Flickr",
        paper_nodes: 89_250,
        paper_edges: 989_006,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "ogbn-arxiv",
        paper_nodes: 169_343,
        paper_edges: 1_166_243,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "ogbn-products",
        paper_nodes: 2_449_029,
        paper_edges: 123_718_280,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "ogbn-proteins",
        paper_nodes: 132_534,
        paper_edges: 79_122_504,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "OVCAR-8H",
        paper_nodes: 1_889_542,
        paper_edges: 3_946_402,
        kind: GraphKind::Uniform,
    },
    DatasetSpec {
        name: "ppa",
        paper_nodes: 576_289,
        paper_edges: 42_463_862,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "PROTEINS_full",
        paper_nodes: 43_466,
        paper_edges: 162_088,
        kind: GraphKind::Uniform,
    },
    DatasetSpec {
        name: "pubmed",
        paper_nodes: 19_717,
        paper_edges: 99_203,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "ppi",
        paper_nodes: 56_944,
        paper_edges: 818_716,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "Reddit",
        paper_nodes: 232_965,
        paper_edges: 114_615_891,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "SW-620H",
        paper_nodes: 1_888_584,
        paper_edges: 3_944_206,
        kind: GraphKind::Uniform,
    },
    DatasetSpec {
        name: "TWITTER-Partial",
        paper_nodes: 580_768,
        paper_edges: 1_435_116,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "Yeast",
        paper_nodes: 1_710_902,
        paper_edges: 3_636_546,
        kind: GraphKind::Uniform,
    },
    DatasetSpec {
        name: "Yelp",
        paper_nodes: 716_847,
        paper_edges: 13_954_819,
        kind: GraphKind::PowerLaw,
    },
    DatasetSpec {
        name: "youtube",
        paper_nodes: 1_138_499,
        paper_edges: 5_980_886,
        kind: GraphKind::PowerLaw,
    },
];

/// Node labels for a training dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Labels {
    /// One class id per node (Flickr, Reddit, ogbn-products).
    Single(Vec<u32>),
    /// Row-major `n × num_classes` multi-hot matrix (Yelp, ogbn-proteins).
    Multi(Vec<u8>),
}

/// A training dataset: graph + synthesized features, labels and splits.
#[derive(Debug, Clone)]
pub struct TrainingData {
    /// Dataset name (matches the paper's Table 3 column).
    pub name: &'static str,
    /// Symmetric adjacency (unit values; normalize per aggregator).
    pub csr: Csr,
    /// Row-major `n × in_dim` input features.
    pub features: Vec<f32>,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Number of classes (or binary tasks when multi-label).
    pub num_classes: usize,
    /// Whether the task is multi-label (sigmoid + BCE) or single-label
    /// (softmax + CE).
    pub multilabel: bool,
    /// Ground-truth labels.
    pub labels: Labels,
    /// Per-node training mask.
    pub train_mask: Vec<bool>,
    /// Per-node validation mask.
    pub val_mask: Vec<bool>,
    /// Per-node test mask.
    pub test_mask: Vec<bool>,
}

/// Identifies one of the five training datasets of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingDataset {
    /// Image-type categorization, 7 classes.
    Flickr,
    /// Business-review tagging, 100-way multi-label.
    Yelp,
    /// Community prediction, 41 classes, avg degree ≈ 492.
    Reddit,
    /// Amazon product classification, 47 classes.
    OgbnProducts,
    /// Protein-function prediction, 112 binary tasks, avg degree ≈ 597.
    OgbnProteins,
}

/// All five training datasets, in the paper's column order.
pub const TRAINING_DATASETS: &[TrainingDataset] = &[
    TrainingDataset::Flickr,
    TrainingDataset::Yelp,
    TrainingDataset::Reddit,
    TrainingDataset::OgbnProducts,
    TrainingDataset::OgbnProteins,
];

struct TrainingSpec {
    name: &'static str,
    catalog_name: &'static str,
    in_dim: usize,
    num_classes: usize,
    multilabel: bool,
    splits: (f64, f64), // train, val fractions (test = remainder)
    homophily: f64,
}

impl TrainingDataset {
    fn spec(self) -> TrainingSpec {
        match self {
            TrainingDataset::Flickr => TrainingSpec {
                name: "Flickr",
                catalog_name: "Flickr",
                in_dim: 500,
                num_classes: 7,
                multilabel: false,
                splits: (0.50, 0.25),
                homophily: 0.55,
            },
            TrainingDataset::Yelp => TrainingSpec {
                name: "Yelp",
                catalog_name: "Yelp",
                in_dim: 300,
                num_classes: 100,
                multilabel: true,
                splits: (0.75, 0.10),
                homophily: 0.65,
            },
            TrainingDataset::Reddit => TrainingSpec {
                name: "Reddit",
                catalog_name: "Reddit",
                in_dim: 602,
                num_classes: 41,
                multilabel: false,
                splits: (0.66, 0.10),
                homophily: 0.75,
            },
            TrainingDataset::OgbnProducts => TrainingSpec {
                name: "ogbn-products",
                catalog_name: "ogbn-products",
                in_dim: 100,
                num_classes: 47,
                multilabel: false,
                splits: (0.40, 0.10),
                homophily: 0.75,
            },
            TrainingDataset::OgbnProteins => TrainingSpec {
                name: "ogbn-proteins",
                catalog_name: "ogbn-proteins",
                in_dim: 8,
                num_classes: 112,
                multilabel: true,
                splits: (0.65, 0.16),
                homophily: 0.70,
            },
        }
    }

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Generates the dataset (graph, features, labels, splits).
    ///
    /// # Errors
    ///
    /// Propagates CSR construction errors (should not occur for valid
    /// generator output).
    pub fn generate(self, scale: Scale, seed: u64) -> Result<TrainingData> {
        let spec = self.spec();
        let cat = DatasetSpec::find(spec.catalog_name).expect("catalog entry exists");
        let n = cat.scaled_nodes(scale);
        let avg = cat.paper_avg_degree().min(n as f64 / 8.0);
        // Scaled-down graphs cannot support as many communities as the
        // paper's full-size datasets: with fewer than ~8 members per
        // community, homophilous edges collapse to multi-edges and the
        // planted structure disappears after dedup. Cap accordingly; the
        // label space keeps the paper's class count (labels then occupy
        // the first `communities` classes).
        let communities = spec.num_classes.min((n / 8).max(2));
        let coo = generate::planted_partition(n, avg, communities, spec.homophily, 2.2, seed);
        let csr = coo.to_csr()?;

        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        // Class prototype vectors in feature space: random ±1 patterns.
        let mut prototypes = vec![0f32; communities * spec.in_dim];
        for p in prototypes.iter_mut() {
            *p = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        }
        let noise_sigma = 1.0f32;
        let mut features = vec![0f32; n * spec.in_dim];
        for i in 0..n {
            let c = generate::planted_community_of(i, communities);
            for f in 0..spec.in_dim {
                let noise = gaussian(&mut rng) as f32 * noise_sigma;
                features[i * spec.in_dim + f] = prototypes[c * spec.in_dim + f] * 0.8 + noise;
            }
        }

        let labels = if spec.multilabel {
            // Each community maps to a fixed random subset of labels.
            let mut comm_labels = vec![0u8; communities * spec.num_classes];
            for c in 0..communities {
                for l in 0..spec.num_classes {
                    // ~25% of labels hot per community, plus the identity
                    // label so every community is distinguishable.
                    let hot = l == c % spec.num_classes || rng.gen::<f64>() < 0.25;
                    comm_labels[c * spec.num_classes + l] = u8::from(hot);
                }
            }
            let mut multi = vec![0u8; n * spec.num_classes];
            for i in 0..n {
                let c = generate::planted_community_of(i, communities);
                for l in 0..spec.num_classes {
                    let mut bit = comm_labels[c * spec.num_classes + l];
                    if rng.gen::<f64>() < 0.02 {
                        bit ^= 1; // label noise
                    }
                    multi[i * spec.num_classes + l] = bit;
                }
            }
            Labels::Multi(multi)
        } else {
            Labels::Single(
                (0..n)
                    .map(|i| generate::planted_community_of(i, communities) as u32)
                    .collect(),
            )
        };

        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let train_end = (n as f64 * spec.splits.0) as usize;
        let val_end = train_end + (n as f64 * spec.splits.1) as usize;
        let mut train_mask = vec![false; n];
        let mut val_mask = vec![false; n];
        let mut test_mask = vec![false; n];
        for (rank, &node) in order.iter().enumerate() {
            if rank < train_end {
                train_mask[node] = true;
            } else if rank < val_end {
                val_mask[node] = true;
            } else {
                test_mask[node] = true;
            }
        }

        Ok(TrainingData {
            name: spec.name,
            csr,
            features,
            in_dim: spec.in_dim,
            num_classes: spec.num_classes,
            multilabel: spec.multilabel,
            labels,
            train_mask,
            val_mask,
            test_mask,
        })
    }
}

/// Standard-normal sample via Box–Muller (avoids extra dependencies).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_24_entries_matching_table1() {
        assert_eq!(CATALOG.len(), 24);
        let reddit = DatasetSpec::find("Reddit").unwrap();
        assert_eq!(reddit.paper_nodes, 232_965);
        assert_eq!(reddit.paper_edges, 114_615_891);
        assert!(reddit.paper_avg_degree() > 490.0);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(DatasetSpec::find("reddit").is_some());
        assert!(DatasetSpec::find("OGBN-PRODUCTS").is_some());
        assert!(DatasetSpec::find("nope").is_none());
    }

    #[test]
    fn scaled_nodes_respect_caps() {
        for spec in CATALOG {
            let n = spec.scaled_nodes(Scale::Test);
            assert!(n <= 1_500, "{} test scale too big: {n}", spec.name);
            let nnz_est = n as f64 * spec.paper_avg_degree();
            assert!(
                nnz_est <= 60_000.0 || n == 256,
                "{} nnz {nnz_est}",
                spec.name
            );
        }
    }

    #[test]
    fn load_preserves_average_degree_shape() {
        let spec = DatasetSpec::find("ddi").unwrap();
        let ds = spec.load(Scale::Test, 1).unwrap();
        let avg = ds.csr.avg_degree();
        // ddi paper avg degree is ~500 but test-scale caps n and density;
        // the generator should still land within a factor ~2 of the capped
        // target after dedup losses.
        let target = spec.paper_avg_degree().min(ds.csr.num_nodes() as f64 / 8.0);
        assert!(avg > target * 0.3, "avg {avg} target {target}");
    }

    #[test]
    fn pubmed_small_enough_to_keep_paper_size_at_bench_scale() {
        let spec = DatasetSpec::find("pubmed").unwrap();
        assert_eq!(spec.scaled_nodes(Scale::Bench), 19_717);
    }

    #[test]
    fn training_data_single_label() {
        let td = TrainingDataset::Flickr.generate(Scale::Test, 3).unwrap();
        let n = td.csr.num_nodes();
        assert_eq!(td.features.len(), n * td.in_dim);
        assert!(!td.multilabel);
        match &td.labels {
            Labels::Single(ls) => {
                assert_eq!(ls.len(), n);
                assert!(ls.iter().all(|&l| (l as usize) < td.num_classes));
            }
            Labels::Multi(_) => panic!("expected single-label"),
        }
    }

    #[test]
    fn training_data_multi_label() {
        let td = TrainingDataset::OgbnProteins
            .generate(Scale::Test, 3)
            .unwrap();
        let n = td.csr.num_nodes();
        assert!(td.multilabel);
        match &td.labels {
            Labels::Multi(m) => {
                assert_eq!(m.len(), n * td.num_classes);
                assert!(m.iter().all(|&b| b <= 1));
                let hot: usize = m.iter().map(|&b| b as usize).sum();
                assert!(hot > 0 && hot < m.len());
            }
            Labels::Single(_) => panic!("expected multi-label"),
        }
    }

    #[test]
    fn masks_partition_the_nodes() {
        let td = TrainingDataset::Reddit.generate(Scale::Test, 9).unwrap();
        let n = td.csr.num_nodes();
        for i in 0..n {
            let cnt = [td.train_mask[i], td.val_mask[i], td.test_mask[i]]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(cnt, 1, "node {i} in {cnt} splits");
        }
        let train: usize = td.train_mask.iter().filter(|&&b| b).count();
        assert!(train > n / 2, "Reddit train split should be ~66%");
    }

    #[test]
    fn training_generation_is_deterministic() {
        let a = TrainingDataset::Flickr.generate(Scale::Test, 5).unwrap();
        let b = TrainingDataset::Flickr.generate(Scale::Test, 5).unwrap();
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.csr, b.csr);
    }

    #[test]
    fn features_carry_class_signal() {
        let td = TrainingDataset::Flickr.generate(Scale::Test, 7).unwrap();
        // Mean intra-class feature correlation should exceed inter-class.
        let n = td.csr.num_nodes();
        let d = td.in_dim;
        let labels = match &td.labels {
            Labels::Single(l) => l,
            _ => unreachable!(),
        };
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut ni = 0;
        let mut nj = 0;
        for i in (0..n.min(200)).step_by(2) {
            for j in (1..n.min(200)).step_by(3) {
                let dot: f32 = (0..d)
                    .map(|f| td.features[i * d + f] * td.features[j * d + f])
                    .sum();
                if labels[i] == labels[j] && i != j {
                    intra += dot as f64;
                    ni += 1;
                } else if labels[i] != labels[j] {
                    inter += dot as f64;
                    nj += 1;
                }
            }
        }
        assert!(intra / ni as f64 > inter / nj.max(1) as f64 + 1.0);
    }

    #[test]
    fn all_training_datasets_generate_at_test_scale() {
        for &ds in TRAINING_DATASETS {
            let td = ds.generate(Scale::Test, 11).unwrap();
            assert!(td.csr.num_nodes() >= 256);
            assert!(td.csr.num_edges() > 0);
        }
    }
}
