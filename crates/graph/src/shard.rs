//! Node sharding with reverse-halo augmentation for sharded serving.
//!
//! A single serving engine holds the whole normalized adjacency plus the
//! full feature matrix, so its capacity is bounded by one machine's
//! memory. Sharding splits the node set into `S` owned partitions and
//! gives each shard a *self-contained* slice of the graph: the owned
//! nodes **plus** their reverse L-hop halo (ghost rows), where `L` is the
//! model depth. A GNN layer's output at node `i` reads the previous layer
//! at every in-neighbor of `i`, so after `L` layers a seed's dependency
//! cone is exactly its reverse L-hop frontier — augmenting each shard
//! with the halo of its owned set therefore makes **every seed a shard
//! owns answerable locally**, with no cross-shard communication during a
//! forward.
//!
//! The extraction reuses [`Frontier::reverse_hops`] on the owned set and
//! the [`NodeSet`] compact old→new remapping:
//!
//! * the shard's **local universe** is the frontier's input level (owned
//!   ∪ halo), and a node's local id is its rank in that sorted set;
//! * the shard's **sub-adjacency** keeps the *full* global row (values
//!   included, columns remapped to local ids) for every node that can
//!   ever be an aggregation output of a local forward — the frontier's
//!   level `L-1` — and leaves the remaining boundary-ghost rows empty,
//!   since no local forward aggregates into them.
//!
//! Because a compact remap preserves the relative order of column
//! indices, every populated row's nonzero sequence is the global row's
//! sequence — so local kernels accumulate in exactly the global order and
//! shard-served logits are **bitwise equal** to the unsharded engine's
//! (boundary-ghost rows of a local *full* forward hold garbage, but
//! nothing owned ever reads them: correctness propagates down the nested
//! frontier chain, which is fully populated).
//!
//! Extraction runs on the **already-normalized** aggregation operand —
//! re-normalizing a sub-graph would change edge values (degrees differ)
//! and break bitwise fidelity.

use crate::frontier::{Frontier, NodeSet};
use crate::{Csr, Result};

/// How [`Sharding::build`] assigns owned nodes to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Split `0..num_nodes` into `S` near-equal contiguous id ranges.
    Contiguous,
    /// Split `0..num_nodes` into `S` contiguous ranges with near-equal
    /// *total degree*, so heavy-tailed graphs don't pile their hub rows
    /// into one shard's aggregation work.
    DegreeBalanced,
}

impl ShardStrategy {
    /// Short label for reports (`contiguous` / `degree`).
    pub fn label(self) -> &'static str {
        match self {
            ShardStrategy::Contiguous => "contiguous",
            ShardStrategy::DegreeBalanced => "degree",
        }
    }
}

/// One shard: an owned node set plus its halo-augmented local subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    owned: NodeSet,
    local: NodeSet,
    adj: Csr,
    halo_hops: usize,
    populated_rows: usize,
}

impl Shard {
    /// Extracts the halo-augmented subgraph for `owned` from `adj` (the
    /// normalized aggregation operand; row `i` lists the nodes feeding
    /// output `i`), with a reverse halo of `hops` hops — the model depth
    /// the shard must serve.
    ///
    /// # Errors
    ///
    /// [`crate::GraphError::NodeOutOfBounds`] when an owned id is out of
    /// range.
    ///
    /// # Panics
    ///
    /// Panics when `owned` is empty.
    pub fn extract(adj: &Csr, owned: &[u32], hops: usize) -> Result<Shard> {
        assert!(!owned.is_empty(), "a shard must own at least one node");
        let frontier = Frontier::reverse_hops(adj, owned, hops)?;
        let local = frontier.inputs().clone();
        // Rows that any local forward can aggregate into: for seeds drawn
        // from `owned`, the per-batch frontier levels 0..hops-1 are all
        // subsets of this shard-level L-1 set, and by construction every
        // neighbor of such a row is in `local`.
        let compute: Option<&NodeSet> = if hops == 0 {
            None
        } else {
            Some(frontier.level(hops - 1))
        };
        let mut row_ptr = Vec::with_capacity(local.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut populated_rows = 0usize;
        for &g in local.ids() {
            if compute.is_some_and(|c| c.contains(g)) {
                populated_rows += 1;
                let (cols, vals) = adj.row(g as usize);
                for (&j, &v) in cols.iter().zip(vals) {
                    let lj = local
                        .compact(j)
                        .expect("halo covers every compute-row neighbor");
                    col_idx.push(lj as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        // Compact remapping preserves column order, so this revalidation
        // can only fail on an invariant bug, not on user input.
        let sub = Csr::from_parts(local.len(), row_ptr, col_idx, values)?;
        Ok(Shard {
            owned: frontier.seeds().clone(),
            local,
            adj: sub,
            halo_hops: hops,
            populated_rows,
        })
    }

    /// The owned (deduplicated, sorted) global node ids.
    pub fn owned(&self) -> &NodeSet {
        &self.owned
    }

    /// The local universe: owned ∪ halo, sorted by global id. A node's
    /// local id is its compact index here.
    pub fn local(&self) -> &NodeSet {
        &self.local
    }

    /// The remapped sub-adjacency over the local universe (rows populated
    /// for the interior, empty for boundary ghosts).
    pub fn adj(&self) -> &Csr {
        &self.adj
    }

    /// Halo depth this shard was extracted with (the model depth it can
    /// serve exactly).
    pub fn halo_hops(&self) -> usize {
        self.halo_hops
    }

    /// Ghost nodes carried beyond the owned set.
    pub fn num_ghosts(&self) -> usize {
        self.local.len() - self.owned.len()
    }

    /// Nonzeros resident in the shard's sub-adjacency — the per-shard
    /// edge-memory footprint.
    pub fn resident_edges(&self) -> usize {
        self.adj.num_edges()
    }

    /// Local rows whose adjacency is populated (the shard-level `L-1`
    /// frontier); the rest are boundary ghosts with empty rows.
    pub fn populated_rows(&self) -> usize {
        self.populated_rows
    }

    /// Local id of `global`, when the shard holds it (owned or ghost).
    pub fn to_local(&self, global: u32) -> Option<u32> {
        self.local.compact(global).map(|c| c as u32)
    }

    /// Tears the shard into `(owned, local, adj)` without cloning — the
    /// serving router moves the sub-adjacency into a per-shard engine
    /// context rather than holding it twice.
    pub fn into_parts(self) -> (NodeSet, NodeSet, Csr) {
        (self.owned, self.local, self.adj)
    }
}

/// A complete disjoint sharding of a graph's node set.
#[derive(Debug, Clone, PartialEq)]
pub struct Sharding {
    shards: Vec<Shard>,
    owner: Vec<u32>,
}

impl Sharding {
    /// Partitions `adj`'s nodes into `num_shards` owned sets per
    /// `strategy` and extracts each shard's halo-augmented subgraph with
    /// depth `hops`.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors (none occur for in-range partitions).
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is 0 or exceeds the node count.
    pub fn build(
        adj: &Csr,
        num_shards: usize,
        hops: usize,
        strategy: ShardStrategy,
    ) -> Result<Sharding> {
        let ranges = partition_nodes(adj, num_shards, strategy);
        let mut owner = vec![0u32; adj.num_nodes()];
        let mut shards = Vec::with_capacity(num_shards);
        for (s, range) in ranges.iter().enumerate() {
            for &g in range {
                owner[g as usize] = s as u32;
            }
            shards.push(Shard::extract(adj, range, hops)?);
        }
        Ok(Sharding { shards, owner })
    }

    /// The shards, in partition order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn owner_of(&self, node: u32) -> usize {
        self.owner[node as usize] as usize
    }

    /// The full node → owning-shard map.
    pub fn owner_map(&self) -> &[u32] {
        &self.owner
    }

    /// Tears the sharding into `(shards, owner_map)` without cloning.
    pub fn into_parts(self) -> (Vec<Shard>, Vec<u32>) {
        (self.shards, self.owner)
    }
}

/// Splits `0..adj.num_nodes()` into `num_shards` disjoint, covering,
/// non-empty contiguous id ranges per `strategy`.
///
/// # Panics
///
/// Panics when `num_shards` is 0 or exceeds the node count.
pub fn partition_nodes(adj: &Csr, num_shards: usize, strategy: ShardStrategy) -> Vec<Vec<u32>> {
    let n = adj.num_nodes();
    assert!(num_shards > 0, "need at least one shard");
    assert!(
        num_shards <= n,
        "cannot split {n} nodes into {num_shards} non-empty shards"
    );
    let mut ranges = Vec::with_capacity(num_shards);
    match strategy {
        ShardStrategy::Contiguous => {
            // Spread the remainder over the leading shards.
            let (base, rem) = (n / num_shards, n % num_shards);
            let mut start = 0usize;
            for s in 0..num_shards {
                let len = base + usize::from(s < rem);
                ranges.push((start as u32..(start + len) as u32).collect());
                start += len;
            }
        }
        ShardStrategy::DegreeBalanced => {
            // Greedy prefix splitting on cumulative degree: close a shard
            // once it reaches its proportional share of the remaining
            // edge mass, always leaving one node per unopened shard. The
            // last shard takes whatever remains.
            let total = adj.num_edges();
            let mut start = 0usize;
            let mut consumed = 0usize;
            for s in 0..num_shards {
                let shards_left = num_shards - s;
                let end = if shards_left == 1 {
                    n
                } else {
                    let target = (total - consumed).div_ceil(shards_left);
                    let max_end = n - (shards_left - 1);
                    let mut end = start + 1;
                    let mut mass = adj.degree(start);
                    while end < max_end && mass < target {
                        mass += adj.degree(end);
                        end += 1;
                    }
                    consumed += mass;
                    end
                };
                ranges.push((start as u32..end as u32).collect());
                start = end;
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, normalize, Aggregator};

    fn normalized_graph(n: usize, seed: u64) -> Csr {
        let csr = generate::chung_lu_power_law(n, 6.0, 2.3, seed)
            .to_csr()
            .unwrap();
        normalize::normalized(&csr, Aggregator::GcnSym)
    }

    #[test]
    fn contiguous_partition_is_disjoint_covering_nonempty() {
        let adj = normalized_graph(103, 1);
        for s in [1, 2, 4, 7] {
            let ranges = partition_nodes(&adj, s, ShardStrategy::Contiguous);
            assert_eq!(ranges.len(), s);
            let mut seen = [false; 103];
            for r in &ranges {
                assert!(!r.is_empty());
                for &g in r {
                    assert!(!seen[g as usize], "node {g} owned twice");
                    seen[g as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn degree_balanced_partition_is_disjoint_covering_nonempty() {
        let adj = normalized_graph(90, 2);
        for s in [2, 3, 5] {
            let ranges = partition_nodes(&adj, s, ShardStrategy::DegreeBalanced);
            assert_eq!(ranges.len(), s);
            let covered: usize = ranges.iter().map(Vec::len).sum();
            assert_eq!(covered, 90);
            for r in &ranges {
                assert!(!r.is_empty());
            }
        }
    }

    #[test]
    fn degree_balanced_spreads_edge_mass() {
        // A hub-heavy graph: contiguous splits put all hubs in shard 0;
        // degree balancing must keep the heaviest shard closer to even.
        let adj = normalized_graph(200, 3);
        let total = adj.num_edges() as f64;
        let mass = |ranges: &[Vec<u32>]| -> f64 {
            ranges
                .iter()
                .map(|r| r.iter().map(|&g| adj.degree(g as usize)).sum::<usize>() as f64)
                .fold(0.0f64, f64::max)
        };
        let bal = partition_nodes(&adj, 4, ShardStrategy::DegreeBalanced);
        assert!(mass(&bal) < 0.5 * total, "heaviest shard took most edges");
    }

    #[test]
    fn shard_rows_match_global_rows_bitwise() {
        let adj = normalized_graph(120, 4);
        let owned: Vec<u32> = (30..60).collect();
        let shard = Shard::extract(&adj, &owned, 2).unwrap();
        assert_eq!(shard.halo_hops(), 2);
        assert_eq!(shard.owned().ids(), owned.as_slice());
        // Every populated local row reproduces the global row, values and
        // (remapped) column order included.
        let frontier = Frontier::reverse_hops(&adj, &owned, 2).unwrap();
        let compute = frontier.level(1);
        let mut populated = 0usize;
        for (l, &g) in shard.local().ids().iter().enumerate() {
            let (lcols, lvals) = shard.adj().row(l);
            if compute.contains(g) {
                populated += 1;
                let (gcols, gvals) = adj.row(g as usize);
                assert_eq!(lvals, gvals, "row {g} values");
                let mapped: Vec<u32> = gcols.iter().map(|&j| shard.to_local(j).unwrap()).collect();
                assert_eq!(lcols, mapped.as_slice(), "row {g} columns");
            } else {
                assert!(lcols.is_empty(), "ghost row {g} must stay empty");
            }
        }
        assert_eq!(populated, shard.populated_rows());
        assert_eq!(shard.num_ghosts(), shard.local().len() - owned.len());
    }

    #[test]
    fn sharding_owner_map_matches_partition() {
        let adj = normalized_graph(80, 5);
        let sharding = Sharding::build(&adj, 3, 2, ShardStrategy::Contiguous).unwrap();
        assert_eq!(sharding.num_shards(), 3);
        for g in 0..80u32 {
            let s = sharding.owner_of(g);
            assert!(sharding.shards()[s].owned().contains(g));
            // No other shard owns it.
            for (t, sh) in sharding.shards().iter().enumerate() {
                if t != s {
                    assert!(!sh.owned().contains(g));
                }
            }
        }
        assert_eq!(sharding.owner_map().len(), 80);
    }

    #[test]
    fn local_seed_frontier_stays_inside_the_shard() {
        // The shard-answerability guarantee: the reverse L-hop frontier of
        // any owned seed subset, taken over the *local* sub-adjacency,
        // never needs a node outside the local universe, and matches the
        // global frontier node-for-node.
        let adj = normalized_graph(150, 6);
        let owned: Vec<u32> = (100..150).collect();
        let shard = Shard::extract(&adj, &owned, 3).unwrap();
        let seeds = [100u32, 131, 149];
        let local_seeds: Vec<u32> = seeds.iter().map(|&g| shard.to_local(g).unwrap()).collect();
        let local_f = Frontier::reverse_hops(shard.adj(), &local_seeds, 3).unwrap();
        let global_f = Frontier::reverse_hops(&adj, &seeds, 3).unwrap();
        for t in 0..=3 {
            let back: Vec<u32> = local_f
                .level(t)
                .ids()
                .iter()
                .map(|&l| shard.local().ids()[l as usize])
                .collect();
            assert_eq!(back.as_slice(), global_f.level(t).ids(), "level {t}");
        }
    }

    #[test]
    fn zero_hop_shard_has_no_edges() {
        let adj = normalized_graph(40, 7);
        let shard = Shard::extract(&adj, &[3, 9], 0).unwrap();
        assert_eq!(shard.local().ids(), &[3, 9]);
        assert_eq!(shard.resident_edges(), 0);
        assert_eq!(shard.populated_rows(), 0);
        assert_eq!(shard.num_ghosts(), 0);
    }

    #[test]
    fn out_of_range_owned_rejected() {
        let adj = normalized_graph(10, 8);
        assert!(Shard::extract(&adj, &[10], 1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let adj = normalized_graph(10, 9);
        let _ = partition_nodes(&adj, 0, ShardStrategy::Contiguous);
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn too_many_shards_rejected() {
        let adj = normalized_graph(4, 10);
        let _ = partition_nodes(&adj, 5, ShardStrategy::Contiguous);
    }
}
