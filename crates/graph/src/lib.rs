//! Graph substrate for the MaxK-GNN reproduction.
//!
//! This crate provides everything the MaxK-GNN kernels and training stack
//! need to know about graphs:
//!
//! * [`Coo`] and [`Csr`] sparse adjacency storage (the paper stores the
//!   adjacency in CSR for the forward pass and reuses the same buffers as a
//!   CSC view of the transpose in the backward pass, §3.2 of the paper),
//! * deterministic graph [`generate`]ors used to synthesize stand-ins for
//!   the paper's datasets (Table 1),
//! * the dataset [`datasets`] catalog itself, including feature/label
//!   synthesis for the five training datasets,
//! * degree-based edge [`normalize`]ation for GCN / GraphSAGE / GIN
//!   aggregators (Fig. 5),
//! * the O(n) warp-level Edge-Group [`partition`] mapper of §4.1/§4.2,
//! * the reverse L-hop dependency [`frontier`] used by seed-restricted
//!   partial forward on the serving path,
//! * halo-augmented node [`shard`]ing for sharded serving: each shard
//!   carries its owned nodes plus their reverse L-hop ghost rows, so any
//!   owned seed is answerable locally and bitwise-identically,
//! * a [`dynamic`]ally mutable graph for streaming serving: batched edge
//!   inserts/deletes splice the CSR and renormalize only the dirty rows,
//!   bitwise-identical to a from-scratch rebuild of the mutated graph.
//!
//! # Example
//!
//! ```
//! use maxk_graph::{generate, normalize, Aggregator};
//!
//! # fn main() -> Result<(), maxk_graph::GraphError> {
//! let coo = generate::chung_lu_power_law(1_000, 16.0, 2.3, 42);
//! let csr = coo.to_csr()?;
//! let adj = normalize::normalized(&csr, Aggregator::GcnSym);
//! assert_eq!(adj.num_nodes(), 1_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod datasets;
pub mod dynamic;
pub mod frontier;
pub mod generate;
pub mod io;
pub mod normalize;
pub mod partition;
pub mod reorder;
pub mod sampling;
pub mod shard;

pub use coo::Coo;
pub use csr::Csr;
pub use datasets::{Dataset, DatasetSpec, GraphKind, Scale, TrainingData};
pub use dynamic::{BatchEffect, DynamicGraph, EdgeMutation};
pub use frontier::{Frontier, NodeSet};
pub use normalize::Aggregator;
pub use partition::{EdgeGroup, WarpAssignment, WarpPartition};
pub use reorder::Permutation;
pub use shard::{Shard, ShardStrategy, Sharding};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating graph structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has zero nodes.
    EmptyGraph,
    /// An edge endpoint referenced a node id that is out of range.
    NodeOutOfBounds {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A CSR row pointer array was malformed (wrong length or not
    /// monotonically non-decreasing).
    MalformedRowPtr {
        /// Index in `row_ptr` where the problem was detected.
        at: usize,
    },
    /// Column indices within a CSR row were not strictly increasing.
    UnsortedRow {
        /// The row where the problem was detected.
        row: usize,
    },
    /// The `values` array length disagrees with the number of edges.
    ValueLengthMismatch {
        /// Number of stored values.
        values: usize,
        /// Number of edges implied by the structure.
        edges: usize,
    },
    /// A streaming edge mutation named the same node for both endpoints;
    /// self-loops are managed by the normalization convention, not the
    /// mutation stream.
    SelfLoopMutation {
        /// The node named as both endpoints.
        node: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "graph has zero nodes"),
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::MalformedRowPtr { at } => {
                write!(f, "malformed CSR row_ptr at index {at}")
            }
            GraphError::UnsortedRow { row } => {
                write!(f, "CSR row {row} has unsorted or duplicate column indices")
            }
            GraphError::ValueLengthMismatch { values, edges } => {
                write!(
                    f,
                    "value array has {values} entries but structure has {edges} edges"
                )
            }
            GraphError::SelfLoopMutation { node } => {
                write!(f, "edge mutation names node {node} as both endpoints")
            }
        }
    }
}

impl Error for GraphError {}

/// Convenience alias for results in this crate.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;
