//! Reverse L-hop frontier expansion for seed-restricted partial forward.
//!
//! Serving a micro-batch only needs logits at the batch's seed union, but
//! a GNN layer's output at node `i` depends on the previous layer's values
//! at every node `j` with `Â[i, j] != 0` — the column indices of row `i`
//! of the aggregation operand. Because `Â`'s rows list *in*-neighbors
//! (CSR of `Â` is the CSC view of the edge direction), walking that
//! dependency backwards is a BFS over the transpose of the original edge
//! orientation. Repeating it for `L` layers yields a nested chain of node
//! sets
//!
//! ```text
//! seeds = S_0 ⊆ S_1 ⊆ … ⊆ S_L,   S_{t+1} = S_t ∪ N_in(S_t)
//! ```
//!
//! where a partial forward computes layer `l` (0-based from the input)
//! only at the rows `S_{L-1-l}`, reading its input from `S_{L-l}`. Each
//! set carries a compact old→new id remapping ([`NodeSet`]) so the
//! row-subset kernels in `maxk-core` can address the previous layer's
//! compact output directly.
//!
//! `S_t` is always included in `S_{t+1}` even when the adjacency has no
//! self-loop at a node: SAGE's self linear and GIN's `(1 + ε)` term read
//! the layer input at the output node itself.

use crate::{Csr, GraphError, Result};

/// Sentinel in the inverse map for nodes outside the set.
const ABSENT: u32 = u32::MAX;

/// A sorted set of node ids with an O(1) global→compact inverse map.
///
/// The compact index of a node is its rank within the sorted id list, so
/// gathering rows `ids()[0..len]` of a full-graph matrix produces the
/// compact matrix the row-subset kernels consume.
///
/// # Example
///
/// ```
/// use maxk_graph::frontier::NodeSet;
///
/// let set = NodeSet::from_unsorted(&[7, 2, 7, 4], 10).unwrap();
/// assert_eq!(set.ids(), &[2, 4, 7]);
/// assert_eq!(set.compact(4), Some(1));
/// assert_eq!(set.compact(3), None);
/// assert!(set.contains(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    ids: Vec<u32>,
    /// Inverse map, `universe` entries: global id -> compact index.
    pos: Vec<u32>,
}

impl NodeSet {
    /// Builds a set from arbitrary (possibly unsorted, duplicated) ids
    /// drawn from a universe of `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfBounds`] when an id is `>= num_nodes`.
    pub fn from_unsorted(ids: &[u32], num_nodes: usize) -> Result<Self> {
        for &id in ids {
            if id as usize >= num_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: id,
                    num_nodes,
                });
            }
        }
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Ok(Self::from_sorted_unchecked(sorted, num_nodes))
    }

    /// The identity set `{0, …, num_nodes-1}` (compact index == global id).
    #[must_use]
    pub fn full(num_nodes: usize) -> Self {
        Self::from_sorted_unchecked((0..num_nodes as u32).collect(), num_nodes)
    }

    /// `ids` must be sorted, unique and `< num_nodes`.
    fn from_sorted_unchecked(ids: Vec<u32>, num_nodes: usize) -> Self {
        let mut pos = vec![ABSENT; num_nodes];
        for (c, &id) in ids.iter().enumerate() {
            pos[id as usize] = c as u32;
        }
        NodeSet { ids, pos }
    }

    /// The sorted member ids; a member's compact index is its position
    /// here.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Size of the universe the set draws from (`num_nodes` of the graph).
    pub fn universe(&self) -> usize {
        self.pos.len()
    }

    /// True when `global` is a member.
    ///
    /// # Panics
    ///
    /// Panics when `global` is outside the universe.
    pub fn contains(&self, global: u32) -> bool {
        self.pos[global as usize] != ABSENT
    }

    /// Compact index of `global`, if it is a member.
    ///
    /// # Panics
    ///
    /// Panics when `global` is outside the universe.
    #[inline]
    pub fn compact(&self, global: u32) -> Option<usize> {
        match self.pos[global as usize] {
            ABSENT => None,
            c => Some(c as usize),
        }
    }

    /// True when every member of `self` is a member of `other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        self.universe() == other.universe() && self.ids.iter().all(|&id| other.contains(id))
    }
}

/// The reverse L-hop dependency frontier of a seed set.
///
/// Level `0` is the (deduplicated, sorted) seed set; level `t+1` is level
/// `t` plus all its in-neighbors under the aggregation operand. A partial
/// forward over `hops` layers reads input features at level `hops` and
/// produces logits at level `0`.
///
/// # Example
///
/// ```
/// use maxk_graph::{frontier::Frontier, Coo};
///
/// // Chain 0 <- 1 <- 2 in aggregation orientation (row i lists inputs).
/// let adj = Coo::from_edges(3, vec![(0, 1), (1, 2)]).unwrap().to_csr().unwrap();
/// let f = Frontier::reverse_hops(&adj, &[0], 2).unwrap();
/// assert_eq!(f.seeds().ids(), &[0]);
/// assert_eq!(f.level(1).ids(), &[0, 1]);
/// assert_eq!(f.inputs().ids(), &[0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    levels: Vec<NodeSet>,
    /// Row visits per hop: entry `t` sums the degrees of level `t`.
    edge_work_per_hop: Vec<usize>,
}

impl Frontier {
    /// Expands `seeds` backwards through `hops` layers of `adj` (the
    /// aggregation operand, whose row `i` lists the nodes feeding output
    /// `i`).
    ///
    /// `edge_work` accumulates `Σ_t Σ_{i ∈ level t} degree(i)` for
    /// `t < hops` — the number of multiply-accumulate row visits a partial
    /// forward performs, comparable against `hops × num_edges` for the
    /// full forward.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfBounds`] when a seed is out of range.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty.
    pub fn reverse_hops(adj: &Csr, seeds: &[u32], hops: usize) -> Result<Frontier> {
        assert!(!seeds.is_empty(), "frontier needs at least one seed");
        let n = adj.num_nodes();
        let mut levels = Vec::with_capacity(hops + 1);
        levels.push(NodeSet::from_unsorted(seeds, n)?);
        let mut edge_work_per_hop = Vec::with_capacity(hops);
        // Worklist expansion: per hop, only newly discovered nodes are
        // collected and merged into the (sorted) previous level, so a hop
        // costs O(frontier edges + level size) — no full-graph scan.
        let mut mark = vec![false; n];
        for &i in levels[0].ids() {
            mark[i as usize] = true;
        }
        for _ in 0..hops {
            let prev = levels.last().expect("seed level pushed above");
            let mut discovered: Vec<u32> = Vec::new();
            let mut hop_work = 0usize;
            for &i in prev.ids() {
                let (cols, _) = adj.row(i as usize);
                hop_work += cols.len();
                for &j in cols {
                    if !mark[j as usize] {
                        mark[j as usize] = true;
                        discovered.push(j);
                    }
                }
            }
            discovered.sort_unstable();
            // Two-way merge of disjoint sorted lists (prev ⊆ next, the
            // discoveries are by construction not in prev).
            let mut merged = Vec::with_capacity(prev.ids().len() + discovered.len());
            let (mut a, mut b) = (prev.ids(), discovered.as_slice());
            while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                if x < y {
                    merged.push(x);
                    a = &a[1..];
                } else {
                    merged.push(y);
                    b = &b[1..];
                }
            }
            merged.extend_from_slice(a);
            merged.extend_from_slice(b);
            levels.push(NodeSet::from_sorted_unchecked(merged, n));
            edge_work_per_hop.push(hop_work);
        }
        Ok(Frontier {
            levels,
            edge_work_per_hop,
        })
    }

    /// Number of expansion hops (`levels() - 1`), i.e. the layer count the
    /// frontier was built for.
    pub fn hops(&self) -> usize {
        self.levels.len() - 1
    }

    /// Level `t` of the chain (`0` = seeds, `hops()` = inputs).
    ///
    /// # Panics
    ///
    /// Panics when `t > hops()`.
    pub fn level(&self, t: usize) -> &NodeSet {
        &self.levels[t]
    }

    /// The seed set (level 0).
    pub fn seeds(&self) -> &NodeSet {
        &self.levels[0]
    }

    /// The input-feature set (last level).
    pub fn inputs(&self) -> &NodeSet {
        self.levels.last().expect("levels never empty")
    }

    /// Total adjacency-row visits of a partial forward over this frontier
    /// (see [`Frontier::reverse_hops`]).
    pub fn edge_work(&self) -> usize {
        self.edge_work_per_hop.iter().sum()
    }

    /// Adjacency-row visits of expansion hop `t` alone: the degrees of
    /// level `t` summed. Hop `t` is the aggregation work of the model
    /// layer whose *output* set is level `t` (layer `hops() - 1 - t`,
    /// 0-based from the input), which is what lets a cost model weight
    /// each layer's aggregation by its own feature width.
    ///
    /// # Panics
    ///
    /// Panics when `t >= hops()`.
    pub fn edge_work_at(&self, t: usize) -> usize {
        self.edge_work_per_hop[t]
    }

    /// Sum of level sizes for levels `< hops` — the number of dense
    /// linear-transform rows a partial forward computes.
    pub fn row_work(&self) -> usize {
        self.levels[..self.hops()].iter().map(NodeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Coo};
    use std::collections::BTreeSet;

    fn chain() -> Csr {
        // Aggregation orientation: row i lists the nodes output i reads.
        Coo::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap()
            .to_csr()
            .unwrap()
    }

    #[test]
    fn node_set_basics() {
        let s = NodeSet::from_unsorted(&[9, 1, 1, 5], 10).unwrap();
        assert_eq!(s.ids(), &[1, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.universe(), 10);
        assert_eq!(s.compact(1), Some(0));
        assert_eq!(s.compact(5), Some(1));
        assert_eq!(s.compact(9), Some(2));
        assert_eq!(s.compact(0), None);
        assert!(s.contains(5));
        assert!(!s.contains(2));
    }

    #[test]
    fn node_set_rejects_out_of_range() {
        assert_eq!(
            NodeSet::from_unsorted(&[3], 3).unwrap_err(),
            GraphError::NodeOutOfBounds {
                node: 3,
                num_nodes: 3
            }
        );
    }

    #[test]
    fn full_set_is_identity() {
        let s = NodeSet::full(4);
        assert_eq!(s.ids(), &[0, 1, 2, 3]);
        for i in 0..4u32 {
            assert_eq!(s.compact(i), Some(i as usize));
        }
    }

    #[test]
    fn frontier_levels_nest_and_grow_along_chain() {
        let f = Frontier::reverse_hops(&chain(), &[0], 3).unwrap();
        assert_eq!(f.hops(), 3);
        assert_eq!(f.seeds().ids(), &[0]);
        assert_eq!(f.level(1).ids(), &[0, 1]);
        assert_eq!(f.level(2).ids(), &[0, 1, 2]);
        assert_eq!(f.inputs().ids(), &[0, 1, 2, 3]);
        for t in 0..f.hops() {
            assert!(f.level(t).is_subset_of(f.level(t + 1)));
        }
        // Chain degrees are 1 for rows 0..=3: work = 1 + 2 + 3.
        assert_eq!(f.edge_work(), 6);
        assert_eq!(f.edge_work_at(0), 1);
        assert_eq!(f.edge_work_at(1), 2);
        assert_eq!(f.edge_work_at(2), 3);
        assert_eq!(f.row_work(), 1 + 2 + 3);
    }

    #[test]
    fn frontier_matches_brute_force_reachability() {
        // L-hop level sets must equal <=L-step reachability (self
        // included) following adjacency rows.
        let adj = generate::chung_lu_power_law(80, 6.0, 2.3, 9)
            .to_csr()
            .unwrap();
        let seeds = [3u32, 17, 44];
        let hops = 3;
        let f = Frontier::reverse_hops(&adj, &seeds, hops).unwrap();
        let mut reach: BTreeSet<u32> = seeds.iter().copied().collect();
        for t in 0..=hops {
            let expected: Vec<u32> = reach.iter().copied().collect();
            assert_eq!(f.level(t).ids(), expected.as_slice(), "level {t}");
            let mut next = reach.clone();
            for &i in &reach {
                for &j in adj.row(i as usize).0 {
                    next.insert(j);
                }
            }
            reach = next;
        }
    }

    #[test]
    fn seed_duplicates_deduplicated() {
        let f = Frontier::reverse_hops(&chain(), &[2, 2, 0], 1).unwrap();
        assert_eq!(f.seeds().ids(), &[0, 2]);
    }

    #[test]
    fn bad_seed_rejected() {
        assert!(Frontier::reverse_hops(&chain(), &[5], 1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        let _ = Frontier::reverse_hops(&chain(), &[], 1);
    }

    #[test]
    fn zero_hops_is_just_the_seed_set() {
        let f = Frontier::reverse_hops(&chain(), &[1, 4], 0).unwrap();
        assert_eq!(f.hops(), 0);
        assert_eq!(f.seeds(), f.inputs());
        assert_eq!(f.edge_work(), 0);
        assert_eq!(f.row_work(), 0);
    }
}
