//! Compressed Sparse Row adjacency storage.
//!
//! The MaxK-GNN kernels consume the adjacency matrix in CSR. The backward
//! pass needs `Aᵀ` in CSC — which, as the paper notes in Fig. 5/7, is the
//! *same buffers* as `A` in CSR, so no extra storage is required. When the
//! adjacency is asymmetric (or edge values are asymmetric after SAGE mean
//! normalization), [`Csr::transpose`] materializes the transpose explicitly.

use crate::{GraphError, Result};

/// A sparse matrix in CSR format with `f32` edge values.
///
/// Invariants (checked by [`Csr::from_parts`] / [`Csr::validate`]):
///
/// * `row_ptr.len() == num_nodes + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing (sorted, no
///   duplicates) and `< num_nodes`;
/// * `values.len() == col_idx.len()`.
///
/// # Example
///
/// ```
/// use maxk_graph::Csr;
///
/// # fn main() -> Result<(), maxk_graph::GraphError> {
/// let csr = Csr::from_parts(3, vec![0, 2, 2, 3], vec![1, 2, 0], vec![1.0, 0.5, 2.0])?;
/// assert_eq!(csr.degree(0), 2);
/// let (cols, vals) = csr.row(0);
/// assert_eq!(cols, &[1, 2]);
/// assert_eq!(vals, &[1.0, 0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    num_nodes: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first violated invariant.
    pub fn from_parts(
        num_nodes: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        let csr = Csr {
            num_nodes,
            row_ptr,
            col_idx,
            values,
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Re-checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if self.row_ptr.len() != self.num_nodes + 1 {
            return Err(GraphError::MalformedRowPtr {
                at: self.row_ptr.len(),
            });
        }
        if self.row_ptr[0] != 0 {
            return Err(GraphError::MalformedRowPtr { at: 0 });
        }
        for i in 0..self.num_nodes {
            if self.row_ptr[i + 1] < self.row_ptr[i] {
                return Err(GraphError::MalformedRowPtr { at: i + 1 });
            }
        }
        if *self.row_ptr.last().expect("non-empty row_ptr") != self.col_idx.len() {
            return Err(GraphError::MalformedRowPtr { at: self.num_nodes });
        }
        if self.values.len() != self.col_idx.len() {
            return Err(GraphError::ValueLengthMismatch {
                values: self.values.len(),
                edges: self.col_idx.len(),
            });
        }
        for i in 0..self.num_nodes {
            let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::UnsortedRow { row: i });
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.num_nodes {
                    return Err(GraphError::NodeOutOfBounds {
                        node: last,
                        num_nodes: self.num_nodes,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of nodes (rows/columns of the square adjacency).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored nonzeros (directed edges), `nnz` in the paper.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_nodes`.
    pub fn degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Average degree `nnz / N`, the quantity the paper's kernel speedups
    /// correlate with (§5.2: graphs with average degree > 50 see the
    /// largest wins).
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_nodes as f64
    }

    /// Maximum out-degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|i| self.degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Borrowed `(columns, values)` view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_nodes`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// The raw row-pointer array (length `num_nodes + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array (length `nnz`).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw edge-value array (length `nnz`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to edge values (used by normalization).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Returns `true` if `A[i][j]` is structurally symmetric (ignoring
    /// values).
    pub fn is_structurally_symmetric(&self) -> bool {
        for i in 0..self.num_nodes {
            let (cols, _) = self.row(i);
            for &j in cols {
                let (jcols, _) = self.row(j as usize);
                if jcols.binary_search(&(i as u32)).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// Materializes the transpose `Aᵀ` as a new CSR matrix.
    ///
    /// For a structurally symmetric adjacency this only permutes values;
    /// the paper's backward SSpMM uses the identity CSC(Aᵀ) == CSR(A) and
    /// needs no copy, but value-asymmetric normalizations (SAGE mean) do
    /// need the real transpose for the gradient.
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let n = self.num_nodes;
        let mut counts = vec![0usize; n + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; self.col_idx.len()];
        let mut values = vec![0f32; self.values.len()];
        let mut cursor = counts.clone();
        for i in 0..n {
            let span = self.row_ptr[i]..self.row_ptr[i + 1];
            for (c, v) in self.col_idx[span.clone()].iter().zip(&self.values[span]) {
                let pos = cursor[*c as usize];
                col_idx[pos] = i as u32;
                values[pos] = *v;
                cursor[*c as usize] += 1;
            }
        }
        // Rows come out sorted because we scan source rows in order.
        Csr {
            num_nodes: n,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Looks up the value of entry `(i, j)`, if present.
    pub fn get(&self, i: usize, j: u32) -> Option<f32> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| vals[p])
    }

    /// Converts to a dense row-major matrix (testing helper; O(N²)).
    pub fn to_dense(&self) -> Vec<f32> {
        let n = self.num_nodes;
        let mut out = vec![0f32; n * n];
        for i in 0..n {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                out[i * n + *c as usize] = *v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // 0 -> {1, 2}, 1 -> {0}, 2 -> {0, 1}
        Csr::from_parts(
            3,
            vec![0, 2, 3, 5],
            vec![1, 2, 0, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let csr = sample();
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.max_degree(), 2);
        assert!((csr.avg_degree() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(csr.get(0, 2), Some(2.0));
        assert_eq!(csr.get(1, 2), None);
    }

    #[test]
    fn validate_rejects_bad_row_ptr() {
        let err = Csr::from_parts(2, vec![0, 3, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, GraphError::MalformedRowPtr { .. }));
    }

    #[test]
    fn validate_rejects_row_ptr_not_starting_at_zero() {
        let err = Csr::from_parts(1, vec![1, 1], vec![], vec![]).unwrap_err();
        assert_eq!(err, GraphError::MalformedRowPtr { at: 0 });
    }

    #[test]
    fn validate_rejects_unsorted_rows() {
        let err = Csr::from_parts(2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(err, GraphError::UnsortedRow { row: 0 });
    }

    #[test]
    fn validate_rejects_duplicate_columns() {
        let err = Csr::from_parts(2, vec![0, 2, 2], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(err, GraphError::UnsortedRow { row: 0 });
    }

    #[test]
    fn validate_rejects_out_of_bounds_column() {
        let err = Csr::from_parts(2, vec![0, 1, 1], vec![7], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                node: 7,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn validate_rejects_value_length_mismatch() {
        let err = Csr::from_parts(2, vec![0, 1, 1], vec![0], vec![]).unwrap_err();
        assert_eq!(
            err,
            GraphError::ValueLengthMismatch {
                values: 0,
                edges: 1
            }
        );
    }

    #[test]
    fn transpose_is_involutive() {
        let csr = sample();
        let t = csr.transpose();
        let tt = t.transpose();
        assert_eq!(csr, tt);
    }

    #[test]
    fn transpose_moves_values() {
        let csr = sample();
        let t = csr.transpose();
        // A[0][1] = 1.0 must become Aᵀ[1][0] = 1.0.
        assert_eq!(t.get(1, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(3.0));
        assert_eq!(t.get(0, 2), Some(4.0));
        t.validate().unwrap();
    }

    #[test]
    fn symmetric_graph_detected() {
        let coo = Coo::from_edges(4, vec![(0, 1), (2, 3)])
            .unwrap()
            .symmetrize();
        let csr = coo.to_csr().unwrap();
        assert!(csr.is_structurally_symmetric());

        let asym = Coo::from_edges(4, vec![(0, 1)]).unwrap().to_csr().unwrap();
        assert!(!asym.is_structurally_symmetric());
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // row * stride + col spells out the coordinates
    fn to_dense_matches_entries() {
        let csr = sample();
        let d = csr.to_dense();
        assert_eq!(d[0 * 3 + 1], 1.0);
        assert_eq!(d[0 * 3 + 2], 2.0);
        assert_eq!(d[1 * 3 + 0], 3.0);
        assert_eq!(d[2 * 3 + 0], 4.0);
        assert_eq!(d[2 * 3 + 1], 5.0);
        assert_eq!(d[1 * 3 + 2], 0.0);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            Csr::from_parts(0, vec![0], vec![], vec![]).unwrap_err(),
            GraphError::EmptyGraph
        );
    }
}
