//! Incrementally maintained graph: streaming edge mutations with splice
//! rebuilds of the CSR structure and dirty-row renormalization.
//!
//! Serving a live graph means the adjacency is no longer frozen: edge
//! inserts/deletes arrive as a stream while queries are in flight. A
//! from-scratch rebuild per mutation batch (COO assembly + sort +
//! renormalize) costs `O(E log E)` regardless of how small the batch is;
//! [`DynamicGraph`] instead keeps the **base** structural adjacency and
//! the **normalized aggregation operand** resident and applies a batch by
//!
//! 1. replaying the batch in order against current edge presence, so
//!    cancelling mutations (insert then delete) collapse to no-ops and
//!    only the *net* per-row change lists survive;
//! 2. splicing the base CSR: untouched rows are copied span-wise, changed
//!    rows are merged with their sorted add/remove lists — `O(N + E)`
//!    with no re-sorting, and only `O(changed rows)` merge work;
//! 3. recomputing operand values **only for the dirty value rows** of the
//!    configured [`Aggregator`]: the changed rows themselves, plus (for
//!    GCN's degree-coupled `1/√(d_i d_j)`) the neighbors of every row
//!    whose degree actually changed.
//!
//! The resulting operand is **bitwise identical** to normalizing the
//! mutated graph from scratch: the dirty rows are recomputed with the
//! exact expressions of [`crate::normalize::apply_in_place`], and every
//! other value is byte-copied from the previous operand (where the same
//! expressions over unchanged degrees would reproduce it). The serving
//! stack's differential tests (`tests/dynamic.rs`) prove this across
//! arbitrary mutation sequences.
//!
//! [`BatchEffect::dirty_rows`] reports which operand rows changed
//! (structurally or in value) — the seed set the serving layer expands
//! into a reverse L-hop dirty cone for cache invalidation.

use crate::normalize::Aggregator;
use crate::{Csr, GraphError, Result};
use std::collections::BTreeMap;

/// One streaming edge mutation. Edges are **undirected**: an insert adds
/// both `(u, v)` and `(v, u)` to the base adjacency, a delete removes
/// both. Self-loops are rejected ([`GraphError::SelfLoopMutation`]) — the
/// GCN operand manages its own diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMutation {
    /// Add the undirected edge `{u, v}` (no-op when already present).
    Insert {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Remove the undirected edge `{u, v}` (no-op when absent).
    Delete {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

impl EdgeMutation {
    fn endpoints(self) -> (u32, u32, bool) {
        match self {
            EdgeMutation::Insert { u, v } => (u, v, true),
            EdgeMutation::Delete { u, v } => (u, v, false),
        }
    }
}

/// What one applied mutation batch changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEffect {
    /// The graph epoch after applying the batch (unchanged when the batch
    /// had no net effect).
    pub epoch: u64,
    /// Operand rows whose structure or values changed, sorted. The
    /// aggregation output of exactly these rows can differ, so their
    /// reverse L-hop cone bounds every logit that can change.
    pub dirty_rows: Vec<u32>,
    /// Mutations that inserted an absent edge at their point in the
    /// stream (a later delete may still cancel the net effect).
    pub inserted: usize,
    /// Mutations that deleted a present edge at their point in the
    /// stream.
    pub deleted: usize,
    /// Mutations that found the edge already in the requested state.
    pub noops: usize,
}

impl BatchEffect {
    /// True when the batch left the graph unchanged (all no-ops or
    /// cancelling toggles).
    pub fn is_empty(&self) -> bool {
        self.dirty_rows.is_empty()
    }
}

/// A mutable graph maintained incrementally alongside its normalized
/// aggregation operand.
///
/// # Example
///
/// ```
/// use maxk_graph::dynamic::{DynamicGraph, EdgeMutation};
/// use maxk_graph::{normalize, Aggregator, Coo};
///
/// let base = Coo::from_edges(4, vec![(0, 1), (1, 2)])
///     .unwrap()
///     .symmetrize()
///     .to_csr()
///     .unwrap();
/// let mut dynamic = DynamicGraph::from_csr(&base, Aggregator::SageMean, false).unwrap();
/// let effect = dynamic
///     .apply_batch(&[EdgeMutation::Insert { u: 2, v: 3 }])
///     .unwrap();
/// assert_eq!(effect.dirty_rows, vec![2, 3]);
/// // Bitwise identical to renormalizing the mutated graph from scratch:
/// let rebuilt = normalize::normalized(dynamic.base(), Aggregator::SageMean);
/// assert_eq!(dynamic.operand(), &rebuilt);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    /// Structural adjacency (assumed symmetric; mutations keep it so).
    base: Csr,
    aggregator: Aggregator,
    self_loops: bool,
    /// The normalized aggregation operand: `base` (+ self-loops when
    /// configured) with values per `aggregator`.
    operand: Csr,
    epoch: u64,
}

impl DynamicGraph {
    /// Wraps a structural adjacency, computing the initial operand
    /// (self-loop insertion when `self_loops`, then normalization) —
    /// identical to the frozen-graph construction path.
    ///
    /// # Errors
    ///
    /// Propagates CSR validation errors from the operand construction.
    pub fn from_csr(base: &Csr, aggregator: Aggregator, self_loops: bool) -> Result<Self> {
        let structural = if self_loops {
            add_self_loops(base)?
        } else {
            base.clone()
        };
        let operand = crate::normalize::normalized(&structural, aggregator);
        Ok(DynamicGraph {
            base: base.clone(),
            aggregator,
            self_loops,
            operand,
            epoch: 0,
        })
    }

    /// The current structural adjacency (no self-loops added).
    pub fn base(&self) -> &Csr {
        &self.base
    }

    /// The current normalized aggregation operand.
    pub fn operand(&self) -> &Csr {
        &self.operand
    }

    /// The configured normalization rule.
    pub fn aggregator(&self) -> Aggregator {
        self.aggregator
    }

    /// Whether the operand carries a self-loop diagonal (GCN convention).
    pub fn self_loops(&self) -> bool {
        self.self_loops
    }

    /// Number of nodes (fixed for the lifetime of the graph).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Monotone counter of net-effective mutation batches applied.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies a mutation batch, splicing the base CSR and renormalizing
    /// exactly the dirty operand rows. The whole batch is validated
    /// before anything is touched, so an error leaves the graph
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoopMutation`] on a `u == v` mutation,
    /// [`GraphError::NodeOutOfBounds`] on an endpoint `>= num_nodes`.
    pub fn apply_batch(&mut self, muts: &[EdgeMutation]) -> Result<BatchEffect> {
        let n = self.base.num_nodes();
        for m in muts {
            let (u, v, _) = m.endpoints();
            if u == v {
                return Err(GraphError::SelfLoopMutation { node: u });
            }
            for node in [u, v] {
                if node as usize >= n {
                    return Err(GraphError::NodeOutOfBounds { node, num_nodes: n });
                }
            }
        }

        // Replay in order against current presence: only net per-pair
        // toggles survive into the splice.
        let mut state: BTreeMap<(u32, u32), (bool, bool)> = BTreeMap::new();
        let (mut inserted, mut deleted, mut noops) = (0usize, 0usize, 0usize);
        for m in muts {
            let (u, v, want) = m.endpoints();
            let pair = (u.min(v), u.max(v));
            let entry = state.entry(pair).or_insert_with(|| {
                let present = self.base.get(pair.0 as usize, pair.1).is_some();
                (present, present)
            });
            if entry.1 == want {
                noops += 1;
            } else {
                entry.1 = want;
                if want {
                    inserted += 1;
                } else {
                    deleted += 1;
                }
            }
        }

        // Net per-row change lists. Iterating pairs in (min, max) order
        // pushes each row's neighbors in increasing order: for row r, all
        // pairs (x, r) with x < r precede all pairs (r, y) with y > r.
        let mut adds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut dels: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&(a, b), &(orig, cur)) in &state {
            if orig == cur {
                continue;
            }
            let target = if cur { &mut adds } else { &mut dels };
            target.entry(a).or_default().push(b);
            target.entry(b).or_default().push(a);
        }
        if adds.is_empty() && dels.is_empty() {
            return Ok(BatchEffect {
                epoch: self.epoch,
                dirty_rows: Vec::new(),
                inserted,
                deleted,
                noops,
            });
        }

        // Structurally changed rows, sorted (BTreeMap keys).
        let changed: Vec<u32> = {
            let mut rows: Vec<u32> = adds.keys().chain(dels.keys()).copied().collect();
            rows.sort_unstable();
            rows.dedup();
            rows
        };

        let empty: Vec<u32> = Vec::new();
        let new_base = splice_csr(&self.base, &changed, |row, cols, vals| {
            let add = adds.get(&row).unwrap_or(&empty);
            let del = dels.get(&row).unwrap_or(&empty);
            let (old_cols, old_vals) = self.base.row(row as usize);
            merge_row(old_cols, old_vals, add, del, cols, vals);
        })?;

        // Operand structure: changed rows get their new base row (plus
        // the diagonal under the GCN convention); everything else is
        // span-copied.
        let with_diag = self.self_loops;
        let (op_row_ptr, op_cols) = {
            let mut row_ptr = Vec::with_capacity(n + 1);
            let mut cols: Vec<u32> = Vec::with_capacity(self.operand.num_edges() + 2 * adds.len());
            row_ptr.push(0usize);
            let mut ci = 0usize;
            for i in 0..n {
                if ci < changed.len() && changed[ci] == i as u32 {
                    ci += 1;
                    let (base_cols, _) = new_base.row(i);
                    if with_diag && base_cols.binary_search(&(i as u32)).is_err() {
                        let split = base_cols.partition_point(|&c| (c as usize) < i);
                        cols.extend_from_slice(&base_cols[..split]);
                        cols.push(i as u32);
                        cols.extend_from_slice(&base_cols[split..]);
                    } else {
                        cols.extend_from_slice(base_cols);
                    }
                } else {
                    cols.extend_from_slice(self.operand.row(i).0);
                }
                row_ptr.push(cols.len());
            }
            (row_ptr, cols)
        };

        // Operand degrees straight from the new structure; D = rows whose
        // degree moved (a row with equal adds and removes keeps it).
        let op_degree = |row_ptr: &[usize], i: usize| row_ptr[i + 1] - row_ptr[i];
        let degree_changed: Vec<u32> = changed
            .iter()
            .copied()
            .filter(|&r| op_degree(&op_row_ptr, r as usize) != self.operand.degree(r as usize))
            .collect();

        // Dirty value rows per aggregator: GIN weights are constant and
        // SAGE's 1/d_i only reads the row's own degree, so the changed
        // rows suffice; GCN's 1/√(d_i d_j) couples a row to its
        // neighbors' degrees, so every neighbor of a degree-changed row
        // is dirty too (the operand is structurally symmetric, so row
        // j's columns are exactly the rows containing j).
        let dirty: Vec<u32> = match self.aggregator {
            Aggregator::GinSum | Aggregator::SageMean => changed.clone(),
            Aggregator::GcnSym => {
                let mut rows = changed.clone();
                for &j in &degree_changed {
                    let span = op_row_ptr[j as usize]..op_row_ptr[j as usize + 1];
                    rows.extend_from_slice(&op_cols[span]);
                }
                rows.sort_unstable();
                rows.dedup();
                rows
            }
        };

        // Values: dirty rows recomputed with the exact normalize
        // expressions over the new degrees, everything else byte-copied
        // (rows outside `changed` kept their structure, so old and new
        // spans have equal length).
        let mut op_vals: Vec<f32> = Vec::with_capacity(op_cols.len());
        let mut di = 0usize;
        for i in 0..n {
            let span = op_row_ptr[i]..op_row_ptr[i + 1];
            if di < dirty.len() && dirty[di] == i as u32 {
                di += 1;
                let d_i = op_degree(&op_row_ptr, i);
                for &j in &op_cols[span] {
                    let d_j = op_degree(&op_row_ptr, j as usize);
                    op_vals.push(match self.aggregator {
                        Aggregator::GinSum => 1.0,
                        Aggregator::SageMean => {
                            if d_i == 0 {
                                0.0
                            } else {
                                1.0 / d_i as f32
                            }
                        }
                        Aggregator::GcnSym => {
                            let dd = (d_i as f64 * d_j as f64).sqrt();
                            if dd == 0.0 {
                                0.0
                            } else {
                                (1.0 / dd) as f32
                            }
                        }
                    });
                }
            } else {
                op_vals.extend_from_slice(self.operand.row(i).1);
            }
        }

        self.operand = Csr::from_parts(n, op_row_ptr, op_cols, op_vals)?;
        self.base = new_base;
        self.epoch += 1;
        Ok(BatchEffect {
            epoch: self.epoch,
            dirty_rows: dirty,
            inserted,
            deleted,
            noops,
        })
    }
}

/// Rebuilds `old` with `changed` rows (sorted) regenerated by `rebuild`
/// and every other row span-copied — no global re-sort.
fn splice_csr(
    old: &Csr,
    changed: &[u32],
    mut rebuild: impl FnMut(u32, &mut Vec<u32>, &mut Vec<f32>),
) -> Result<Csr> {
    let n = old.num_nodes();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::with_capacity(old.num_edges());
    let mut vals = Vec::with_capacity(old.num_edges());
    row_ptr.push(0usize);
    let mut ci = 0usize;
    for i in 0..n {
        if ci < changed.len() && changed[ci] == i as u32 {
            ci += 1;
            rebuild(i as u32, &mut cols, &mut vals);
        } else {
            let (c, v) = old.row(i);
            cols.extend_from_slice(c);
            vals.extend_from_slice(v);
        }
        row_ptr.push(cols.len());
    }
    Csr::from_parts(n, row_ptr, cols, vals)
}

/// Three-way sorted merge of one row: old entries minus `del` plus `add`
/// (new entries carry value 1.0). `add` must be disjoint from the old
/// columns and `del` a subset of them — guaranteed by the net-toggle
/// replay.
fn merge_row(
    old_cols: &[u32],
    old_vals: &[f32],
    add: &[u32],
    del: &[u32],
    out_cols: &mut Vec<u32>,
    out_vals: &mut Vec<f32>,
) {
    let mut ai = 0usize;
    let mut di = 0usize;
    for (idx, &c) in old_cols.iter().enumerate() {
        while ai < add.len() && add[ai] < c {
            out_cols.push(add[ai]);
            out_vals.push(1.0);
            ai += 1;
        }
        if di < del.len() && del[di] == c {
            di += 1;
            continue;
        }
        out_cols.push(c);
        out_vals.push(old_vals[idx]);
    }
    while ai < add.len() {
        out_cols.push(add[ai]);
        out_vals.push(1.0);
        ai += 1;
    }
    debug_assert_eq!(di, del.len(), "every deletion matched a present edge");
}

/// Inserts a unit-valued diagonal into every row (skipping rows that
/// already carry one) — the GCN self-loop convention, matching the
/// frozen-graph context construction bit for bit.
fn add_self_loops(graph: &Csr) -> Result<Csr> {
    let n = graph.num_nodes();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(graph.num_edges() + n);
    row_ptr.push(0usize);
    for i in 0..n {
        let (cols, _) = graph.row(i);
        let mut inserted = false;
        for &c in cols {
            if !inserted && c as usize >= i {
                if c as usize != i {
                    col_idx.push(i as u32);
                }
                inserted = true;
            }
            col_idx.push(c);
        }
        if !inserted {
            col_idx.push(i as u32);
        }
        row_ptr.push(col_idx.len());
    }
    let values = vec![1.0; col_idx.len()];
    Csr::from_parts(n, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, normalize, Coo};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn path() -> Csr {
        Coo::from_edges(5, vec![(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .symmetrize()
            .to_csr()
            .unwrap()
    }

    /// From-scratch reference: operand of `base` under the same config.
    fn reference(base: &Csr, agg: Aggregator, self_loops: bool) -> Csr {
        let structural = if self_loops {
            add_self_loops(base).unwrap()
        } else {
            base.clone()
        };
        normalize::normalized(&structural, agg)
    }

    #[test]
    fn initial_operand_matches_from_scratch() {
        for (agg, loops) in [
            (Aggregator::GcnSym, true),
            (Aggregator::SageMean, false),
            (Aggregator::GinSum, false),
        ] {
            let base = path();
            let d = DynamicGraph::from_csr(&base, agg, loops).unwrap();
            assert_eq!(d.operand(), &reference(&base, agg, loops), "{agg:?}");
            assert_eq!(d.epoch(), 0);
        }
    }

    #[test]
    fn insert_and_delete_update_base_symmetrically() {
        let mut d = DynamicGraph::from_csr(&path(), Aggregator::GinSum, false).unwrap();
        let effect = d
            .apply_batch(&[EdgeMutation::Insert { u: 4, v: 0 }])
            .unwrap();
        assert_eq!(effect.inserted, 1);
        assert_eq!(effect.dirty_rows, vec![0, 4]);
        assert!(d.base().get(0, 4).is_some());
        assert!(d.base().get(4, 0).is_some());
        let effect = d
            .apply_batch(&[EdgeMutation::Delete { u: 0, v: 4 }])
            .unwrap();
        assert_eq!(effect.deleted, 1);
        assert!(d.base().get(0, 4).is_none());
        assert!(d.base().get(4, 0).is_none());
        assert_eq!(d.epoch(), 2);
    }

    #[test]
    fn noop_and_cancelling_batches_leave_epoch_alone() {
        let mut d = DynamicGraph::from_csr(&path(), Aggregator::SageMean, false).unwrap();
        let before = d.operand().clone();
        // Insert of a present edge, delete of an absent one: pure no-ops.
        let effect = d
            .apply_batch(&[
                EdgeMutation::Insert { u: 0, v: 1 },
                EdgeMutation::Delete { u: 0, v: 3 },
            ])
            .unwrap();
        assert!(effect.is_empty());
        assert_eq!(effect.noops, 2);
        assert_eq!(d.epoch(), 0);
        // Insert then delete of the same absent edge cancels.
        let effect = d
            .apply_batch(&[
                EdgeMutation::Insert { u: 0, v: 3 },
                EdgeMutation::Delete { u: 3, v: 0 },
            ])
            .unwrap();
        assert!(effect.is_empty());
        assert_eq!(effect.inserted, 1);
        assert_eq!(effect.deleted, 1);
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.operand(), &before);
    }

    #[test]
    fn invalid_mutations_rejected_without_side_effects() {
        let mut d = DynamicGraph::from_csr(&path(), Aggregator::GcnSym, true).unwrap();
        let before = d.base().clone();
        assert_eq!(
            d.apply_batch(&[EdgeMutation::Insert { u: 2, v: 2 }]),
            Err(GraphError::SelfLoopMutation { node: 2 })
        );
        assert_eq!(
            d.apply_batch(&[
                EdgeMutation::Insert { u: 0, v: 1 },
                EdgeMutation::Delete { u: 9, v: 1 }
            ]),
            Err(GraphError::NodeOutOfBounds {
                node: 9,
                num_nodes: 5
            })
        );
        assert_eq!(d.base(), &before);
        assert_eq!(d.epoch(), 0);
    }

    #[test]
    fn gcn_dirty_rows_cover_degree_coupled_neighbors() {
        // Inserting {0, 4} changes deg(0) and deg(4); under GCN every
        // neighbor of those rows holds a 1/√(d_i d_j) value that moved.
        let mut d = DynamicGraph::from_csr(&path(), Aggregator::GcnSym, true).unwrap();
        let effect = d
            .apply_batch(&[EdgeMutation::Insert { u: 0, v: 4 }])
            .unwrap();
        // Row 0's new operand neighbors: {0, 1, 4}; row 4's (it started
        // isolated): {0, 4}. Row 1 is dirty purely through the degree
        // coupling — its own structure never changed.
        assert_eq!(effect.dirty_rows, vec![0, 1, 4]);
        assert_eq!(d.operand(), &reference(d.base(), Aggregator::GcnSym, true));
    }

    #[test]
    fn sage_dirty_rows_stay_local() {
        let mut d = DynamicGraph::from_csr(&path(), Aggregator::SageMean, false).unwrap();
        let effect = d
            .apply_batch(&[EdgeMutation::Insert { u: 0, v: 4 }])
            .unwrap();
        assert_eq!(effect.dirty_rows, vec![0, 4]);
        assert_eq!(
            d.operand(),
            &reference(d.base(), Aggregator::SageMean, false)
        );
    }

    #[test]
    fn isolated_node_edges_handled() {
        // Node 4 starts isolated; deleting the last edge of a node leaves
        // a zero row, and SAGE must not divide by the zero degree.
        let base = Coo::from_edges(5, vec![(0, 1)])
            .unwrap()
            .symmetrize()
            .to_csr()
            .unwrap();
        for (agg, loops) in [
            (Aggregator::GcnSym, true),
            (Aggregator::SageMean, false),
            (Aggregator::GinSum, false),
        ] {
            let mut d = DynamicGraph::from_csr(&base, agg, loops).unwrap();
            d.apply_batch(&[EdgeMutation::Delete { u: 0, v: 1 }])
                .unwrap();
            assert_eq!(d.operand(), &reference(d.base(), agg, loops), "{agg:?}");
            assert!(d.operand().values().iter().all(|v| v.is_finite()));
            d.apply_batch(&[EdgeMutation::Insert { u: 1, v: 4 }])
                .unwrap();
            assert_eq!(d.operand(), &reference(d.base(), agg, loops), "{agg:?}");
        }
    }

    #[test]
    fn random_batches_match_from_scratch_rebuild_every_epoch() {
        let mut rng = StdRng::seed_from_u64(17);
        for (agg, loops) in [
            (Aggregator::GcnSym, true),
            (Aggregator::SageMean, false),
            (Aggregator::GinSum, false),
        ] {
            let base = generate::chung_lu_power_law(40, 4.0, 2.3, 7)
                .to_csr()
                .unwrap();
            let mut d = DynamicGraph::from_csr(&base, agg, loops).unwrap();
            for _ in 0..12 {
                let batch: Vec<EdgeMutation> = (0..rng.gen_range(1..8usize))
                    .map(|_| {
                        let u = rng.gen_range(0..40u32);
                        let mut v = rng.gen_range(0..40u32);
                        if v == u {
                            v = (v + 1) % 40;
                        }
                        if rng.gen_bool(0.5) {
                            EdgeMutation::Insert { u, v }
                        } else {
                            EdgeMutation::Delete { u, v }
                        }
                    })
                    .collect();
                let effect = d.apply_batch(&batch).unwrap();
                // Base stays symmetric; operand is bitwise the
                // from-scratch normalization of the mutated base.
                assert!(d.base().is_structurally_symmetric());
                assert_eq!(d.operand(), &reference(d.base(), agg, loops), "{agg:?}");
                // Dirty rows are sorted and in range.
                assert!(effect.dirty_rows.windows(2).all(|w| w[0] < w[1]));
                assert!(effect
                    .dirty_rows
                    .iter()
                    .all(|&r| (r as usize) < d.num_nodes()));
            }
        }
    }

    #[test]
    fn dirty_rows_are_exactly_the_changed_value_rows() {
        // Ground truth: diff the operand against its previous state; every
        // differing row must be reported dirty, and (precision) every
        // reported row must actually differ structurally or in value.
        let mut rng = StdRng::seed_from_u64(23);
        for (agg, loops) in [
            (Aggregator::GcnSym, true),
            (Aggregator::SageMean, false),
            (Aggregator::GinSum, false),
        ] {
            let base = generate::chung_lu_power_law(30, 3.0, 2.3, 11)
                .to_csr()
                .unwrap();
            let mut d = DynamicGraph::from_csr(&base, agg, loops).unwrap();
            for _ in 0..8 {
                let u = rng.gen_range(0..30u32);
                let mut v = rng.gen_range(0..30u32);
                if v == u {
                    v = (v + 1) % 30;
                }
                let before = d.operand().clone();
                let effect = d
                    .apply_batch(&[if rng.gen_bool(0.5) {
                        EdgeMutation::Insert { u, v }
                    } else {
                        EdgeMutation::Delete { u, v }
                    }])
                    .unwrap();
                let after = d.operand();
                for r in 0..d.num_nodes() as u32 {
                    let differs = before.row(r as usize) != after.row(r as usize);
                    let reported = effect.dirty_rows.binary_search(&r).is_ok();
                    if differs {
                        assert!(reported, "{agg:?}: changed row {r} not reported dirty");
                    }
                    if reported && !effect.dirty_rows.is_empty() {
                        // A reported row either changed, or is a GCN
                        // neighbor recompute that landed on identical
                        // bits — allow only the latter.
                        if !differs {
                            assert_eq!(
                                agg,
                                Aggregator::GcnSym,
                                "only GCN may over-approximate by neighbor rows"
                            );
                        }
                    }
                }
            }
        }
    }
}
