//! Aggregator-specific edge-weight normalization.
//!
//! Fig. 5 of the paper annotates the adjacency values per model:
//!
//! * GraphSAGE (mean aggregator): `1/d_i` — each *target* row averages its
//!   neighbors;
//! * GCN: `1/√(d_i · d_j)` — symmetric normalization;
//! * GIN: `1` — plain sum aggregation.

use crate::Csr;

/// Which GNN aggregator the edge values should implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregator {
    /// GCN symmetric normalization `1/√(d_i d_j)`.
    GcnSym,
    /// GraphSAGE mean aggregation `1/d_i` (row mean).
    SageMean,
    /// GIN sum aggregation (all weights `1`).
    GinSum,
}

impl Aggregator {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Aggregator::GcnSym => "gcn-sym",
            Aggregator::SageMean => "sage-mean",
            Aggregator::GinSum => "gin-sum",
        }
    }
}

/// Returns a copy of `csr` with values set per the aggregator rule.
///
/// Degrees are structural out-degrees of the (assumed symmetric) adjacency.
/// Isolated nodes keep zero rows; a degree of zero never divides.
#[must_use]
pub fn normalized(csr: &Csr, aggregator: Aggregator) -> Csr {
    let mut out = csr.clone();
    apply_in_place(&mut out, aggregator);
    out
}

/// In-place version of [`normalized`].
pub fn apply_in_place(csr: &mut Csr, aggregator: Aggregator) {
    let n = csr.num_nodes();
    let degrees: Vec<usize> = (0..n).map(|i| csr.degree(i)).collect();
    let row_ptr = csr.row_ptr().to_vec();
    let col_idx = csr.col_idx().to_vec();
    let values = csr.values_mut();
    for i in 0..n {
        for e in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[e] as usize;
            values[e] = match aggregator {
                Aggregator::GinSum => 1.0,
                Aggregator::SageMean => {
                    if degrees[i] == 0 {
                        0.0
                    } else {
                        1.0 / degrees[i] as f32
                    }
                }
                Aggregator::GcnSym => {
                    let dd = (degrees[i] as f64 * degrees[j] as f64).sqrt();
                    if dd == 0.0 {
                        0.0
                    } else {
                        (1.0 / dd) as f32
                    }
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn path_graph() -> Csr {
        // 0 - 1 - 2 (undirected path)
        Coo::from_edges(3, vec![(0, 1), (1, 2)])
            .unwrap()
            .symmetrize()
            .to_csr()
            .unwrap()
    }

    #[test]
    fn gin_weights_are_one() {
        let adj = normalized(&path_graph(), Aggregator::GinSum);
        assert!(adj.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn sage_mean_rows_sum_to_one() {
        let adj = normalized(&path_graph(), Aggregator::SageMean);
        for i in 0..adj.num_nodes() {
            let (_, vals) = adj.row(i);
            if !vals.is_empty() {
                let s: f32 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
            }
        }
    }

    #[test]
    fn gcn_sym_is_symmetric() {
        let adj = normalized(&path_graph(), Aggregator::GcnSym);
        // deg(0)=1, deg(1)=2 -> weight(0,1) = 1/sqrt(2)
        let w01 = adj.get(0, 1).unwrap();
        let w10 = adj.get(1, 0).unwrap();
        assert!((w01 - w10).abs() < 1e-7);
        assert!((w01 - 1.0 / 2f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn isolated_nodes_get_zero_rows() {
        let csr = Coo::from_edges(3, vec![(0, 1)])
            .unwrap()
            .symmetrize()
            .to_csr()
            .unwrap();
        for agg in [Aggregator::GcnSym, Aggregator::SageMean, Aggregator::GinSum] {
            let adj = normalized(&csr, agg);
            assert!(adj.row(2).0.is_empty());
            assert!(adj.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn aggregator_names() {
        assert_eq!(Aggregator::GcnSym.name(), "gcn-sym");
        assert_eq!(Aggregator::SageMean.name(), "sage-mean");
        assert_eq!(Aggregator::GinSum.name(), "gin-sum");
    }
}
