//! Edge-list text I/O.
//!
//! The paper's artifact downloads graphs as whitespace-separated edge
//! lists (`src dst` per line, `#` comments) — the SNAP convention. This
//! module parses and emits that format so users can bring their own
//! graphs instead of the synthetic stand-ins.

use crate::{Coo, GraphError, Result};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while parsing an edge-list stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseEdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor `src dst`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Structural error while assembling the graph.
    Graph(GraphError),
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEdgeListError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseEdgeListError::BadLine { line, content } => {
                write!(f, "malformed edge list line {line}: {content:?}")
            }
            ParseEdgeListError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseEdgeListError::Io(e) => Some(e),
            ParseEdgeListError::Graph(e) => Some(e),
            ParseEdgeListError::BadLine { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseEdgeListError {
    fn from(e: std::io::Error) -> Self {
        ParseEdgeListError::Io(e)
    }
}

impl From<GraphError> for ParseEdgeListError {
    fn from(e: GraphError) -> Self {
        ParseEdgeListError::Graph(e)
    }
}

/// Parses a SNAP-style edge list: one `src dst` pair per line, `#`
/// comments and blank lines ignored. Node count is `max id + 1` unless a
/// larger `min_nodes` is given.
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] on I/O failure or malformed lines.
pub fn read_edge_list<R: BufRead>(reader: R, min_nodes: usize) -> Result<Coo, ParseEdgeListError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_node = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(ParseEdgeListError::BadLine {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(src), Ok(dst)) = (a.parse::<u32>(), b.parse::<u32>()) else {
            return Err(ParseEdgeListError::BadLine {
                line: idx + 1,
                content: line.clone(),
            });
        };
        max_node = max_node.max(src).max(dst);
        edges.push((src, dst));
    }
    let n = if edges.is_empty() {
        min_nodes.max(1)
    } else {
        (max_node as usize + 1).max(min_nodes)
    };
    Ok(Coo::from_edges(n, edges)?)
}

/// Writes a graph back out as an edge list (one directed edge per line).
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(mut writer: W, csr: &crate::Csr) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} nodes, {} edges",
        csr.num_nodes(),
        csr.num_edges()
    )?;
    for i in 0..csr.num_nodes() {
        for &j in csr.row(i).0 {
            writeln!(writer, "{i} {j}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_snap_format() {
        let text = "# comment\n0 1\n1 2\n\n% alt comment\n2 0\n";
        let coo = read_edge_list(Cursor::new(text), 0).unwrap();
        assert_eq!(coo.num_nodes(), 3);
        assert_eq!(coo.num_edges(), 3);
        assert!(coo.edges().contains(&(2, 0)));
    }

    #[test]
    fn min_nodes_pads_isolated_tail() {
        let coo = read_edge_list(Cursor::new("0 1\n"), 10).unwrap();
        assert_eq!(coo.num_nodes(), 10);
    }

    #[test]
    fn empty_input_yields_min_nodes() {
        let coo = read_edge_list(Cursor::new("# nothing\n"), 4).unwrap();
        assert_eq!(coo.num_nodes(), 4);
        assert_eq!(coo.num_edges(), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list(Cursor::new("0 1\nbroken\n"), 0).unwrap_err();
        match err {
            ParseEdgeListError::BadLine { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "broken");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_non_numeric_ids() {
        let err = read_edge_list(Cursor::new("a b\n"), 0).unwrap_err();
        assert!(matches!(err, ParseEdgeListError::BadLine { line: 1, .. }));
    }

    #[test]
    fn write_read_roundtrip() {
        let coo = crate::generate::erdos_renyi(50, 4.0, 9);
        let csr = coo.to_csr().unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &csr).unwrap();
        let back = read_edge_list(Cursor::new(buf), csr.num_nodes()).unwrap();
        assert_eq!(back.to_csr().unwrap(), csr);
    }

    #[test]
    fn error_display_is_informative() {
        let err = ParseEdgeListError::BadLine {
            line: 3,
            content: "x".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }
}
