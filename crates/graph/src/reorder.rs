//! Node reordering for locality.
//!
//! GNNAdvisor's kernel wins come largely from Rabbit reordering (§2.2 of
//! the paper: its "kernel performance, mainly improved by the Rabbit
//! order"); community-aware orderings improve the L1/L2 hit rates of
//! feature-row fetches. This module provides three orderings used by the
//! reproduction's locality ablations:
//!
//! * [`degree_sort`] — hubs first (a cheap traffic-locality proxy);
//! * [`bfs_order`] — Cuthill–McKee-style breadth-first renumbering from a
//!   low-degree seed;
//! * [`community_order`] — groups nodes by neighbor-hash buckets, a
//!   lightweight stand-in for Rabbit's community clustering.

use crate::{Coo, Csr, GraphError, Result};

/// A node permutation: `perm[new_id] = old_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<u32>,
    inverse: Vec<u32>,
}

impl Permutation {
    /// Builds from `perm[new_id] = old_id`, validating bijectivity.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when `perm` is not a
    /// permutation of `0..n`.
    pub fn new(perm: Vec<u32>) -> Result<Self> {
        let n = perm.len();
        let mut inverse = vec![u32::MAX; n];
        for (new_id, &old_id) in perm.iter().enumerate() {
            if old_id as usize >= n || inverse[old_id as usize] != u32::MAX {
                return Err(GraphError::NodeOutOfBounds {
                    node: old_id,
                    num_nodes: n,
                });
            }
            inverse[old_id as usize] = new_id as u32;
        }
        Ok(Permutation { perm, inverse })
    }

    /// The identity permutation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n as u32).collect(),
            inverse: (0..n as u32).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Old id of the node now numbered `new_id`.
    pub fn old_of(&self, new_id: usize) -> u32 {
        self.perm[new_id]
    }

    /// New id of the node previously numbered `old_id`.
    pub fn new_of(&self, old_id: usize) -> u32 {
        self.inverse[old_id]
    }

    /// Applies the permutation to a graph, renumbering both endpoints.
    ///
    /// # Errors
    ///
    /// Propagates CSR construction errors (cannot occur for a valid
    /// permutation of a valid graph).
    pub fn apply(&self, csr: &Csr) -> Result<Csr> {
        assert_eq!(self.len(), csr.num_nodes(), "permutation size mismatch");
        let mut coo = Coo::new(csr.num_nodes());
        for new_src in 0..self.len() {
            let old_src = self.old_of(new_src) as usize;
            let (cols, _) = csr.row(old_src);
            for &old_dst in cols {
                coo.push(new_src as u32, self.new_of(old_dst as usize));
            }
        }
        coo.to_csr()
    }

    /// Applies the permutation to row-major node data (features/labels),
    /// returning reordered data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not `len() * width`.
    pub fn apply_rows<T: Copy>(&self, data: &[T], width: usize) -> Vec<T> {
        assert_eq!(data.len(), self.len() * width, "row data size mismatch");
        let mut out = Vec::with_capacity(data.len());
        for new_id in 0..self.len() {
            let old = self.old_of(new_id) as usize;
            out.extend_from_slice(&data[old * width..(old + 1) * width]);
        }
        out
    }
}

/// Orders nodes by descending degree (stable on ties).
pub fn degree_sort(csr: &Csr) -> Permutation {
    let mut order: Vec<u32> = (0..csr.num_nodes() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(csr.degree(i as usize)));
    Permutation::new(order).expect("sort of identity is a permutation")
}

/// Breadth-first (Cuthill–McKee-like) ordering: starts from the
/// lowest-degree node of each component, visits neighbors in degree
/// order.
pub fn bfs_order(csr: &Csr) -> Permutation {
    let n = csr.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Seeds in ascending-degree order.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&i| csr.degree(i as usize));
    let mut queue = std::collections::VecDeque::new();
    let mut neighbors = Vec::new();
    for seed in seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbors.clear();
            neighbors.extend_from_slice(csr.row(u as usize).0);
            neighbors.sort_by_key(|&v| csr.degree(v as usize));
            for &v in &neighbors {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    Permutation::new(order).expect("BFS visits each node once")
}

/// Lightweight community grouping: nodes are bucketed by the minimum
/// neighbor id (a single-pass label-propagation step), then buckets are
/// laid out contiguously. A cheap stand-in for Rabbit ordering's
/// community detection.
pub fn community_order(csr: &Csr) -> Permutation {
    let n = csr.num_nodes();
    let mut label: Vec<u32> = (0..n as u32).collect();
    // One label-propagation sweep: adopt the smallest label in the closed
    // neighborhood.
    for i in 0..n {
        let (cols, _) = csr.row(i);
        let mut m = label[i];
        for &j in cols {
            m = m.min(label[j as usize]);
        }
        label[i] = m;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (label[i as usize], i));
    Permutation::new(order).expect("sort of identity is a permutation")
}

/// Average index distance between adjacent nodes — the locality metric
/// reordering tries to minimize (lower = better cache behaviour).
pub fn adjacency_span(csr: &Csr) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for i in 0..csr.num_nodes() {
        let (cols, _) = csr.row(i);
        for &j in cols {
            total += (i as i64 - j as i64).unsigned_abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn graph() -> Csr {
        generate::chung_lu_power_law(300, 8.0, 2.2, 3)
            .to_csr()
            .unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let csr = graph();
        let p = Permutation::identity(csr.num_nodes());
        assert_eq!(p.apply(&csr).unwrap(), csr);
        assert_eq!(p.new_of(5), 5);
        assert_eq!(p.old_of(7), 7);
    }

    #[test]
    fn permutation_rejects_duplicates() {
        let err = Permutation::new(vec![0, 0, 2]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
        assert!(Permutation::new(vec![0, 3]).is_err());
    }

    #[test]
    fn inverse_is_consistent() {
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        for new_id in 0..3 {
            assert_eq!(p.new_of(p.old_of(new_id) as usize) as usize, new_id);
        }
    }

    #[test]
    fn apply_preserves_structure() {
        let csr = graph();
        let p = degree_sort(&csr);
        let reordered = p.apply(&csr).unwrap();
        assert_eq!(reordered.num_edges(), csr.num_edges());
        reordered.validate().unwrap();
        // Edge (u, v) exists iff (new(u), new(v)) exists.
        for u in 0..csr.num_nodes() {
            for &v in csr.row(u).0 {
                let nu = p.new_of(u) as usize;
                let nv = p.new_of(v as usize);
                assert!(reordered.get(nu, nv).is_some(), "edge ({u},{v}) lost");
            }
        }
    }

    #[test]
    fn degree_sort_puts_hubs_first() {
        let csr = graph();
        let p = degree_sort(&csr);
        let reordered = p.apply(&csr).unwrap();
        for w in 0..reordered.num_nodes() - 1 {
            assert!(
                reordered.degree(w) >= reordered.degree(w + 1),
                "not sorted at {w}"
            );
        }
    }

    #[test]
    fn bfs_order_visits_everything_once() {
        let csr = graph();
        let p = bfs_order(&csr);
        assert_eq!(p.len(), csr.num_nodes());
        p.apply(&csr).unwrap().validate().unwrap();
    }

    #[test]
    fn bfs_improves_adjacency_span_on_power_law() {
        let csr = graph();
        let base = adjacency_span(&csr);
        let bfs = adjacency_span(&bfs_order(&csr).apply(&csr).unwrap());
        assert!(bfs < base, "bfs span {bfs} vs base {base}");
    }

    #[test]
    fn community_order_is_valid_permutation() {
        let csr = graph();
        let p = community_order(&csr);
        let r = p.apply(&csr).unwrap();
        assert_eq!(r.num_edges(), csr.num_edges());
    }

    #[test]
    fn apply_rows_moves_features_with_nodes() {
        let csr = crate::Coo::from_edges(3, vec![(0, 1)])
            .unwrap()
            .to_csr()
            .unwrap();
        let _ = csr; // structure irrelevant here
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let feats = vec![0.0f32, 0.0, 1.0, 1.0, 2.0, 2.0]; // node i -> [i, i]
        let out = p.apply_rows(&feats, 2);
        assert_eq!(out, vec![2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn span_zero_for_edgeless_graph() {
        let csr = crate::Coo::new(5).with_self_loops().to_csr().unwrap();
        assert_eq!(adjacency_span(&csr), 0.0);
    }
}
