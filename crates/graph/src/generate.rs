//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 24 real graphs (Table 1). Those datasets are not
//! available offline, so the catalog in [`crate::datasets`] substitutes
//! synthetic graphs that preserve the properties the MaxK-GNN kernels are
//! sensitive to: node count, average degree (`nnz/N`), and a heavy-tailed
//! ("power-law", §1) degree distribution that produces the workload
//! imbalance the Edge-Group partitioner exists to fix.
//!
//! All generators are deterministic given a seed.

use crate::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi G(n, m) graph: `n * avg_degree / 2` undirected edges chosen
/// uniformly at random (then symmetrized).
///
/// Degree distribution is binomial (flat), modelling the paper's
/// low-variance molecule/biology datasets.
pub fn erdos_renyi(n: usize, avg_degree: f64, seed: u64) -> Coo {
    assert!(n > 0, "graph must have at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut coo = Coo::new(n);
    for _ in 0..m {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        if s != d {
            coo.push(s, d);
        }
    }
    coo.symmetrize()
}

/// Chung–Lu expected-degree power-law graph.
///
/// Node `i` receives weight `(i + i0)^(-1/(gamma-1))`; endpoints of each of
/// the `n * avg_degree / 2` edges are sampled proportionally to weight.
/// This matches the degree exponent `gamma` of scale-free social networks
/// (the paper's Reddit / Yelp / ogbn-products class of graphs).
///
/// # Panics
///
/// Panics if `n == 0` or `gamma <= 1.0`.
pub fn chung_lu_power_law(n: usize, avg_degree: f64, gamma: f64, seed: u64) -> Coo {
    assert!(n > 0, "graph must have at least one node");
    assert!(gamma > 1.0, "power-law exponent must be > 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = 1.0 / (gamma - 1.0);
    // i0 shifts the head of the distribution so the max expected degree
    // stays bounded relative to n.
    let i0 = (n as f64).powf(0.25).max(1.0);
    let weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let sampler = CumulativeSampler::new(&weights);
    let m = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut coo = Coo::new(n);
    for _ in 0..m {
        let s = sampler.sample(&mut rng) as u32;
        let d = sampler.sample(&mut rng) as u32;
        if s != d {
            coo.push(s, d);
        }
    }
    coo.symmetrize()
}

/// R-MAT recursive-matrix generator (Chakrabarti et al.), the standard
/// synthetic stand-in for web/social graphs with community structure.
///
/// `scale` gives `n = 2^scale` nodes. Probabilities `(a, b, c)` control the
/// quadrant recursion (`d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics if the probabilities are not a sub-distribution.
pub fn rmat(scale: u32, avg_degree: f64, a: f64, b: f64, c: f64, seed: u64) -> Coo {
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
        "invalid R-MAT probabilities"
    );
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut coo = Coo::new(n);
    for _ in 0..m {
        let (mut lo_r, mut hi_r) = (0usize, n);
        let (mut lo_c, mut hi_c) = (0usize, n);
        while hi_r - lo_r > 1 {
            let p: f64 = rng.gen();
            let (top, left) = if p < a {
                (true, true)
            } else if p < a + b {
                (true, false)
            } else if p < a + b + c {
                (false, true)
            } else {
                (false, false)
            };
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            if top {
                hi_r = mid_r;
            } else {
                lo_r = mid_r;
            }
            if left {
                hi_c = mid_c;
            } else {
                lo_c = mid_c;
            }
        }
        if lo_r != lo_c {
            coo.push(lo_r as u32, lo_c as u32);
        }
    }
    coo.symmetrize()
}

/// Planted-partition power-law graph used for the training datasets.
///
/// Nodes are split into `communities` groups round-robin. Each edge keeps
/// both endpoints in the same community with probability `homophily`,
/// otherwise the destination is drawn from the global weight distribution.
/// Degrees remain heavy-tailed (Chung–Lu weights); the community structure
/// is what makes the synthetic node-classification task graph-learnable.
pub fn planted_partition(
    n: usize,
    avg_degree: f64,
    communities: usize,
    homophily: f64,
    gamma: f64,
    seed: u64,
) -> Coo {
    assert!(n > 0, "graph must have at least one node");
    assert!(
        communities > 0 && communities <= n,
        "invalid community count"
    );
    assert!(
        (0.0..=1.0).contains(&homophily),
        "homophily must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = 1.0 / (gamma - 1.0);
    let i0 = (n as f64).powf(0.25).max(1.0);
    let weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let global = CumulativeSampler::new(&weights);
    // Per-community samplers over the members of each community.
    // Community of node i is i % communities (keeps hubs spread evenly).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); communities];
    for i in 0..n {
        members[i % communities].push(i);
    }
    let per_comm: Vec<CumulativeSampler> = members
        .iter()
        .map(|ms| CumulativeSampler::new(&ms.iter().map(|&i| weights[i]).collect::<Vec<_>>()))
        .collect();

    let m = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut coo = Coo::new(n);
    for _ in 0..m {
        let s = global.sample(&mut rng);
        let d = if rng.gen::<f64>() < homophily {
            let c = s % communities;
            members[c][per_comm[c].sample(&mut rng)]
        } else {
            global.sample(&mut rng)
        };
        if s != d {
            coo.push(s as u32, d as u32);
        }
    }
    coo.symmetrize()
}

/// Community id assigned to each node by [`planted_partition`]
/// (round-robin: `i % communities`).
pub fn planted_community_of(node: usize, communities: usize) -> usize {
    node % communities
}

/// O(log n) weighted sampler over a fixed weight vector, via cumulative
/// sums and binary search. Deterministic given the RNG stream.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl CumulativeSampler {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        CumulativeSampler {
            cumulative,
            total: acc,
        }
    }

    /// Draws an index proportionally to its weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x = rng.gen::<f64>() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_hits_target_degree() {
        let coo = erdos_renyi(2_000, 12.0, 7);
        let csr = coo.to_csr().unwrap();
        let avg = csr.avg_degree();
        // dedup + self-loop rejection lose a few edges.
        assert!(avg > 9.0 && avg < 13.0, "avg degree {avg}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = chung_lu_power_law(500, 8.0, 2.3, 99);
        let b = chung_lu_power_law(500, 8.0, 2.3, 99);
        assert_eq!(a.edges(), b.edges());
        let c = chung_lu_power_law(500, 8.0, 2.3, 100);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let csr = chung_lu_power_law(4_000, 16.0, 2.1, 3).to_csr().unwrap();
        let avg = csr.avg_degree();
        let max = csr.max_degree() as f64;
        // Hubs should far exceed the mean (flat graphs have max ≈ 2-3x avg).
        assert!(max > 8.0 * avg, "max {max} avg {avg}");
    }

    #[test]
    fn rmat_produces_connected_ish_graph() {
        let csr = rmat(10, 8.0, 0.57, 0.19, 0.19, 11).to_csr().unwrap();
        assert_eq!(csr.num_nodes(), 1024);
        assert!(csr.num_edges() > 1024);
        assert!(csr.is_structurally_symmetric());
    }

    #[test]
    fn planted_partition_is_homophilous() {
        let communities = 8;
        let coo = planted_partition(2_000, 16.0, communities, 0.9, 2.3, 5);
        let csr = coo.to_csr().unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for i in 0..csr.num_nodes() {
            for &j in csr.row(i).0 {
                total += 1;
                if planted_community_of(i, communities)
                    == planted_community_of(j as usize, communities)
                {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        // Random baseline would be 1/8 = 0.125; homophily 0.9 should push
        // this way up.
        assert!(frac > 0.6, "intra-community fraction {frac}");
    }

    #[test]
    fn planted_partition_zero_homophily_is_random() {
        let communities = 4;
        let csr = planted_partition(2_000, 16.0, communities, 0.0, 2.3, 5)
            .to_csr()
            .unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for i in 0..csr.num_nodes() {
            for &j in csr.row(i).0 {
                total += 1;
                if i % communities == (j as usize) % communities {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(
            (frac - 0.25).abs() < 0.08,
            "intra fraction {frac} should be near 1/4"
        );
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let sampler = CumulativeSampler::new(&[0.0, 10.0, 0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    fn cumulative_sampler_covers_support() {
        let sampler = CumulativeSampler::new(&[1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sampler.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn cumulative_sampler_rejects_empty() {
        let _ = CumulativeSampler::new(&[]);
    }

    #[test]
    #[should_panic(expected = "power-law exponent")]
    fn power_law_rejects_bad_gamma() {
        let _ = chung_lu_power_law(10, 2.0, 1.0, 0);
    }
}
