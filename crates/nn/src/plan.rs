//! Forward planning: full-graph vs. seed-restricted partial forward.
//!
//! A serving batch only needs logits at its seed union, so when the
//! union's reverse L-hop frontier (see `maxk_graph::frontier`) touches a
//! small fraction of the graph, computing each layer only at the frontier
//! rows is much cheaper than the full-graph forward. [`ForwardPlan`]
//! captures that per-batch decision, [`PlanConfig`] holds the cost
//! heuristic, and [`partial_forward`] executes the plan over any layer
//! stack expressed as [`PlanLayer`] weight views — both
//! [`crate::GnnModel::forward_planned`] and `maxk-serve`'s
//! `InferenceEngine` route through it, so the partial layer math lives in
//! exactly one place.
//!
//! Partial outputs are **bitwise equal** to the corresponding rows of the
//! full forward: every step (per-row linear transform, MaxK selection,
//! row-subset aggregation via `maxk_core::subset`, self paths) performs
//! the same floating-point operations in the same order as the full-graph
//! path, just skipping rows nobody asked for.

use crate::conv::{Activation, Arch};
use maxk_core::maxk::maxk_forward;
use maxk_core::subset::{spmm_rows, sspmm_rows};
use maxk_graph::{Csr, Frontier, GraphError, NodeSet};
use maxk_tensor::{ops, Matrix};
use std::time::{Duration, Instant};

/// The kernel classes a forward pass spends its time in, for per-layer
/// timing ([`ForwardTimer`]). MaxK-GNN's own analysis starts from exactly
/// this breakdown: which fraction of a layer goes to the dense linear
/// transform vs. the sparse aggregation, and whether the aggregation runs
/// the dense-operand SpMM or the CBSR SSpMM path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// Dense linear transform (`matmul` + bias, SAGE self path, GIN
    /// scale-and-add).
    DenseLinear,
    /// Row-wise SpMM aggregation over a dense operand (ReLU / linear
    /// activations).
    SpMM,
    /// SSpMM / SpGEMM aggregation over the sparse CBSR operand (MaxK
    /// activations).
    SSpMM,
    /// MaxK selection (CBSR construction) and its backward-style scatter.
    MaxK,
    /// Row gathers/scatters that remap between full-graph and
    /// frontier-compact indexing on the partial path.
    Gather,
}

impl KernelKind {
    /// Stable lowercase label (metric label values, JSON keys).
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::DenseLinear => "dense_linear",
            KernelKind::SpMM => "spmm",
            KernelKind::SSpMM => "sspmm",
            KernelKind::MaxK => "maxk",
            KernelKind::Gather => "gather",
        }
    }
}

/// Wall-clock accumulator for one forward pass: every timed kernel call
/// appends a `(layer, kernel, elapsed)` lap. The laps cover essentially
/// all of a layer's work, so their sum tracks the forward's wall time
/// closely (the telemetry acceptance check holds it within 10%).
#[derive(Debug, Clone, Default)]
pub struct ForwardTimer {
    laps: Vec<(usize, KernelKind, Duration)>,
}

impl ForwardTimer {
    /// An empty timer.
    pub fn new() -> Self {
        ForwardTimer::default()
    }

    /// Runs `f`, recording its wall time as a lap of `kernel` in `layer`.
    pub fn lap<R>(&mut self, layer: usize, kernel: KernelKind, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.laps.push((layer, kernel, start.elapsed()));
        out
    }

    /// Every recorded lap, in execution order.
    pub fn laps(&self) -> &[(usize, KernelKind, Duration)] {
        &self.laps
    }

    /// Sum of all lap durations.
    pub fn total(&self) -> Duration {
        self.laps.iter().map(|&(_, _, d)| d).sum()
    }
}

/// Runs `f`, timing it as a `(layer, kernel)` lap when a timer slot is
/// present (the `Option<(&mut ForwardTimer, layer)>` shape both the full
/// and partial layer paths thread down their call trees).
pub fn timed_lap<R>(
    slot: &mut Option<(&mut ForwardTimer, usize)>,
    kernel: KernelKind,
    f: impl FnOnce() -> R,
) -> R {
    match slot {
        Some((timer, layer)) => timer.lap(*layer, kernel, f),
        None => f(),
    }
}

/// Cost-heuristic knobs for [`ForwardPlan::choose`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Skip frontier construction entirely when the (deduplicated) seed
    /// set exceeds this fraction of the graph — such batches practically
    /// always saturate the frontier.
    pub seed_frac_cutoff: f64,
    /// Go partial when the modelled partial-forward cost
    /// ([`partial_cost`]: dense-linear row work **plus** aggregation edge
    /// work, both weighted by their feature dimensions) is below this
    /// fraction of the modelled full-forward cost ([`full_cost`]); the
    /// margin absorbs the partial path's remapping and gather overheads.
    pub work_ratio: f64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            seed_frac_cutoff: 0.05,
            work_ratio: 0.5,
        }
    }
}

/// Per-layer shape summary feeding the [`ForwardPlan::choose`] cost
/// model: one entry per model layer, input to output.
///
/// The unit of cost is one multiply-accumulate. A layer's dense linear
/// costs `rows × in_dim × out_dim` (rows = every node whose transform the
/// layer computes; doubled-ish when a SAGE self linear exists), and its
/// sparse aggregation costs `row visits × agg_width` (`agg_width` is the
/// MaxK `k` when the layer's activation runs the CBSR path, the dense
/// layer width otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// Linear input dimension.
    pub in_dim: usize,
    /// Linear output dimension.
    pub out_dim: usize,
    /// Values accumulated per aggregation row visit.
    pub agg_width: usize,
    /// Whether a SAGE-style self linear runs at the output rows too.
    pub has_self_linear: bool,
}

impl LayerCost {
    /// Derives the cost shape of one layer from its dimensions,
    /// activation and self-path presence.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Option<Activation>,
        has_self_linear: bool,
    ) -> Self {
        let agg_width = match activation {
            Some(Activation::MaxK(k)) => k,
            _ => out_dim,
        };
        LayerCost {
            in_dim,
            out_dim,
            agg_width,
            has_self_linear,
        }
    }
}

/// Modelled multiply-accumulate cost of a full-graph forward over
/// `layers` on a graph with `num_nodes` nodes and `num_edges` nonzeros.
pub fn full_cost(num_nodes: usize, num_edges: usize, layers: &[LayerCost]) -> f64 {
    layers
        .iter()
        .map(|lc| {
            let lin_rows = num_nodes * (1 + usize::from(lc.has_self_linear));
            (lin_rows * lc.in_dim * lc.out_dim) as f64 + (num_edges * lc.agg_width) as f64
        })
        .sum()
}

/// Modelled multiply-accumulate cost of a partial forward over
/// `frontier`: layer `l` transforms the level-`hops-l` rows (plus the
/// level-`hops-1-l` rows again when a self linear exists) and aggregates
/// the hop-`hops-1-l` row visits.
///
/// # Panics
///
/// Panics when `frontier.hops() != layers.len()`.
pub fn partial_cost(frontier: &Frontier, layers: &[LayerCost]) -> f64 {
    let hops = frontier.hops();
    assert_eq!(
        hops,
        layers.len(),
        "frontier depth must match the layer count"
    );
    layers
        .iter()
        .enumerate()
        .map(|(l, lc)| {
            let mut lin_rows = frontier.level(hops - l).len();
            if lc.has_self_linear {
                lin_rows += frontier.level(hops - 1 - l).len();
            }
            (lin_rows * lc.in_dim * lc.out_dim) as f64
                + (frontier.edge_work_at(hops - 1 - l) * lc.agg_width) as f64
        })
        .sum()
}

/// A per-batch forward strategy: full-graph, or restricted to a seed
/// frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardPlan {
    /// Run the ordinary full-graph forward and gather seed rows.
    Full,
    /// Run layer-by-layer over the reverse frontier only.
    Partial(Frontier),
}

impl ForwardPlan {
    /// Picks full vs. partial for `seeds` under `cfg`.
    ///
    /// `adj` is the aggregation operand (row `i` lists the nodes feeding
    /// output `i`) and `layers` the per-layer cost shapes (one entry per
    /// model layer; see [`LayerCost`]). The heuristic compares the
    /// modelled [`partial_cost`] — dense-linear rows **and** aggregation
    /// row visits, each weighted by its feature dimensions — against
    /// [`full_cost`].
    ///
    /// An earlier version compared aggregation edge work only and claimed
    /// the linear work "shrinks by at least the same factor, so it never
    /// flips the decision". That claim was wrong: near frontier
    /// saturation the input-layer linear barely shrinks (almost every
    /// node is still a frontier input) while the edge-work ratio keeps
    /// falling, so the edge-only model overstated partial wins by ~2× at
    /// percent-of-graph seed fractions (measured 1.6× vs ~3× predicted on
    /// the Flickr stand-in at 1%·|V| seeds).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfBounds`] when a seed is out of range.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` or `layers` is empty.
    pub fn choose(
        adj: &Csr,
        seeds: &[u32],
        layers: &[LayerCost],
        cfg: &PlanConfig,
    ) -> Result<ForwardPlan, GraphError> {
        assert!(!seeds.is_empty(), "plan needs at least one seed");
        assert!(!layers.is_empty(), "plan needs at least one layer");
        let n = adj.num_nodes();
        let mut unique = seeds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if unique.last().map(|&s| s as usize >= n).unwrap_or(false) {
            return Err(GraphError::NodeOutOfBounds {
                node: *unique.last().expect("non-empty"),
                num_nodes: n,
            });
        }
        if unique.len() as f64 > cfg.seed_frac_cutoff * n as f64 {
            return Ok(ForwardPlan::Full);
        }
        let frontier = Frontier::reverse_hops(adj, &unique, layers.len())?;
        let full = full_cost(n, adj.num_edges(), layers);
        if partial_cost(&frontier, layers) < cfg.work_ratio * full {
            Ok(ForwardPlan::Partial(frontier))
        } else {
            Ok(ForwardPlan::Full)
        }
    }

    /// True when the plan runs the seed-restricted path.
    pub fn is_partial(&self) -> bool {
        matches!(self, ForwardPlan::Partial(_))
    }

    /// The frontier of a partial plan.
    pub fn frontier(&self) -> Option<&Frontier> {
        match self {
            ForwardPlan::Full => None,
            ForwardPlan::Partial(f) => Some(f),
        }
    }
}

/// Borrowed weight view of one layer, the common denominator between
/// `maxk-nn`'s trainable `Conv` and `maxk-serve`'s immutable inference
/// layers.
#[derive(Debug, Clone, Copy)]
pub struct PlanLayer<'a> {
    /// Layer activation (`None` on the output layer).
    pub activation: Option<Activation>,
    /// GIN `(1 + ε)` epsilon.
    pub eps: f32,
    /// Neighbor-path weight, `in_dim × out_dim`.
    pub neigh_weight: &'a Matrix,
    /// Neighbor-path bias.
    pub neigh_bias: &'a [f32],
    /// SAGE self-path `(weight, bias)`, when present.
    pub self_path: Option<(&'a Matrix, &'a [f32])>,
}

/// Copies the rows of `m` at `positions` into a fresh compact matrix.
fn gather_rows_at(m: &Matrix, positions: impl ExactSizeIterator<Item = usize>) -> Matrix {
    let mut out = Matrix::zeros(positions.len(), m.cols());
    for (r, p) in positions.enumerate() {
        out.row_mut(r).copy_from_slice(m.row(p));
    }
    out
}

/// Positions of `sub`'s members within `sup`'s compact ordering.
///
/// # Panics
///
/// Panics when `sub` is not a subset of `sup`.
fn positions_in(sub: &NodeSet, sup: &NodeSet) -> Vec<usize> {
    sub.ids()
        .iter()
        .map(|&id| sup.compact(id).expect("frontier levels nest"))
        .collect()
}

/// Runs a seed-restricted eval-mode forward over `layers`.
///
/// `features` is the full-graph input matrix; the result is compact over
/// `frontier.seeds()` (`seeds().len() × out_dim`), with row `r` bitwise
/// equal to row `frontier.seeds().ids()[r]` of the full-graph eval
/// forward.
///
/// # Panics
///
/// Panics when `frontier.hops() != layers.len()`, when shapes disagree, or
/// when `arch`/`self_path` presence are inconsistent.
#[must_use]
pub fn partial_forward(
    adj: &Csr,
    arch: Arch,
    layers: &[PlanLayer<'_>],
    frontier: &Frontier,
    features: &Matrix,
) -> Matrix {
    partial_forward_timed(adj, arch, layers, frontier, features, None)
}

/// [`partial_forward`] with optional per-layer kernel timing: when
/// `timer` is present, every kernel call is recorded as a
/// `(layer, `[`KernelKind`]`)` lap. The computation is identical either
/// way (the timer only wraps calls in wall-clock reads).
///
/// # Panics
///
/// Same conditions as [`partial_forward`].
#[must_use]
pub fn partial_forward_timed(
    adj: &Csr,
    arch: Arch,
    layers: &[PlanLayer<'_>],
    frontier: &Frontier,
    features: &Matrix,
    mut timer: Option<&mut ForwardTimer>,
) -> Matrix {
    assert_eq!(
        frontier.hops(),
        layers.len(),
        "frontier depth must match the layer count"
    );
    assert_eq!(
        features.rows(),
        adj.num_nodes(),
        "feature rows must match graph nodes"
    );
    let hops = layers.len();
    let mut x = {
        let mut slot0 = timer.as_deref_mut().map(|t| (t, 0usize));
        timed_lap(&mut slot0, KernelKind::Gather, || {
            gather_rows_at(
                features,
                frontier.inputs().ids().iter().map(|&id| id as usize),
            )
        })
    };
    for (l, layer) in layers.iter().enumerate() {
        let in_set = frontier.level(hops - l);
        let out_set = frontier.level(hops - l - 1);
        let slot = timer.as_deref_mut().map(|t| (t, l));
        x = partial_layer(adj, arch, layer, &x, out_set, in_set, slot);
    }
    x
}

/// One layer of the partial forward: mirrors the eval-mode `Conv::forward`
/// / `InferLayer::forward` dataflow restricted to `out_set` rows.
fn partial_layer(
    adj: &Csr,
    arch: Arch,
    layer: &PlanLayer<'_>,
    x: &Matrix,
    out_set: &NodeSet,
    in_set: &NodeSet,
    mut timer: Option<(&mut ForwardTimer, usize)>,
) -> Matrix {
    // Linear transform at every input node (each feeds some output row).
    let z = timed_lap(&mut timer, KernelKind::DenseLinear, || {
        let mut z = ops::matmul(x, layer.neigh_weight);
        ops::add_bias(&mut z, layer.neigh_bias);
        z
    });

    let out_positions = positions_in(out_set, in_set);
    let mut pattern = None;
    let mut y = match layer.activation {
        Some(Activation::MaxK(k)) => {
            let hs = timed_lap(&mut timer, KernelKind::MaxK, || {
                maxk_forward(&z, k).expect("k validated at model construction")
            });
            let y = timed_lap(&mut timer, KernelKind::SSpMM, || {
                sspmm_rows(adj, &hs, out_set, in_set)
            });
            pattern = Some(hs);
            y
        }
        Some(Activation::Relu) => timed_lap(&mut timer, KernelKind::SpMM, || {
            spmm_rows(adj, &ops::relu(&z), out_set, in_set)
        }),
        None => timed_lap(&mut timer, KernelKind::SpMM, || {
            spmm_rows(adj, &z, out_set, in_set)
        }),
    };

    match arch {
        Arch::Sage => {
            let (w, b) = layer.self_path.expect("SAGE has a self linear");
            let x_out = timed_lap(&mut timer, KernelKind::Gather, || {
                gather_rows_at(x, out_positions.iter().copied())
            });
            timed_lap(&mut timer, KernelKind::DenseLinear, || {
                let mut self_y = ops::matmul(&x_out, w);
                ops::add_bias(&mut self_y, b);
                ops::add_assign(&mut y, &self_y);
            });
        }
        Arch::Gin => {
            let scale = 1.0 + layer.eps;
            match (&layer.activation, &pattern) {
                (Some(Activation::MaxK(_)), Some(hs)) => {
                    // Row-subset maxk_backward: scatter the out rows'
                    // pattern densely, then scale+add like the full path.
                    timed_lap(&mut timer, KernelKind::MaxK, || {
                        let k = hs.k();
                        let mut d = Matrix::zeros(out_set.len(), hs.dim_origin());
                        for (r, &c) in out_positions.iter().enumerate() {
                            let row = d.row_mut(r);
                            for t in 0..k {
                                row[hs.index_at(c, t)] = hs.row_data(c)[t];
                            }
                        }
                        ops::scale_assign(&mut d, scale);
                        ops::add_assign(&mut y, &d);
                    });
                }
                (Some(Activation::Relu), _) => {
                    timed_lap(&mut timer, KernelKind::DenseLinear, || {
                        let mut h = ops::relu(&gather_rows_at(&z, out_positions.iter().copied()));
                        ops::scale_assign(&mut h, scale);
                        ops::add_assign(&mut y, &h);
                    });
                }
                _ => {
                    timed_lap(&mut timer, KernelKind::DenseLinear, || {
                        let mut zz = gather_rows_at(&z, out_positions.iter().copied());
                        ops::scale_assign(&mut zz, scale);
                        ops::add_assign(&mut y, &zz);
                    });
                }
            }
        }
        Arch::Gcn => {}
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GnnModel, ModelConfig};
    use maxk_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Csr {
        generate::chung_lu_power_law(70, 6.0, 2.3, 2)
            .to_csr()
            .unwrap()
    }

    fn model(arch: Arch, act: Activation) -> GnnModel {
        let mut cfg = ModelConfig::new(arch, act, 8, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        GnnModel::new(cfg, &graph(), &mut rng)
    }

    #[test]
    fn partial_matches_full_forward_bitwise_all_combos() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Activation::Relu, Activation::MaxK(4)] {
                let mut m = model(arch, act);
                let mut rng = StdRng::seed_from_u64(11);
                let x = Matrix::xavier(70, 8, &mut rng);
                let full = m.forward(&x, false, &mut rng);
                let frontier = Frontier::reverse_hops(&m.context().adj, &[0, 13, 69], 3).unwrap();
                let plan = ForwardPlan::Partial(frontier);
                let part = m.forward_planned(&x, &[13, 0, 69, 13], &plan);
                assert_eq!(part.shape(), (4, 3), "{arch:?} {act:?}");
                assert_eq!(part.row(0), full.row(13), "{arch:?} {act:?}");
                assert_eq!(part.row(1), full.row(0), "{arch:?} {act:?}");
                assert_eq!(part.row(2), full.row(69), "{arch:?} {act:?}");
                assert_eq!(part.row(3), full.row(13), "{arch:?} {act:?}");
            }
        }
    }

    #[test]
    fn full_plan_gathers_same_rows() {
        let mut m = model(Arch::Sage, Activation::MaxK(4));
        let mut rng = StdRng::seed_from_u64(13);
        let x = Matrix::xavier(70, 8, &mut rng);
        let full = m.forward(&x, false, &mut rng);
        let out = m.forward_planned(&x, &[5, 5, 2], &ForwardPlan::Full);
        assert_eq!(out.row(0), full.row(5));
        assert_eq!(out.row(1), full.row(5));
        assert_eq!(out.row(2), full.row(2));
    }

    #[test]
    fn choose_goes_partial_for_small_seed_sets() {
        let m = model(Arch::Gcn, Activation::Relu);
        let adj = &m.context().adj;
        let costs = m.layer_costs();
        let plan = ForwardPlan::choose(adj, &[0], &costs, &PlanConfig::default()).unwrap();
        // A single seed in a 70-node graph may or may not saturate the
        // 3-hop frontier; just check consistency of the decision.
        if let ForwardPlan::Partial(f) = &plan {
            assert!(f.edge_work() < 3 * adj.num_edges());
            assert_eq!(f.seeds().ids(), &[0]);
        }
        // Forcing a generous ratio must always go partial: the partial
        // cost never exceeds the full cost (levels and hop visits are
        // subsets of the full rows/edges).
        let generous = PlanConfig {
            seed_frac_cutoff: 1.0,
            work_ratio: 1.1,
        };
        assert!(ForwardPlan::choose(adj, &[0], &costs, &generous)
            .unwrap()
            .is_partial());
    }

    #[test]
    fn choose_goes_full_for_saturating_seed_sets() {
        let m = model(Arch::Gcn, Activation::Relu);
        let adj = &m.context().adj;
        let all: Vec<u32> = (0..70).collect();
        let plan =
            ForwardPlan::choose(adj, &all, &m.layer_costs(), &PlanConfig::default()).unwrap();
        assert!(!plan.is_partial());
        assert!(plan.frontier().is_none());
    }

    #[test]
    fn choose_rejects_bad_seed() {
        let m = model(Arch::Gcn, Activation::Relu);
        assert!(ForwardPlan::choose(
            &m.context().adj,
            &[70],
            &m.layer_costs(),
            &PlanConfig::default()
        )
        .is_err());
    }

    #[test]
    fn linear_work_flips_edge_only_decisions() {
        // Regression for the edge-only cost model: a star graph where one
        // hub row holds every edge and the seeds are all the leaves. The
        // leaves' reverse frontier never expands (their rows are empty),
        // so aggregation edge work is 0 and the old edge-only comparison
        // (0 < ratio × L|E|) always picked partial — yet the partial
        // forward still transforms 99/100 of the nodes through every
        // dense linear, so almost nothing is saved.
        let n = 100u32;
        let adj =
            maxk_graph::Coo::from_edges(n as usize, (1..n).map(|j| (0u32, j)).collect::<Vec<_>>())
                .unwrap()
                .to_csr()
                .unwrap();
        let seeds: Vec<u32> = (1..n).collect();
        let costs = vec![LayerCost::new(64, 64, Some(Activation::Relu), false); 2];
        let cfg = PlanConfig {
            seed_frac_cutoff: 1.0,
            work_ratio: 0.5,
        };
        let frontier = Frontier::reverse_hops(&adj, &seeds, 2).unwrap();
        assert_eq!(frontier.edge_work(), 0, "leaf rows are empty");
        // Edge-only model: 0 < 0.5 × L|E| → would have gone partial.
        assert!((frontier.edge_work() as f64) < 0.5 * (2 * adj.num_edges()) as f64);
        // Corrected model: the dense linear dominates and shrinks by only
        // 1/n, so the plan must stay full.
        let plan = ForwardPlan::choose(&adj, &seeds, &costs, &cfg).unwrap();
        assert!(!plan.is_partial(), "linear row work must veto partial");
        let ratio = partial_cost(&frontier, &costs) / full_cost(100, adj.num_edges(), &costs);
        assert!(ratio > 0.9, "modelled saving should be marginal: {ratio}");
    }

    #[test]
    fn cost_model_weights_layers_by_their_own_dims() {
        let adj = graph();
        let frontier = Frontier::reverse_hops(&adj, &[0], 2).unwrap();
        let costs = vec![
            LayerCost::new(8, 12, Some(Activation::MaxK(4)), true),
            LayerCost::new(12, 3, None, true),
        ];
        // Hand-rolled expectations, layer by layer.
        let expected_partial = (frontier.level(2).len() + frontier.level(1).len()) as f64
            * (8 * 12) as f64
            + (frontier.edge_work_at(1) * 4) as f64
            + (frontier.level(1).len() + frontier.level(0).len()) as f64 * (12 * 3) as f64
            + (frontier.edge_work_at(0) * 3) as f64;
        assert_eq!(partial_cost(&frontier, &costs), expected_partial);
        let n = adj.num_nodes();
        let e = adj.num_edges();
        let expected_full = (2 * n * 8 * 12 + e * 4) as f64 + (2 * n * 12 * 3 + e * 3) as f64;
        assert_eq!(full_cost(n, e, &costs), expected_full);
    }
}
