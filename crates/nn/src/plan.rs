//! Forward planning: full-graph vs. seed-restricted partial forward.
//!
//! A serving batch only needs logits at its seed union, so when the
//! union's reverse L-hop frontier (see `maxk_graph::frontier`) touches a
//! small fraction of the graph, computing each layer only at the frontier
//! rows is much cheaper than the full-graph forward. [`ForwardPlan`]
//! captures that per-batch decision, [`PlanConfig`] holds the cost
//! heuristic, and [`partial_forward`] executes the plan over any layer
//! stack expressed as [`PlanLayer`] weight views — both
//! [`crate::GnnModel::forward_planned`] and `maxk-serve`'s
//! `InferenceEngine` route through it, so the partial layer math lives in
//! exactly one place.
//!
//! Partial outputs are **bitwise equal** to the corresponding rows of the
//! full forward: every step (per-row linear transform, MaxK selection,
//! row-subset aggregation via `maxk_core::subset`, self paths) performs
//! the same floating-point operations in the same order as the full-graph
//! path, just skipping rows nobody asked for.

use crate::conv::{Activation, Arch};
use maxk_core::maxk::maxk_forward;
use maxk_core::subset::{spmm_rows, sspmm_rows};
use maxk_graph::{Csr, Frontier, GraphError, NodeSet};
use maxk_tensor::{ops, Matrix};

/// Cost-heuristic knobs for [`ForwardPlan::choose`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Skip frontier construction entirely when the (deduplicated) seed
    /// set exceeds this fraction of the graph — such batches practically
    /// always saturate the frontier.
    pub seed_frac_cutoff: f64,
    /// Go partial when the frontier's aggregation edge work is below this
    /// fraction of the full forward's (`layers × num_edges`); the margin
    /// absorbs the partial path's remapping and gather overheads.
    pub work_ratio: f64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            seed_frac_cutoff: 0.05,
            work_ratio: 0.5,
        }
    }
}

/// A per-batch forward strategy: full-graph, or restricted to a seed
/// frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardPlan {
    /// Run the ordinary full-graph forward and gather seed rows.
    Full,
    /// Run layer-by-layer over the reverse frontier only.
    Partial(Frontier),
}

impl ForwardPlan {
    /// Picks full vs. partial for `seeds` under `cfg`.
    ///
    /// `adj` is the aggregation operand (row `i` lists the nodes feeding
    /// output `i`) and `num_layers` the model depth. The heuristic
    /// compares sparse-aggregation row visits only; the dense linear work
    /// shrinks by at least the same factor, so it never flips the
    /// decision.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfBounds`] when a seed is out of range.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty.
    pub fn choose(
        adj: &Csr,
        seeds: &[u32],
        num_layers: usize,
        cfg: &PlanConfig,
    ) -> Result<ForwardPlan, GraphError> {
        assert!(!seeds.is_empty(), "plan needs at least one seed");
        let n = adj.num_nodes();
        let mut unique = seeds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if unique.last().map(|&s| s as usize >= n).unwrap_or(false) {
            return Err(GraphError::NodeOutOfBounds {
                node: *unique.last().expect("non-empty"),
                num_nodes: n,
            });
        }
        if unique.len() as f64 > cfg.seed_frac_cutoff * n as f64 {
            return Ok(ForwardPlan::Full);
        }
        let frontier = Frontier::reverse_hops(adj, &unique, num_layers)?;
        let full_work = (num_layers * adj.num_edges()) as f64;
        if (frontier.edge_work() as f64) < cfg.work_ratio * full_work {
            Ok(ForwardPlan::Partial(frontier))
        } else {
            Ok(ForwardPlan::Full)
        }
    }

    /// True when the plan runs the seed-restricted path.
    pub fn is_partial(&self) -> bool {
        matches!(self, ForwardPlan::Partial(_))
    }

    /// The frontier of a partial plan.
    pub fn frontier(&self) -> Option<&Frontier> {
        match self {
            ForwardPlan::Full => None,
            ForwardPlan::Partial(f) => Some(f),
        }
    }
}

/// Borrowed weight view of one layer, the common denominator between
/// `maxk-nn`'s trainable `Conv` and `maxk-serve`'s immutable inference
/// layers.
#[derive(Debug, Clone, Copy)]
pub struct PlanLayer<'a> {
    /// Layer activation (`None` on the output layer).
    pub activation: Option<Activation>,
    /// GIN `(1 + ε)` epsilon.
    pub eps: f32,
    /// Neighbor-path weight, `in_dim × out_dim`.
    pub neigh_weight: &'a Matrix,
    /// Neighbor-path bias.
    pub neigh_bias: &'a [f32],
    /// SAGE self-path `(weight, bias)`, when present.
    pub self_path: Option<(&'a Matrix, &'a [f32])>,
}

/// Copies the rows of `m` at `positions` into a fresh compact matrix.
fn gather_rows_at(m: &Matrix, positions: impl ExactSizeIterator<Item = usize>) -> Matrix {
    let mut out = Matrix::zeros(positions.len(), m.cols());
    for (r, p) in positions.enumerate() {
        out.row_mut(r).copy_from_slice(m.row(p));
    }
    out
}

/// Positions of `sub`'s members within `sup`'s compact ordering.
///
/// # Panics
///
/// Panics when `sub` is not a subset of `sup`.
fn positions_in(sub: &NodeSet, sup: &NodeSet) -> Vec<usize> {
    sub.ids()
        .iter()
        .map(|&id| sup.compact(id).expect("frontier levels nest"))
        .collect()
}

/// Runs a seed-restricted eval-mode forward over `layers`.
///
/// `features` is the full-graph input matrix; the result is compact over
/// `frontier.seeds()` (`seeds().len() × out_dim`), with row `r` bitwise
/// equal to row `frontier.seeds().ids()[r]` of the full-graph eval
/// forward.
///
/// # Panics
///
/// Panics when `frontier.hops() != layers.len()`, when shapes disagree, or
/// when `arch`/`self_path` presence are inconsistent.
#[must_use]
pub fn partial_forward(
    adj: &Csr,
    arch: Arch,
    layers: &[PlanLayer<'_>],
    frontier: &Frontier,
    features: &Matrix,
) -> Matrix {
    assert_eq!(
        frontier.hops(),
        layers.len(),
        "frontier depth must match the layer count"
    );
    assert_eq!(
        features.rows(),
        adj.num_nodes(),
        "feature rows must match graph nodes"
    );
    let hops = layers.len();
    let mut x = gather_rows_at(
        features,
        frontier.inputs().ids().iter().map(|&id| id as usize),
    );
    for (l, layer) in layers.iter().enumerate() {
        let in_set = frontier.level(hops - l);
        let out_set = frontier.level(hops - l - 1);
        x = partial_layer(adj, arch, layer, &x, out_set, in_set);
    }
    x
}

/// One layer of the partial forward: mirrors the eval-mode `Conv::forward`
/// / `InferLayer::forward` dataflow restricted to `out_set` rows.
fn partial_layer(
    adj: &Csr,
    arch: Arch,
    layer: &PlanLayer<'_>,
    x: &Matrix,
    out_set: &NodeSet,
    in_set: &NodeSet,
) -> Matrix {
    // Linear transform at every input node (each feeds some output row).
    let mut z = ops::matmul(x, layer.neigh_weight);
    ops::add_bias(&mut z, layer.neigh_bias);

    let out_positions = positions_in(out_set, in_set);
    let mut pattern = None;
    let mut y = match layer.activation {
        Some(Activation::MaxK(k)) => {
            let hs = maxk_forward(&z, k).expect("k validated at model construction");
            let y = sspmm_rows(adj, &hs, out_set, in_set);
            pattern = Some(hs);
            y
        }
        Some(Activation::Relu) => spmm_rows(adj, &ops::relu(&z), out_set, in_set),
        None => spmm_rows(adj, &z, out_set, in_set),
    };

    match arch {
        Arch::Sage => {
            let (w, b) = layer.self_path.expect("SAGE has a self linear");
            let x_out = gather_rows_at(x, out_positions.iter().copied());
            let mut self_y = ops::matmul(&x_out, w);
            ops::add_bias(&mut self_y, b);
            ops::add_assign(&mut y, &self_y);
        }
        Arch::Gin => {
            let scale = 1.0 + layer.eps;
            match (&layer.activation, &pattern) {
                (Some(Activation::MaxK(_)), Some(hs)) => {
                    // Row-subset maxk_backward: scatter the out rows'
                    // pattern densely, then scale+add like the full path.
                    let k = hs.k();
                    let mut d = Matrix::zeros(out_set.len(), hs.dim_origin());
                    for (r, &c) in out_positions.iter().enumerate() {
                        let row = d.row_mut(r);
                        for t in 0..k {
                            row[hs.index_at(c, t)] = hs.row_data(c)[t];
                        }
                    }
                    ops::scale_assign(&mut d, scale);
                    ops::add_assign(&mut y, &d);
                }
                (Some(Activation::Relu), _) => {
                    let mut h = ops::relu(&gather_rows_at(&z, out_positions.iter().copied()));
                    ops::scale_assign(&mut h, scale);
                    ops::add_assign(&mut y, &h);
                }
                _ => {
                    let mut zz = gather_rows_at(&z, out_positions.iter().copied());
                    ops::scale_assign(&mut zz, scale);
                    ops::add_assign(&mut y, &zz);
                }
            }
        }
        Arch::Gcn => {}
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GnnModel, ModelConfig};
    use maxk_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Csr {
        generate::chung_lu_power_law(70, 6.0, 2.3, 2)
            .to_csr()
            .unwrap()
    }

    fn model(arch: Arch, act: Activation) -> GnnModel {
        let mut cfg = ModelConfig::new(arch, act, 8, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        GnnModel::new(cfg, &graph(), &mut rng)
    }

    #[test]
    fn partial_matches_full_forward_bitwise_all_combos() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Activation::Relu, Activation::MaxK(4)] {
                let mut m = model(arch, act);
                let mut rng = StdRng::seed_from_u64(11);
                let x = Matrix::xavier(70, 8, &mut rng);
                let full = m.forward(&x, false, &mut rng);
                let frontier = Frontier::reverse_hops(&m.context().adj, &[0, 13, 69], 3).unwrap();
                let plan = ForwardPlan::Partial(frontier);
                let part = m.forward_planned(&x, &[13, 0, 69, 13], &plan);
                assert_eq!(part.shape(), (4, 3), "{arch:?} {act:?}");
                assert_eq!(part.row(0), full.row(13), "{arch:?} {act:?}");
                assert_eq!(part.row(1), full.row(0), "{arch:?} {act:?}");
                assert_eq!(part.row(2), full.row(69), "{arch:?} {act:?}");
                assert_eq!(part.row(3), full.row(13), "{arch:?} {act:?}");
            }
        }
    }

    #[test]
    fn full_plan_gathers_same_rows() {
        let mut m = model(Arch::Sage, Activation::MaxK(4));
        let mut rng = StdRng::seed_from_u64(13);
        let x = Matrix::xavier(70, 8, &mut rng);
        let full = m.forward(&x, false, &mut rng);
        let out = m.forward_planned(&x, &[5, 5, 2], &ForwardPlan::Full);
        assert_eq!(out.row(0), full.row(5));
        assert_eq!(out.row(1), full.row(5));
        assert_eq!(out.row(2), full.row(2));
    }

    #[test]
    fn choose_goes_partial_for_small_seed_sets() {
        let m = model(Arch::Gcn, Activation::Relu);
        let adj = &m.context().adj;
        let plan = ForwardPlan::choose(adj, &[0], 3, &PlanConfig::default()).unwrap();
        // A single seed in a 70-node graph may or may not saturate the
        // 3-hop frontier; just check consistency of the decision.
        if let ForwardPlan::Partial(f) = &plan {
            assert!(f.edge_work() < 3 * adj.num_edges());
            assert_eq!(f.seeds().ids(), &[0]);
        }
        // Forcing a generous ratio must always go partial.
        let generous = PlanConfig {
            seed_frac_cutoff: 1.0,
            work_ratio: 1.1,
        };
        assert!(ForwardPlan::choose(adj, &[0], 3, &generous)
            .unwrap()
            .is_partial());
    }

    #[test]
    fn choose_goes_full_for_saturating_seed_sets() {
        let m = model(Arch::Gcn, Activation::Relu);
        let adj = &m.context().adj;
        let all: Vec<u32> = (0..70).collect();
        let plan = ForwardPlan::choose(adj, &all, 3, &PlanConfig::default()).unwrap();
        assert!(!plan.is_partial());
        assert!(plan.frontier().is_none());
    }

    #[test]
    fn choose_rejects_bad_seed() {
        let m = model(Arch::Gcn, Activation::Relu);
        assert!(ForwardPlan::choose(&m.context().adj, &[70], 3, &PlanConfig::default()).is_err());
    }
}
