//! GNN layers, models and full-batch training for MaxK-GNN.
//!
//! This crate is the reproduction's PyTorch-frontend equivalent: it stacks
//! GCN / GraphSAGE / GIN convolutions (Table 3 configurations) over the
//! kernels of [`maxk_core`], with explicit forward/backward passes, Adam
//! optimization, masked losses and the paper's evaluation metrics.
//!
//! The layer dataflow follows Fig. 2/Fig. 5 of the paper exactly:
//!
//! * **ReLU baseline**: `Y = SpMM(Â, ReLU(X·W))` (+ model-specific self
//!   paths) — aggregation runs on a *dense* feature map;
//! * **MaxK mode**: `Y = SpGEMM(Â, MaxK_k(X·W))` — the nonlinearity runs
//!   *before* aggregation, the feature map crosses the kernel boundary in
//!   CBSR, and the backward pass uses the SSpMM kernel with the sparsity
//!   pattern inherited from the forward pass.
//!
//! Per-phase wall-clock timers ([`PhaseTimers`]) record where each epoch
//! goes (SpMM vs Linear vs MaxK vs other), powering the Fig. 1(c)
//! breakdown and the Amdahl's-law speedup limits of Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod mlp;
pub mod model;
pub mod plan;
pub mod snapshot;
pub mod train;
pub mod version;

pub use conv::{Activation, Arch, Conv, GraphContext};
pub use model::{GnnModel, ModelConfig, PhaseTimers};
pub use plan::{ForwardPlan, LayerCost, PlanConfig, PlanLayer};
pub use snapshot::{ModelSnapshot, SnapshotError};
pub use train::{train_full_batch, EpochStats, TrainConfig, TrainResult};
pub use version::{GraphVersion, SnapshotGeneration};
