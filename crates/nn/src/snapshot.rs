//! Versioned binary model snapshots: persist a trained [`GnnModel`]'s
//! weights and [`ModelConfig`], reload them later (e.g. in the
//! `maxk-serve` inference engine), bitwise-exactly.
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   8 bytes  b"MAXKSNP1"
//! version u32      1
//! len     u32      body byte count
//! body    len      config + per-layer parameters (see below)
//! crc     u32      FNV-1a over every preceding byte
//! ```
//!
//! The body serializes the [`ModelConfig`] (architecture, activation,
//! layer dimensions, dropout, Edge-Group width) followed by each layer's
//! GIN epsilon, neighbor-path linear and optional SAGE self-path linear.
//! `f32` values round-trip through their raw bit patterns, so a restored
//! model's eval-mode logits are bit-identical to the captured model's.
//!
//! # Example
//!
//! ```
//! use maxk_nn::snapshot::ModelSnapshot;
//! use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
//! use maxk_graph::generate;
//! use rand::SeedableRng;
//!
//! let graph = generate::chung_lu_power_law(50, 5.0, 2.3, 1).to_csr().unwrap();
//! let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 8, 3);
//! cfg.hidden_dim = 16;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = GnnModel::new(cfg, &graph, &mut rng);
//!
//! let bytes = ModelSnapshot::capture(&model).to_bytes();
//! let restored = ModelSnapshot::from_bytes(&bytes).unwrap().restore(&graph).unwrap();
//! assert_eq!(restored.num_params(), model.num_params());
//! ```

use crate::conv::{Activation, Arch, Conv};
use crate::model::{GnnModel, ModelConfig};
use crate::version::SnapshotGeneration;
use maxk_graph::Csr;
use maxk_tensor::{Linear, Matrix};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"MAXKSNP1";
/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Errors produced while writing, reading or restoring a snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem failure during save/load.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported.
    UnsupportedVersion(u32),
    /// The file is shorter than its header promises.
    Truncated {
        /// Bytes the header declares.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The checksum does not match the payload.
    Corrupt {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed from the payload.
        computed: u32,
    },
    /// The payload parses but is internally inconsistent.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a MaxK-GNN snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (supported: {VERSION})")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated snapshot: expected {expected} bytes, got {actual}"
                )
            }
            SnapshotError::Corrupt { stored, computed } => write!(
                f,
                "corrupt snapshot: stored checksum {stored:#010x} != computed {computed:#010x}"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Captured parameters of one convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSnapshot {
    /// GIN `(1 + ε)` epsilon (0 for other architectures).
    pub eps: f32,
    /// Neighbor-path weight, `in_dim × out_dim`.
    pub neigh_weight: Matrix,
    /// Neighbor-path bias, `out_dim`.
    pub neigh_bias: Vec<f32>,
    /// SAGE self-path `(weight, bias)`, when the architecture has one.
    pub self_path: Option<(Matrix, Vec<f32>)>,
}

/// A complete serializable model: configuration plus per-layer weights.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The captured model configuration.
    pub config: ModelConfig,
    /// Per-layer parameters, input layer first.
    pub layers: Vec<LayerSnapshot>,
    /// Process-local identity of this weight set, minted when the
    /// snapshot is captured or loaded. Not persisted in the byte format
    /// and excluded from equality: it names a runtime incarnation, not
    /// the weights' values. Clones share the generation; a reload of the
    /// same file mints a new one.
    pub generation: SnapshotGeneration,
}

// Equality deliberately ignores `generation`: two snapshots with the
// same config and weights compare equal even across save/load round
// trips, while the runtime identity stays distinct for cache keying.
impl PartialEq for ModelSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.layers == other.layers
    }
}

impl ModelSnapshot {
    /// Captures the weights and configuration of `model`.
    #[must_use]
    pub fn capture(model: &GnnModel) -> Self {
        let layers = model
            .layers()
            .iter()
            .map(|conv| LayerSnapshot {
                eps: conv.eps(),
                neigh_weight: conv.lin_neigh().weight().clone(),
                neigh_bias: conv.lin_neigh().bias().to_vec(),
                self_path: conv
                    .lin_self()
                    .map(|l| (l.weight().clone(), l.bias().to_vec())),
            })
            .collect();
        ModelSnapshot {
            config: model.config().clone(),
            layers,
            generation: SnapshotGeneration::mint(),
        }
    }

    /// Rebuilds a trainable [`GnnModel`] over `graph` from this snapshot.
    ///
    /// The graph context (normalization, Edge-Group partition) is rebuilt
    /// exactly as [`GnnModel::new`] would, so eval-mode forward passes of
    /// the restored model are bit-identical to the captured one on the
    /// same graph.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the layer chain is inconsistent
    /// with the configuration.
    pub fn restore(&self, graph: &Csr) -> Result<GnnModel, SnapshotError> {
        self.check_consistency()?;
        let cfg = self.config.clone();
        let mut convs = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let activation = if i + 1 == cfg.num_layers {
                None
            } else {
                Some(cfg.activation)
            };
            let lin_neigh =
                Linear::from_parts(layer.neigh_weight.clone(), layer.neigh_bias.clone());
            let lin_self = layer
                .self_path
                .as_ref()
                .map(|(w, b)| Linear::from_parts(w.clone(), b.clone()));
            convs.push(Conv::from_parts(
                cfg.arch,
                activation,
                cfg.dropout,
                layer.eps,
                lin_neigh,
                lin_self,
            ));
        }
        Ok(GnnModel::from_parts(cfg, graph, convs))
    }

    /// Validates that the layer chain matches the configuration, turning
    /// would-be panics in the restore path into [`SnapshotError`]s.
    ///
    /// Public because downstream consumers (the serving engine) accept
    /// hand-built `ModelSnapshot` values that never went through
    /// [`ModelSnapshot::from_bytes`] and need the same gate.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] naming the first inconsistency.
    pub fn check_consistency(&self) -> Result<(), SnapshotError> {
        let cfg = &self.config;
        if cfg.num_layers < 2 {
            return Err(SnapshotError::Malformed(format!(
                "num_layers {} below minimum 2",
                cfg.num_layers
            )));
        }
        if let Activation::MaxK(k) = cfg.activation {
            if k == 0 || k > cfg.hidden_dim {
                return Err(SnapshotError::Malformed(format!(
                    "MaxK k {k} invalid for hidden dim {}",
                    cfg.hidden_dim
                )));
            }
        }
        if self.layers.len() != cfg.num_layers {
            return Err(SnapshotError::Malformed(format!(
                "{} layers but config says {}",
                self.layers.len(),
                cfg.num_layers
            )));
        }
        for (i, layer) in self.layers.iter().enumerate() {
            let in_dim = if i == 0 { cfg.in_dim } else { cfg.hidden_dim };
            let out_dim = if i + 1 == cfg.num_layers {
                cfg.out_dim
            } else {
                cfg.hidden_dim
            };
            if layer.neigh_weight.shape() != (in_dim, out_dim) {
                return Err(SnapshotError::Malformed(format!(
                    "layer {i} weight shape {:?}, expected ({in_dim}, {out_dim})",
                    layer.neigh_weight.shape()
                )));
            }
            if layer.neigh_bias.len() != out_dim {
                return Err(SnapshotError::Malformed(format!(
                    "layer {i} bias length {}, expected {out_dim}",
                    layer.neigh_bias.len()
                )));
            }
            if (cfg.arch == Arch::Sage) != layer.self_path.is_some() {
                return Err(SnapshotError::Malformed(format!(
                    "layer {i} self path presence disagrees with arch {:?}",
                    cfg.arch
                )));
            }
            if let Some((w, b)) = &layer.self_path {
                if w.shape() != (in_dim, out_dim) || b.len() != out_dim {
                    return Err(SnapshotError::Malformed(format!(
                        "layer {i} self path shape {:?}/{}",
                        w.shape(),
                        b.len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Serializes to the versioned binary format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let cfg = &self.config;
        body.push(arch_tag(cfg.arch));
        let (act_tag, act_k) = activation_tag(cfg.activation);
        body.push(act_tag);
        put_u32(&mut body, act_k);
        put_u32(&mut body, cfg.num_layers as u32);
        put_u32(&mut body, cfg.in_dim as u32);
        put_u32(&mut body, cfg.hidden_dim as u32);
        put_u32(&mut body, cfg.out_dim as u32);
        put_f32(&mut body, cfg.dropout);
        put_u32(&mut body, cfg.eg_width as u32);
        put_u32(&mut body, self.layers.len() as u32);
        for layer in &self.layers {
            put_f32(&mut body, layer.eps);
            put_matrix(&mut body, &layer.neigh_weight);
            put_f32_slice(&mut body, &layer.neigh_bias);
            match &layer.self_path {
                Some((w, b)) => {
                    body.push(1);
                    put_matrix(&mut body, w);
                    put_f32_slice(&mut body, b);
                }
                None => body.push(0),
            }
        }

        let mut out = Vec::with_capacity(MAGIC.len() + 12 + body.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        let crc = fnv1a(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Parses the versioned binary format.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// [`SnapshotError::Truncated`] (file shorter than the header
    /// declares), [`SnapshotError::Corrupt`] (checksum mismatch) or
    /// [`SnapshotError::Malformed`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let header = MAGIC.len() + 8; // magic + version + body_len
        if bytes.len() < header {
            return Err(SnapshotError::Truncated {
                expected: header + 4,
                actual: bytes.len(),
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = Reader {
            buf: bytes,
            pos: MAGIC.len(),
        };
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let body_len = r.u32()? as usize;
        let expected = header + body_len + 4;
        if bytes.len() < expected {
            return Err(SnapshotError::Truncated {
                expected,
                actual: bytes.len(),
            });
        }
        if bytes.len() > expected {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes",
                bytes.len() - expected
            )));
        }
        let computed = fnv1a(&bytes[..expected - 4]);
        let stored = u32::from_le_bytes(bytes[expected - 4..].try_into().expect("4 bytes"));
        if stored != computed {
            return Err(SnapshotError::Corrupt { stored, computed });
        }

        let arch = arch_from_tag(r.u8()?)?;
        let activation = activation_from_tag(r.u8()?, r.u32()?)?;
        let num_layers = r.u32()? as usize;
        let in_dim = r.u32()? as usize;
        let hidden_dim = r.u32()? as usize;
        let out_dim = r.u32()? as usize;
        let dropout = r.f32()?;
        let eg_width = r.u32()? as usize;
        let config = ModelConfig {
            arch,
            activation,
            num_layers,
            in_dim,
            hidden_dim,
            out_dim,
            dropout,
            eg_width,
        };
        let layer_count = r.u32()? as usize;
        let mut layers = Vec::new();
        for _ in 0..layer_count {
            let eps = r.f32()?;
            let neigh_weight = r.matrix()?;
            let neigh_bias = r.f32_vec()?;
            let self_path = match r.u8()? {
                0 => None,
                1 => Some((r.matrix()?, r.f32_vec()?)),
                t => {
                    return Err(SnapshotError::Malformed(format!("bad self-path tag {t}")));
                }
            };
            layers.push(LayerSnapshot {
                eps,
                neigh_weight,
                neigh_bias,
                self_path,
            });
        }
        if r.pos != expected - 4 {
            return Err(SnapshotError::Malformed(format!(
                "{} unparsed body bytes",
                expected - 4 - r.pos
            )));
        }
        let snap = ModelSnapshot {
            config,
            layers,
            generation: SnapshotGeneration::mint(),
        };
        snap.check_consistency()?;
        Ok(snap)
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, plus every
    /// [`ModelSnapshot::from_bytes`] condition.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Total parameter count stored in the snapshot.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                let neigh = l.neigh_weight.data().len() + l.neigh_bias.len();
                let own = l
                    .self_path
                    .as_ref()
                    .map_or(0, |(w, b)| w.data().len() + b.len());
                neigh + own
            })
            .sum()
    }
}

fn arch_tag(arch: Arch) -> u8 {
    match arch {
        Arch::Gcn => 0,
        Arch::Sage => 1,
        Arch::Gin => 2,
    }
}

fn arch_from_tag(tag: u8) -> Result<Arch, SnapshotError> {
    match tag {
        0 => Ok(Arch::Gcn),
        1 => Ok(Arch::Sage),
        2 => Ok(Arch::Gin),
        t => Err(SnapshotError::Malformed(format!("bad arch tag {t}"))),
    }
}

fn activation_tag(act: Activation) -> (u8, u32) {
    match act {
        Activation::Relu => (0, 0),
        Activation::MaxK(k) => (1, k as u32),
    }
}

fn activation_from_tag(tag: u8, k: u32) -> Result<Activation, SnapshotError> {
    match tag {
        0 => Ok(Activation::Relu),
        1 => Ok(Activation::MaxK(k as usize)),
        t => Err(SnapshotError::Malformed(format!("bad activation tag {t}"))),
    }
}

/// FNV-1a 32-bit hash — the snapshot checksum.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_slice(out: &mut Vec<u8>, vs: &[f32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f32(out, v);
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    for &v in m.data() {
        put_f32(out, v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        // Length and checksum were validated up front, so running out of
        // bytes here means the declared structure overruns the body.
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Malformed(
                "declared sizes overrun the payload".to_owned(),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.u32()? as usize;
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| SnapshotError::Malformed("vector length overflow".to_owned()))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn matrix(&mut self) -> Result<Matrix, SnapshotError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| SnapshotError::Malformed("matrix shape overflow".to_owned()))?;
        let raw =
            self.take(len.checked_mul(4).ok_or_else(|| {
                SnapshotError::Malformed("matrix byte length overflow".to_owned())
            })?)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| SnapshotError::Malformed(format!("matrix reconstruction: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxk_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Csr {
        generate::chung_lu_power_law(40, 5.0, 2.3, 1)
            .to_csr()
            .unwrap()
    }

    fn model(arch: Arch, act: Activation) -> GnnModel {
        let mut cfg = ModelConfig::new(arch, act, 10, 4);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        GnnModel::new(cfg, &graph(), &mut rng)
    }

    #[test]
    fn byte_roundtrip_all_archs() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Activation::Relu, Activation::MaxK(4)] {
                let snap = ModelSnapshot::capture(&model(arch, act));
                let back = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
                assert_eq!(back, snap, "{arch:?} {act:?}");
            }
        }
    }

    #[test]
    fn restore_preserves_eval_logits_bitwise() {
        let g = graph();
        let mut original = model(Arch::Sage, Activation::MaxK(4));
        let snap = ModelSnapshot::capture(&original);
        let mut restored = ModelSnapshot::from_bytes(&snap.to_bytes())
            .unwrap()
            .restore(&g)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let x = Matrix::xavier(40, 10, &mut rng);
        let a = original.forward(&x, false, &mut rng);
        let b = restored.forward(&x, false, &mut rng);
        assert_eq!(a, b, "restored logits must be bit-identical");
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = ModelSnapshot::capture(&model(Arch::Gcn, Activation::Relu)).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_detected() {
        let mut bytes = ModelSnapshot::capture(&model(Arch::Gcn, Activation::Relu)).to_bytes();
        bytes[8] = 99; // version field
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = ModelSnapshot::capture(&model(Arch::Gin, Activation::MaxK(3))).to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10, 0] {
            assert!(
                matches!(
                    ModelSnapshot::from_bytes(&bytes[..cut]),
                    Err(SnapshotError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let bytes = ModelSnapshot::capture(&model(Arch::Sage, Activation::MaxK(3))).to_bytes();
        // Flip one payload byte somewhere in the weight data.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(
            ModelSnapshot::from_bytes(&bad),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ModelSnapshot::capture(&model(Arch::Gcn, Activation::Relu)).to_bytes();
        bytes.push(0);
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn inconsistent_snapshot_rejected_on_restore() {
        let snap = ModelSnapshot::capture(&model(Arch::Gcn, Activation::Relu));
        let mut broken = snap.clone();
        broken.layers.pop();
        assert!(matches!(
            broken.restore(&graph()),
            Err(SnapshotError::Malformed(_))
        ));
        let mut bad_k = snap;
        bad_k.config.activation = Activation::MaxK(0);
        assert!(matches!(
            bad_k.restore(&graph()),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("maxk-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        let snap = ModelSnapshot::capture(&model(Arch::Sage, Activation::MaxK(4)));
        snap.save(&path).unwrap();
        let loaded = ModelSnapshot::load(&path).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            ModelSnapshot::load("/nonexistent/maxk.snap"),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn num_params_matches_model() {
        let m = model(Arch::Sage, Activation::Relu);
        assert_eq!(ModelSnapshot::capture(&m).num_params(), m.num_params());
    }
}
