//! MLP universal-approximation study (Fig. 4 of the paper).
//!
//! A single-hidden-layer MLP with MaxK or ReLU nonlinearity is trained to
//! approximate `y = x²` on `[-1, 1]`. The paper uses this to illustrate
//! Theorem 3.2 (MaxK networks are universal approximators): as the hidden
//! width `r` grows, approximation error falls for both nonlinearities, and
//! MaxK (keeping the top `⌈r/4⌉` units) tracks ReLU closely.

use crate::conv::Activation;
use maxk_core::maxk::{maxk_backward, maxk_forward};
use maxk_tensor::{ops, Adam, Linear, Matrix, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one approximation run.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden units `r`.
    pub hidden: usize,
    /// Nonlinearity (for MaxK the paper selects `k = ⌈r/4⌉`).
    pub activation: Activation,
    /// Training samples on `[-1, 1]`.
    pub samples: usize,
    /// Adam steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's Fig. 4 setting for a given hidden width: MaxK with
    /// `k = ⌈r/4⌉`.
    pub fn paper_maxk(hidden: usize) -> Self {
        MlpConfig {
            hidden,
            activation: Activation::MaxK(hidden.div_ceil(4)),
            samples: 256,
            steps: 3_000,
            lr: 0.01,
            seed: 42,
        }
    }

    /// The ReLU control for the same width.
    pub fn paper_relu(hidden: usize) -> Self {
        MlpConfig {
            activation: Activation::Relu,
            ..Self::paper_maxk(hidden)
        }
    }
}

/// Result of an approximation run.
#[derive(Debug, Clone, Copy)]
pub struct ApproxResult {
    /// Final mean-squared error on the training grid.
    pub train_mse: f64,
    /// MSE on a dense held-out grid.
    pub test_mse: f64,
}

/// Trains the 1-hidden-layer MLP on `y = x²` and reports approximation
/// error.
///
/// # Panics
///
/// Panics if a MaxK `k` exceeds the hidden width.
pub fn approximate_square(cfg: &MlpConfig) -> ApproxResult {
    if let Activation::MaxK(k) = cfg.activation {
        assert!(k > 0 && k <= cfg.hidden, "invalid MaxK k = {k}");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut l1 = Linear::new(1, cfg.hidden, &mut rng);
    let mut l2 = Linear::new(cfg.hidden, 1, &mut rng);
    let mut opt = Adam::new(cfg.lr);

    // Training grid.
    let xs: Vec<f32> = (0..cfg.samples)
        .map(|i| -1.0 + 2.0 * i as f32 / (cfg.samples - 1) as f32)
        .collect();
    let x = Matrix::from_vec(cfg.samples, 1, xs.clone()).expect("grid is rectangular");
    let target: Vec<f32> = xs.iter().map(|v| v * v).collect();

    let mut final_train = f64::INFINITY;
    for _ in 0..cfg.steps {
        l1.zero_grad();
        l2.zero_grad();
        // Forward.
        let z = l1.forward(&x);
        let (h, pattern) = match cfg.activation {
            Activation::Relu => (ops::relu(&z), None),
            Activation::MaxK(k) => {
                let s = maxk_forward(&z, k).expect("k validated above");
                (s.to_dense(), Some(s))
            }
        };
        let y = l2.forward(&h);
        // MSE loss and gradient.
        let mut dy = Matrix::zeros(cfg.samples, 1);
        let mut mse = 0.0f64;
        for (i, &t) in target.iter().enumerate() {
            let err = y.get(i, 0) - t;
            mse += f64::from(err) * f64::from(err);
            dy.set(i, 0, 2.0 * err / cfg.samples as f32);
        }
        final_train = mse / cfg.samples as f64;
        // Backward.
        let dh = l2.backward(&h, &dy);
        let dz = match (&cfg.activation, &pattern) {
            (Activation::Relu, _) => ops::relu_backward(&z, &dh),
            (Activation::MaxK(_), Some(p)) => {
                let masked = maxk_core::maxk::gather_with_pattern(&dh, p);
                maxk_backward(&masked)
            }
            _ => unreachable!("MaxK always caches its pattern"),
        };
        let _ = l1.backward(&x, &dz);
        // Step.
        opt.next_step();
        for (slot, (p, g)) in l1.params_and_grads().into_iter().enumerate() {
            opt.step(slot, p, g);
        }
        for (slot, (p, g)) in l2.params_and_grads().into_iter().enumerate() {
            opt.step(4 + slot, p, g);
        }
    }

    // Held-out evaluation on a shifted grid.
    let m = 512;
    let test_xs: Vec<f32> = (0..m)
        .map(|i| -0.995 + 1.99 * i as f32 / (m - 1) as f32)
        .collect();
    let tx = Matrix::from_vec(m, 1, test_xs.clone()).expect("grid is rectangular");
    let z = l1.forward(&tx);
    let h = match cfg.activation {
        Activation::Relu => ops::relu(&z),
        Activation::MaxK(k) => maxk_forward(&z, k).expect("validated").to_dense(),
    };
    let y = l2.forward(&h);
    let mut mse = 0.0f64;
    for (i, &tx_i) in test_xs.iter().enumerate() {
        let err = f64::from(y.get(i, 0)) - f64::from(tx_i * tx_i);
        mse += err * err;
    }
    ApproxResult {
        train_mse: final_train,
        test_mse: mse / m as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(hidden: usize, act: Activation) -> ApproxResult {
        approximate_square(&MlpConfig {
            hidden,
            activation: act,
            samples: 128,
            steps: 800,
            lr: 0.02,
            seed: 7,
        })
    }

    #[test]
    fn relu_mlp_approximates_square() {
        let r = quick(32, Activation::Relu);
        assert!(r.test_mse < 1e-3, "relu mse {}", r.test_mse);
    }

    #[test]
    fn maxk_mlp_approximates_square() {
        let r = quick(32, Activation::MaxK(8));
        assert!(r.test_mse < 5e-3, "maxk mse {}", r.test_mse);
    }

    #[test]
    fn error_decreases_with_width_maxk() {
        // Theorem 3.2's empirical face: wider MaxK nets approximate
        // better (Fig. 4(b)).
        let narrow = quick(4, Activation::MaxK(1));
        let wide = quick(64, Activation::MaxK(16));
        assert!(
            wide.test_mse < narrow.test_mse,
            "narrow {} vs wide {}",
            narrow.test_mse,
            wide.test_mse
        );
    }

    #[test]
    fn maxk_tracks_relu_at_same_width() {
        // Fig. 4(c): "ReLU and MaxK nonlinearity have a similar
        // approximation performance."
        let relu = quick(64, Activation::Relu);
        let maxk = quick(64, Activation::MaxK(16));
        assert!(
            maxk.test_mse < relu.test_mse * 50.0 + 1e-3,
            "maxk {} vs relu {}",
            maxk.test_mse,
            relu.test_mse
        );
    }

    #[test]
    #[should_panic(expected = "invalid MaxK k")]
    fn oversized_k_rejected() {
        let _ = approximate_square(&MlpConfig {
            hidden: 4,
            activation: Activation::MaxK(8),
            samples: 16,
            steps: 1,
            lr: 0.01,
            seed: 0,
        });
    }

    #[test]
    fn paper_presets() {
        let m = MlpConfig::paper_maxk(10);
        assert_eq!(m.hidden, 10);
        assert!(matches!(m.activation, Activation::MaxK(3)));
        let r = MlpConfig::paper_relu(10);
        assert!(matches!(r.activation, Activation::Relu));
    }
}
