//! Stacked GNN models and the per-phase wall-clock breakdown.

use crate::conv::{Activation, Arch, Conv, GraphContext};
use crate::plan::{ForwardPlan, PlanLayer};
use maxk_graph::Csr;
use maxk_tensor::{Matrix, Optimizer};
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Wall-clock accumulators for the pipeline phases of Fig. 1(c).
///
/// `agg` is the sparse aggregation (SpMM / SpGEMM / SSpMM) — the paper's
/// `p_SpMM` numerator in the Amdahl's-law limit `S = 1 / (1 − p_SpMM)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimers {
    /// Sparse aggregation time (forward + backward kernels).
    pub agg: Duration,
    /// Dense linear-layer time (forward + backward).
    pub linear: Duration,
    /// MaxK selection / scatter time.
    pub maxk: Duration,
    /// Everything else (dropout, elementwise, losses measured by caller).
    pub other: Duration,
}

impl PhaseTimers {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.agg + self.linear + self.maxk + self.other
    }

    /// Fraction of accounted time spent in sparse aggregation
    /// (`p_SpMM`).
    pub fn agg_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.agg.as_secs_f64() / t
        }
    }

    /// Amdahl's-law speedup limit `1 / (1 − p_SpMM)` implied by this
    /// breakdown (§5.3).
    pub fn amdahl_limit(&self) -> f64 {
        let p = self.agg_fraction();
        if p >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - p)
        }
    }

    /// Resets all accumulators.
    pub fn reset(&mut self) {
        *self = PhaseTimers::default();
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        self.agg += other.agg;
        self.linear += other.linear;
        self.maxk += other.maxk;
        self.other += other.other;
    }

    /// Times `f` into the aggregation bucket.
    pub fn time_agg<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.agg += t0.elapsed();
        out
    }

    /// Times `f` into the linear bucket.
    pub fn time_linear<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.linear += t0.elapsed();
        out
    }

    /// Times `f` into the MaxK bucket.
    pub fn time_maxk<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.maxk += t0.elapsed();
        out
    }

    /// Times `f` into the other bucket.
    pub fn time_other<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.other += t0.elapsed();
        out
    }
}

/// Model hyperparameters (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Architecture.
    pub arch: Arch,
    /// Hidden-layer nonlinearity.
    pub activation: Activation,
    /// Number of convolution layers (Table 3: 3 or 4).
    pub num_layers: usize,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden dimension (Table 3: 256, or 384 for Yelp).
    pub hidden_dim: usize,
    /// Output classes.
    pub out_dim: usize,
    /// Dropout rate on layer inputs.
    pub dropout: f32,
    /// Edge-Group width for the kernel partition.
    pub eg_width: usize,
}

impl ModelConfig {
    /// A reasonable default configuration for experiments.
    pub fn new(arch: Arch, activation: Activation, in_dim: usize, out_dim: usize) -> Self {
        ModelConfig {
            arch,
            activation,
            num_layers: 3,
            in_dim,
            hidden_dim: 256,
            out_dim,
            dropout: 0.5,
            eg_width: 32,
        }
    }

    /// Table 3 presets keyed by dataset name (`Flickr`, `Yelp`, `Reddit`,
    /// `ogbn-products`, `ogbn-proteins`); unknown names get the defaults.
    pub fn paper_preset(
        dataset: &str,
        arch: Arch,
        activation: Activation,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let mut cfg = ModelConfig::new(arch, activation, in_dim, out_dim);
        match dataset {
            "Flickr" => {
                cfg.num_layers = 3;
                cfg.hidden_dim = 256;
                cfg.dropout = 0.2;
            }
            "Yelp" => {
                cfg.num_layers = 4;
                cfg.hidden_dim = 384;
                cfg.dropout = 0.1;
            }
            "Reddit" => {
                cfg.num_layers = 4;
                cfg.hidden_dim = 256;
                cfg.dropout = 0.5;
            }
            "ogbn-products" => {
                cfg.num_layers = 3;
                cfg.hidden_dim = 256;
                cfg.dropout = 0.5;
            }
            "ogbn-proteins" => {
                cfg.num_layers = 3;
                cfg.hidden_dim = 256;
                cfg.dropout = 0.5;
            }
            _ => {}
        }
        cfg
    }

    /// Validates that the MaxK `k` fits the hidden dimension.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero or exceeds `hidden_dim`.
    pub fn validate(&self) {
        if let Activation::MaxK(k) = self.activation {
            assert!(k > 0, "MaxK k must be positive");
            assert!(
                k <= self.hidden_dim,
                "MaxK k = {k} exceeds hidden dim {}",
                self.hidden_dim
            );
        }
        assert!(self.num_layers >= 2, "need at least input + output layers");
    }
}

/// A stacked GNN: `num_layers` convolutions, hidden activations on all but
/// the last.
#[derive(Debug, Clone)]
pub struct GnnModel {
    cfg: ModelConfig,
    ctx: GraphContext,
    convs: Vec<Conv>,
    timers: PhaseTimers,
}

impl GnnModel {
    /// Builds the model over `graph` (which is normalized per the
    /// architecture).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`ModelConfig::validate`]).
    pub fn new<R: Rng>(cfg: ModelConfig, graph: &Csr, rng: &mut R) -> Self {
        cfg.validate();
        let ctx = GraphContext::build(graph, cfg.arch, cfg.eg_width);
        let mut convs = Vec::with_capacity(cfg.num_layers);
        for layer in 0..cfg.num_layers {
            let in_dim = if layer == 0 {
                cfg.in_dim
            } else {
                cfg.hidden_dim
            };
            let out_dim = if layer + 1 == cfg.num_layers {
                cfg.out_dim
            } else {
                cfg.hidden_dim
            };
            let activation = if layer + 1 == cfg.num_layers {
                None
            } else {
                Some(cfg.activation)
            };
            convs.push(Conv::new(
                cfg.arch,
                activation,
                in_dim,
                out_dim,
                cfg.dropout,
                rng,
            ));
        }
        GnnModel {
            cfg,
            ctx,
            convs,
            timers: PhaseTimers::default(),
        }
    }

    /// Rebuilds a model from configuration plus pre-built layers — the
    /// deserialization path of [`crate::snapshot`]. The graph context is
    /// rebuilt from `graph` exactly as [`GnnModel::new`] would.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or the layer chain does
    /// not match it (count, dimensions, architecture or activations).
    pub fn from_parts(cfg: ModelConfig, graph: &Csr, convs: Vec<Conv>) -> Self {
        cfg.validate();
        assert_eq!(convs.len(), cfg.num_layers, "layer count mismatch");
        for (layer, conv) in convs.iter().enumerate() {
            assert_eq!(conv.arch(), cfg.arch, "layer {layer} architecture");
            let in_dim = if layer == 0 {
                cfg.in_dim
            } else {
                cfg.hidden_dim
            };
            let out_dim = if layer + 1 == cfg.num_layers {
                cfg.out_dim
            } else {
                cfg.hidden_dim
            };
            assert_eq!(conv.in_dim(), in_dim, "layer {layer} in_dim");
            assert_eq!(conv.out_dim(), out_dim, "layer {layer} out_dim");
            let expected_act = if layer + 1 == cfg.num_layers {
                None
            } else {
                Some(cfg.activation)
            };
            assert_eq!(conv.activation(), expected_act, "layer {layer} activation");
        }
        let ctx = GraphContext::build(graph, cfg.arch, cfg.eg_width);
        GnnModel {
            cfg,
            ctx,
            convs,
            timers: PhaseTimers::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The convolution layers, input to output (weights readable for
    /// snapshots).
    pub fn layers(&self) -> &[Conv] {
        &self.convs
    }

    /// The normalized-graph context (kernel operands).
    pub fn context(&self) -> &GraphContext {
        &self.ctx
    }

    /// Per-layer cost shapes for the [`crate::plan`] full-vs-partial
    /// heuristic (one [`crate::plan::LayerCost`] per convolution, input
    /// to output).
    pub fn layer_costs(&self) -> Vec<crate::plan::LayerCost> {
        self.convs
            .iter()
            .map(|c| {
                crate::plan::LayerCost::new(
                    c.in_dim(),
                    c.out_dim(),
                    c.activation(),
                    c.lin_self().is_some(),
                )
            })
            .collect()
    }

    /// Forward pass over all layers; returns logits.
    pub fn forward<R: Rng>(&mut self, x: &Matrix, train: bool, rng: &mut R) -> Matrix {
        let mut h = x.clone();
        for conv in &mut self.convs {
            h = conv.forward(&self.ctx, &h, train, rng, &mut self.timers);
        }
        h
    }

    /// Eval-mode forward restricted to a seed set, following `plan`.
    ///
    /// Returns one logit row per entry of `seeds`, in request order
    /// (duplicates allowed). With [`crate::ForwardPlan::Full`] this is a
    /// full eval forward plus a row gather; with a partial plan only the
    /// frontier rows are computed — bitwise equal either way (the
    /// serving-path guarantee, see [`crate::plan`]).
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty or out of range, or when a partial
    /// plan's frontier depth/seed set disagrees with the model/request.
    pub fn forward_planned(&mut self, x: &Matrix, seeds: &[u32], plan: &ForwardPlan) -> Matrix {
        assert!(!seeds.is_empty(), "forward_planned needs seeds");
        let n = self.ctx.adj.num_nodes();
        assert!(seeds.iter().all(|&s| (s as usize) < n), "seed out of range");
        let gather = |m: &Matrix, rows: &dyn Fn(u32) -> usize| {
            let mut out = Matrix::zeros(seeds.len(), m.cols());
            for (r, &s) in seeds.iter().enumerate() {
                out.row_mut(r).copy_from_slice(m.row(rows(s)));
            }
            out
        };
        match plan {
            ForwardPlan::Full => {
                // Eval mode never touches the RNG (no dropout).
                let mut rng = rand::rngs::StdRng::seed_from_u64(0);
                let all = self.forward(x, false, &mut rng);
                gather(&all, &|s| s as usize)
            }
            ForwardPlan::Partial(frontier) => {
                assert_eq!(
                    frontier.hops(),
                    self.cfg.num_layers,
                    "frontier depth must match the model"
                );
                let layers: Vec<PlanLayer<'_>> = self
                    .convs
                    .iter()
                    .map(|c| PlanLayer {
                        activation: c.activation(),
                        eps: c.eps(),
                        neigh_weight: c.lin_neigh().weight(),
                        neigh_bias: c.lin_neigh().bias(),
                        self_path: c.lin_self().map(|l| (l.weight(), l.bias())),
                    })
                    .collect();
                let compact = crate::plan::partial_forward(
                    &self.ctx.adj,
                    self.cfg.arch,
                    &layers,
                    frontier,
                    x,
                );
                gather(&compact, &|s| {
                    frontier
                        .seeds()
                        .compact(s)
                        .expect("plan frontier must contain every requested seed")
                })
            }
        }
    }

    /// Backward pass from the loss gradient; accumulates parameter grads.
    pub fn backward(&mut self, dlogits: &Matrix) {
        let mut grad = dlogits.clone();
        for conv in self.convs.iter_mut().rev() {
            grad = conv.backward(&self.ctx, &grad, &mut self.timers);
        }
    }

    /// Zeroes every layer's gradients.
    pub fn zero_grad(&mut self) {
        for conv in &mut self.convs {
            conv.zero_grad();
        }
    }

    /// Applies one optimizer step across all layers.
    pub fn step<O: Optimizer>(&mut self, opt: &mut O) {
        opt.next_step();
        for (i, conv) in self.convs.iter_mut().enumerate() {
            conv.apply_step(opt, i);
        }
    }

    /// The accumulated phase breakdown.
    pub fn timers(&self) -> &PhaseTimers {
        &self.timers
    }

    /// Resets the phase breakdown.
    pub fn reset_timers(&mut self) {
        self.timers.reset();
    }

    /// Total learnable parameters.
    pub fn num_params(&self) -> usize {
        self.convs.iter().map(Conv::num_params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxk_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Csr {
        generate::chung_lu_power_law(60, 6.0, 2.3, 1)
            .to_csr()
            .unwrap()
    }

    fn config(act: Activation) -> ModelConfig {
        let mut cfg = ModelConfig::new(Arch::Gcn, act, 10, 4);
        cfg.hidden_dim = 16;
        cfg.dropout = 0.0;
        cfg
    }

    #[test]
    fn forward_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = GnnModel::new(config(Activation::MaxK(4)), &graph(), &mut rng);
        let x = Matrix::xavier(60, 10, &mut rng);
        let y = model.forward(&x, false, &mut rng);
        assert_eq!(y.shape(), (60, 4));
        assert!(y.is_finite());
    }

    #[test]
    fn layer_dimensions_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = GnnModel::new(config(Activation::Relu), &graph(), &mut rng);
        assert_eq!(model.convs.len(), 3);
        assert_eq!(model.convs[0].in_dim(), 10);
        assert_eq!(model.convs[0].out_dim(), 16);
        assert_eq!(model.convs[1].in_dim(), 16);
        assert_eq!(model.convs[2].out_dim(), 4);
        assert!(model.convs[2].activation().is_none());
    }

    #[test]
    fn backward_runs_and_grads_move_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = GnnModel::new(config(Activation::MaxK(4)), &graph(), &mut rng);
        let x = Matrix::xavier(60, 10, &mut rng);
        let y = model.forward(&x, true, &mut rng);
        model.backward(&Matrix::filled(60, 4, 0.1));
        let mut opt = maxk_tensor::Sgd::new(0.1);
        model.step(&mut opt);
        let y2 = model.forward(&x, false, &mut rng);
        assert!(y.max_abs_diff(&y2) > 0.0, "step must change the function");
    }

    #[test]
    fn timers_accumulate_and_reset() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = GnnModel::new(config(Activation::MaxK(4)), &graph(), &mut rng);
        let x = Matrix::xavier(60, 10, &mut rng);
        let _ = model.forward(&x, false, &mut rng);
        assert!(model.timers().agg > Duration::ZERO);
        assert!(model.timers().linear > Duration::ZERO);
        assert!(model.timers().maxk > Duration::ZERO);
        let frac = model.timers().agg_fraction();
        assert!(frac > 0.0 && frac < 1.0);
        assert!(model.timers().amdahl_limit() >= 1.0);
        model.reset_timers();
        assert_eq!(model.timers().total(), Duration::ZERO);
    }

    #[test]
    fn paper_presets_match_table3() {
        let yelp = ModelConfig::paper_preset("Yelp", Arch::Sage, Activation::MaxK(96), 300, 100);
        assert_eq!(yelp.num_layers, 4);
        assert_eq!(yelp.hidden_dim, 384);
        assert!((yelp.dropout - 0.1).abs() < 1e-6);
        let reddit = ModelConfig::paper_preset("Reddit", Arch::Gcn, Activation::Relu, 602, 41);
        assert_eq!(reddit.num_layers, 4);
        assert_eq!(reddit.hidden_dim, 256);
    }

    #[test]
    #[should_panic(expected = "exceeds hidden dim")]
    fn validate_rejects_oversized_k() {
        let mut cfg = config(Activation::MaxK(64));
        cfg.hidden_dim = 16;
        let mut rng = StdRng::seed_from_u64(4);
        let _ = GnnModel::new(cfg, &graph(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "architecture")]
    fn from_parts_rejects_arch_mismatch() {
        // GCN and GIN layers both lack a self linear, so only the arch
        // check can tell them apart — a mismatched layer must not be
        // silently accepted (its forward would skip the GIN self term).
        let mut rng = StdRng::seed_from_u64(6);
        let g = graph();
        let cfg = {
            let mut c = config(Activation::Relu);
            c.arch = Arch::Gin;
            c
        };
        let convs = (0..cfg.num_layers)
            .map(|layer| {
                let in_dim = if layer == 0 {
                    cfg.in_dim
                } else {
                    cfg.hidden_dim
                };
                let out_dim = if layer + 1 == cfg.num_layers {
                    cfg.out_dim
                } else {
                    cfg.hidden_dim
                };
                let act = if layer + 1 == cfg.num_layers {
                    None
                } else {
                    Some(cfg.activation)
                };
                let lin = maxk_tensor::Linear::new(in_dim, out_dim, &mut rng);
                Conv::from_parts(Arch::Gcn, act, 0.0, 0.0, lin, None)
            })
            .collect();
        let _ = GnnModel::from_parts(cfg, &g, convs);
    }

    #[test]
    fn num_params_positive_and_arch_dependent() {
        let mut rng = StdRng::seed_from_u64(5);
        let gcn = GnnModel::new(config(Activation::Relu), &graph(), &mut rng);
        let mut sage_cfg = config(Activation::Relu);
        sage_cfg.arch = Arch::Sage;
        let sage = GnnModel::new(sage_cfg, &graph(), &mut rng);
        assert!(sage.num_params() > gcn.num_params());
    }
}
