//! Runtime identity newtypes for model snapshots and graph contexts.
//!
//! Serving-side caching and hot reload need an answer to "what computed
//! this logit row?". Two coordinates pin it down:
//!
//! * [`SnapshotGeneration`] — which captured weight set. Minted when a
//!   snapshot comes into existence in this process
//!   ([`crate::ModelSnapshot::capture`] or a byte-format load), so two
//!   loads of the same file are *different* generations: the runtime
//!   cannot prove they are the same weights, and a cache keyed by
//!   generation must never alias rows across that doubt.
//! * [`GraphVersion`] — which normalized graph operand. Minted by
//!   [`crate::GraphContext::build`]; engines sharing one context (the
//!   renormalization-cache path, or every shard of a sharded router)
//!   share its version.
//!
//! Both are process-local identities, **not** persisted in the snapshot
//! byte format and excluded from snapshot equality — they identify a
//! runtime incarnation, not the weights' values. Identifiers are minted
//! from a global counter, so they are unique within a process and
//! totally ordered by mint time (useful for "newest generation wins"
//! hot-reload policies).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mints the next identity from a shared process-wide counter, starting
/// at 1 so 0 can never collide with a minted id.
fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed) + 1
}

/// Process-local identity of one captured weight set.
///
/// See the [module docs](self) for when generations are minted and why
/// they are not persisted.
///
/// # Examples
///
/// ```
/// use maxk_nn::SnapshotGeneration;
///
/// let a = SnapshotGeneration::mint();
/// let b = SnapshotGeneration::mint();
/// assert_ne!(a, b);
/// assert!(b > a, "later mints order after earlier ones");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotGeneration(u64);

impl SnapshotGeneration {
    /// Mints a fresh, process-unique generation.
    pub fn mint() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        SnapshotGeneration(next_id(&NEXT))
    }

    /// The raw identity (for logs and reports).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SnapshotGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gen#{}", self.0)
    }
}

/// Process-local identity of one normalized graph operand
/// ([`crate::GraphContext`]).
///
/// See the [module docs](self) for when versions are minted.
///
/// # Examples
///
/// ```
/// use maxk_nn::GraphVersion;
///
/// let a = GraphVersion::mint();
/// let b = GraphVersion::mint();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphVersion(u64);

impl GraphVersion {
    /// Mints a fresh, process-unique graph version.
    pub fn mint() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        GraphVersion(next_id(&NEXT))
    }

    /// The raw identity (for logs and reports).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GraphVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mints_are_unique_and_ordered() {
        let g1 = SnapshotGeneration::mint();
        let g2 = SnapshotGeneration::mint();
        assert!(g2 > g1);
        assert_ne!(g1.as_u64(), g2.as_u64());
        let v1 = GraphVersion::mint();
        let v2 = GraphVersion::mint();
        assert!(v2 > v1);
    }

    #[test]
    fn zero_is_never_minted() {
        assert_ne!(SnapshotGeneration::mint().as_u64(), 0);
        assert_ne!(GraphVersion::mint().as_u64(), 0);
    }

    #[test]
    fn display_is_labelled() {
        let g = SnapshotGeneration::mint();
        assert!(format!("{g}").starts_with("gen#"));
        let v = GraphVersion::mint();
        assert!(format!("{v}").starts_with("graph#"));
    }

    #[test]
    fn mints_are_unique_across_threads() {
        let ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        (0..100)
                            .map(|_| GraphVersion::mint().as_u64())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("minter thread"))
                .collect()
        });
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate minted ids");
    }
}
