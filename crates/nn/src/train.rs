//! Full-batch training loop with per-phase timing and metric tracking.

use crate::model::{GnnModel, PhaseTimers};
use maxk_graph::datasets::{Labels, TrainingData};
use maxk_tensor::{loss, metrics, Adam, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate (Table 3 per-dataset values).
    pub lr: f32,
    /// RNG seed for dropout and initialisation-independent sampling.
    pub seed: u64,
    /// Record metrics every `eval_every` epochs (and on the last).
    pub eval_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            lr: 0.01,
            seed: 0,
            eval_every: 10,
        }
    }
}

/// Metrics recorded at one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Masked training loss.
    pub loss: f64,
    /// Metric on the validation mask (accuracy / micro-F1 / ROC-AUC,
    /// dataset-dependent).
    pub val_metric: f64,
    /// Metric on the test mask.
    pub test_metric: f64,
}

/// Result of a full training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Evaluation history (ordered by epoch).
    pub history: Vec<EpochStats>,
    /// Test metric at the best-validation epoch.
    pub best_test_metric: f64,
    /// Test metric after the final epoch.
    pub final_test_metric: f64,
    /// Mean wall-clock per epoch, seconds.
    pub epoch_time_s: f64,
    /// Phase breakdown accumulated over all epochs.
    pub phases: PhaseTimers,
    /// Name of the metric reported (`accuracy`, `micro-f1`, `roc-auc`).
    pub metric_name: &'static str,
}

/// Metric appropriate for a dataset's task.
pub fn metric_name(data: &TrainingData) -> &'static str {
    if !data.multilabel {
        "accuracy"
    } else if data.name == "ogbn-proteins" {
        "roc-auc"
    } else {
        "micro-f1"
    }
}

fn evaluate(data: &TrainingData, logits: &Matrix, mask: &[bool]) -> f64 {
    match &data.labels {
        Labels::Single(labels) => metrics::accuracy(logits, labels, mask),
        Labels::Multi(targets) => {
            if data.name == "ogbn-proteins" {
                metrics::roc_auc(logits, targets, mask)
            } else {
                metrics::micro_f1(logits, targets, mask)
            }
        }
    }
}

/// Trains `model` on `data` in full-batch mode with Adam, mirroring the
/// paper's §5.1 protocol (masked loss on the train split, metric tracking
/// on val/test).
///
/// # Panics
///
/// Panics if the model's input/output dimensions disagree with the
/// dataset.
pub fn train_full_batch(
    model: &mut GnnModel,
    data: &TrainingData,
    cfg: &TrainConfig,
) -> TrainResult {
    assert_eq!(
        model.config().in_dim,
        data.in_dim,
        "model input dim must match dataset features"
    );
    assert_eq!(
        model.config().out_dim,
        data.num_classes,
        "model output dim must match dataset classes"
    );
    let n = data.csr.num_nodes();
    let x = Matrix::from_vec(n, data.in_dim, data.features.clone())
        .expect("dataset features are rectangular");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut history = Vec::new();
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0f64;
    let mut final_test = 0.0f64;
    model.reset_timers();
    let wall0 = Instant::now();

    for epoch in 0..cfg.epochs {
        model.zero_grad();
        let logits = model.forward(&x, true, &mut rng);
        let (loss_value, dlogits) = match &data.labels {
            Labels::Single(labels) => {
                loss::softmax_cross_entropy(&logits, labels, &data.train_mask)
            }
            Labels::Multi(targets) => loss::sigmoid_bce(&logits, targets, &data.train_mask),
        };
        model.backward(&dlogits);
        model.step(&mut opt);

        let last = epoch + 1 == cfg.epochs;
        if epoch % cfg.eval_every.max(1) == 0 || last {
            let eval_logits = model.forward(&x, false, &mut rng);
            let val = evaluate(data, &eval_logits, &data.val_mask);
            let test = evaluate(data, &eval_logits, &data.test_mask);
            history.push(EpochStats {
                epoch,
                loss: loss_value,
                val_metric: val,
                test_metric: test,
            });
            if val > best_val {
                best_val = val;
                best_test = test;
            }
            if last {
                final_test = test;
            }
        }
    }

    let elapsed = wall0.elapsed().as_secs_f64();
    TrainResult {
        history,
        best_test_metric: best_test,
        final_test_metric: final_test,
        epoch_time_s: elapsed / cfg.epochs.max(1) as f64,
        phases: *model.timers(),
        metric_name: metric_name(data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Activation, Arch};
    use crate::model::ModelConfig;
    use maxk_graph::datasets::{Scale, TrainingDataset};

    fn quick_config(act: Activation, data: &TrainingData) -> ModelConfig {
        let mut cfg = ModelConfig::new(Arch::Gcn, act, data.in_dim, data.num_classes);
        cfg.hidden_dim = 32;
        cfg.dropout = 0.1;
        cfg
    }

    #[test]
    fn loss_decreases_on_flickr_sim() {
        let data = TrainingDataset::Flickr.generate(Scale::Test, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = GnnModel::new(quick_config(Activation::Relu, &data), &data.csr, &mut rng);
        let cfg = TrainConfig {
            epochs: 30,
            lr: 0.01,
            seed: 1,
            eval_every: 5,
        };
        let result = train_full_batch(&mut model, &data, &cfg);
        let first = result.history.first().unwrap().loss;
        let last = result.history.last().unwrap().loss;
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn maxk_model_learns_single_label_task() {
        let data = TrainingDataset::Flickr.generate(Scale::Test, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = GnnModel::new(
            quick_config(Activation::MaxK(8), &data),
            &data.csr,
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.01,
            seed: 2,
            eval_every: 10,
        };
        let result = train_full_batch(&mut model, &data, &cfg);
        // Planted 7-class task: random = 1/7 ≈ 0.14; learning must beat it
        // comfortably.
        assert!(
            result.best_test_metric > 0.5,
            "test accuracy {}",
            result.best_test_metric
        );
        assert_eq!(result.metric_name, "accuracy");
    }

    #[test]
    fn multilabel_task_reports_f1() {
        let data = TrainingDataset::Yelp.generate(Scale::Test, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg_m = quick_config(Activation::MaxK(8), &data);
        cfg_m.num_layers = 2;
        let mut model = GnnModel::new(cfg_m, &data.csr, &mut rng);
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.02,
            seed: 3,
            eval_every: 10,
        };
        let result = train_full_batch(&mut model, &data, &cfg);
        assert_eq!(result.metric_name, "micro-f1");
        assert!(
            result.best_test_metric > 0.5,
            "f1 {}",
            result.best_test_metric
        );
    }

    #[test]
    fn proteins_reports_auc() {
        let data = TrainingDataset::OgbnProteins
            .generate(Scale::Test, 9)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg_m = quick_config(Activation::Relu, &data);
        cfg_m.num_layers = 2;
        cfg_m.hidden_dim = 64;
        let mut model = GnnModel::new(cfg_m, &data.csr, &mut rng);
        let cfg = TrainConfig {
            epochs: 100,
            lr: 0.01,
            seed: 4,
            eval_every: 20,
        };
        let result = train_full_batch(&mut model, &data, &cfg);
        assert_eq!(result.metric_name, "roc-auc");
        assert!(
            result.best_test_metric > 0.6,
            "auc {}",
            result.best_test_metric
        );
    }

    #[test]
    fn phase_timers_populated() {
        let data = TrainingDataset::Flickr.generate(Scale::Test, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = GnnModel::new(
            quick_config(Activation::MaxK(4), &data),
            &data.csr,
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 3,
            lr: 0.01,
            seed: 5,
            eval_every: 1,
        };
        let result = train_full_batch(&mut model, &data, &cfg);
        assert!(result.phases.agg.as_nanos() > 0);
        assert!(result.phases.linear.as_nanos() > 0);
        assert!(result.epoch_time_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "input dim")]
    fn dim_mismatch_is_rejected() {
        let data = TrainingDataset::Flickr.generate(Scale::Test, 13).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut bad = quick_config(Activation::Relu, &data);
        bad.in_dim += 1;
        let mut model = GnnModel::new(bad, &data.csr, &mut rng);
        let _ = train_full_batch(&mut model, &data, &TrainConfig::default());
    }
}
