//! Graph convolution layers with explicit backward passes.

use maxk_core::maxk::{gather_with_pattern, maxk_backward, maxk_forward};
use maxk_core::spgemm::spgemm_forward;
use maxk_core::spmm::spmm_rowwise;
use maxk_core::sspmm::sspmm_backward;
use maxk_core::Cbsr;
use maxk_graph::{normalize, Aggregator, Csr, WarpPartition};
use maxk_tensor::{ops, Linear, Matrix};
use rand::Rng;

use crate::model::PhaseTimers;

/// Model architecture (the paper evaluates all three, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// GCN: symmetric normalization with self-loops.
    Gcn,
    /// GraphSAGE with mean aggregator and a separate self linear path.
    Sage,
    /// GIN: sum aggregation plus `(1 + ε)`-scaled self term.
    Gin,
}

impl Arch {
    /// Name as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Gcn => "GCN",
            Arch::Sage => "SAGE",
            Arch::Gin => "GIN",
        }
    }

    /// The normalization rule and self-loop convention of this
    /// architecture: the [`Aggregator`] its operand values follow, and
    /// whether a unit diagonal is inserted first (GCN normalizes *after*
    /// adding self-loops). Everything that builds or incrementally
    /// maintains an aggregation operand keys off this one mapping, so the
    /// frozen and dynamic paths cannot drift apart.
    pub fn aggregation(self) -> (Aggregator, bool) {
        match self {
            Arch::Gcn => (Aggregator::GcnSym, true),
            Arch::Sage => (Aggregator::SageMean, false),
            Arch::Gin => (Aggregator::GinSum, false),
        }
    }
}

/// The layer nonlinearity: the baseline ReLU or the paper's MaxK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Element-wise ReLU; aggregation runs dense (SpMM).
    Relu,
    /// MaxK with the given `k`; aggregation runs sparse (SpGEMM/SSpMM).
    MaxK(usize),
}

impl Activation {
    /// Short label, e.g. `relu` or `maxk16`.
    pub fn label(self) -> String {
        match self {
            Activation::Relu => "relu".to_owned(),
            Activation::MaxK(k) => format!("maxk{k}"),
        }
    }
}

/// Pre-normalized adjacency bundle shared by every layer of a model.
#[derive(Debug, Clone)]
pub struct GraphContext {
    /// Normalized adjacency (forward aggregation operand).
    pub adj: Csr,
    /// Its transpose (backward operand; same values for symmetric
    /// normalizations, materialized for SAGE's row-mean weights).
    pub adj_t: Csr,
    /// Edge-Group partition used by SpGEMM and the grouped baselines.
    pub part: WarpPartition,
    /// Process-local identity of this graph operand, minted at build
    /// time; clones (and engines sharing this context) share it. Cache
    /// layers key logit rows by it.
    pub version: crate::version::GraphVersion,
}

impl GraphContext {
    /// Normalizes `graph` per the architecture's aggregator and builds the
    /// Edge-Group partition with width `w`.
    pub fn build(graph: &Csr, arch: Arch, w: usize) -> Self {
        let adj = Self::normalized_adjacency(graph, arch);
        let adj_t = adj.transpose();
        let part = WarpPartition::build(&adj, w);
        GraphContext {
            adj,
            adj_t,
            part,
            version: crate::version::GraphVersion::mint(),
        }
    }

    /// Just the normalized aggregation operand, without the transpose or
    /// the Edge-Group partition — the cheap half of [`GraphContext::build`]
    /// for callers that only slice the operand (the sharded router builds
    /// its per-shard partitions on the sub-adjacencies instead).
    pub fn normalized_adjacency(graph: &Csr, arch: Arch) -> Csr {
        let (aggregator, self_loops) = arch.aggregation();
        if self_loops {
            let with_loops = add_self_loops(graph);
            normalize::normalized(&with_loops, aggregator)
        } else {
            normalize::normalized(graph, aggregator)
        }
    }
}

fn add_self_loops(graph: &Csr) -> Csr {
    let n = graph.num_nodes();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(graph.num_edges() + n);
    row_ptr.push(0usize);
    for i in 0..n {
        let (cols, _) = graph.row(i);
        let mut inserted = false;
        for &c in cols {
            if !inserted && c as usize >= i {
                if c as usize != i {
                    col_idx.push(i as u32);
                }
                inserted = true;
            }
            col_idx.push(c);
        }
        if !inserted {
            col_idx.push(i as u32);
        }
        row_ptr.push(col_idx.len());
    }
    let values = vec![1.0; col_idx.len()];
    Csr::from_parts(n, row_ptr, col_idx, values).expect("self-loop insertion keeps rows sorted")
}

/// One graph convolution layer.
///
/// Holds the learnable linears, the architecture/activation configuration
/// and the forward-pass caches needed by `backward`.
#[derive(Debug, Clone)]
pub struct Conv {
    arch: Arch,
    activation: Option<Activation>,
    dropout: f32,
    eps: f32,
    lin_neigh: Linear,
    lin_self: Option<Linear>,
    // Forward caches.
    cache_input: Option<Matrix>,
    cache_z: Option<Matrix>,
    cache_pattern: Option<Cbsr>,
    cache_dropout: Option<Vec<bool>>,
}

impl Conv {
    /// Creates a layer mapping `in_dim -> out_dim`.
    ///
    /// `activation` is `None` for the output layer (logits are aggregated
    /// densely in both modes).
    pub fn new<R: Rng>(
        arch: Arch,
        activation: Option<Activation>,
        in_dim: usize,
        out_dim: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        let lin_self = match arch {
            Arch::Sage => Some(Linear::new(in_dim, out_dim, rng)),
            _ => None,
        };
        Conv {
            arch,
            activation,
            dropout,
            eps: 0.0,
            lin_neigh: Linear::new(in_dim, out_dim, rng),
            lin_self,
            cache_input: None,
            cache_z: None,
            cache_pattern: None,
            cache_dropout: None,
        }
    }

    /// Rebuilds a layer from captured parameters — the deserialization
    /// path of [`crate::snapshot`]. Forward caches start empty.
    ///
    /// # Panics
    ///
    /// Panics when the self-path linear is present for a non-SAGE
    /// architecture (or missing for SAGE), or when its dimensions disagree
    /// with the neighbor linear.
    pub fn from_parts(
        arch: Arch,
        activation: Option<Activation>,
        dropout: f32,
        eps: f32,
        lin_neigh: Linear,
        lin_self: Option<Linear>,
    ) -> Self {
        assert_eq!(
            arch == Arch::Sage,
            lin_self.is_some(),
            "self linear present iff SAGE"
        );
        if let Some(l) = &lin_self {
            assert_eq!(l.in_dim(), lin_neigh.in_dim(), "self linear in_dim");
            assert_eq!(l.out_dim(), lin_neigh.out_dim(), "self linear out_dim");
        }
        Conv {
            arch,
            activation,
            dropout,
            eps,
            lin_neigh,
            lin_self,
            cache_input: None,
            cache_z: None,
            cache_pattern: None,
            cache_dropout: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.lin_neigh.in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.lin_neigh.out_dim()
    }

    /// The layer's architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The layer's activation (`None` on the output layer).
    pub fn activation(&self) -> Option<Activation> {
        self.activation
    }

    /// The neighbor-path linear (weights readable for snapshots).
    pub fn lin_neigh(&self) -> &Linear {
        &self.lin_neigh
    }

    /// The SAGE self-path linear, when present.
    pub fn lin_self(&self) -> Option<&Linear> {
        self.lin_self.as_ref()
    }

    /// The GIN `(1 + ε)` self-term epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Forward pass. `train` enables dropout; `timers` accumulates
    /// per-phase wall-clock.
    pub fn forward<R: Rng>(
        &mut self,
        ctx: &GraphContext,
        x: &Matrix,
        train: bool,
        rng: &mut R,
        timers: &mut PhaseTimers,
    ) -> Matrix {
        // Dropout on the layer input (Table 3's per-dataset rates).
        let (x_in, mask) = if train && self.dropout > 0.0 {
            let (d, m) = timers.time_other(|| ops::dropout_forward(x, self.dropout, rng));
            (d, Some(m))
        } else {
            (x.clone(), None)
        };
        self.cache_dropout = mask;

        // Linear transform (the Linear1 of Fig. 1(b)).
        let z = timers.time_linear(|| self.lin_neigh.forward(&x_in));

        let mut y = match self.activation {
            Some(Activation::MaxK(k)) => {
                // MaxK nonlinearity -> CBSR -> SpGEMM aggregation.
                let hs = timers
                    .time_maxk(|| maxk_forward(&z, k).expect("k validated at model construction"));
                let y = timers.time_agg(|| spgemm_forward(&ctx.adj, &hs, &ctx.part));
                self.cache_pattern = Some(hs);
                y
            }
            Some(Activation::Relu) => {
                let h = timers.time_other(|| ops::relu(&z));
                timers.time_agg(|| spmm_rowwise(&ctx.adj, &h))
            }
            None => timers.time_agg(|| spmm_rowwise(&ctx.adj, &z)),
        };

        match self.arch {
            Arch::Sage => {
                let self_y = timers.time_linear(|| {
                    self.lin_self
                        .as_ref()
                        .expect("SAGE has a self linear")
                        .forward(&x_in)
                });
                timers.time_other(|| ops::add_assign(&mut y, &self_y));
            }
            Arch::Gin => {
                // (1 + ε) · h(Z) self term; h is the layer nonlinearity
                // (identity on the output layer).
                timers.time_other(|| {
                    let scale = 1.0 + self.eps;
                    match (&self.activation, &self.cache_pattern) {
                        (Some(Activation::MaxK(_)), Some(hs)) => {
                            let mut d = maxk_backward(hs); // scatter hs to dense
                            ops::scale_assign(&mut d, scale);
                            ops::add_assign(&mut y, &d);
                        }
                        (Some(Activation::Relu), _) => {
                            let mut h = ops::relu(&z);
                            ops::scale_assign(&mut h, scale);
                            ops::add_assign(&mut y, &h);
                        }
                        _ => {
                            let mut zz = z.clone();
                            ops::scale_assign(&mut zz, scale);
                            ops::add_assign(&mut y, &zz);
                        }
                    }
                });
            }
            Arch::Gcn => {}
        }

        self.cache_input = Some(x_in);
        self.cache_z = Some(z);
        y
    }

    /// Backward pass: consumes the forward caches, accumulates parameter
    /// gradients, returns the gradient w.r.t. the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(
        &mut self,
        ctx: &GraphContext,
        dy: &Matrix,
        timers: &mut PhaseTimers,
    ) -> Matrix {
        let x_in = self.cache_input.take().expect("backward before forward");
        let z = self.cache_z.take().expect("backward before forward");

        let scale = 1.0 + self.eps;
        let dz = match self.activation {
            Some(Activation::MaxK(_)) => {
                let pattern = self.cache_pattern.take().expect("MaxK pattern cached");
                // dHs = SSpMM(Aᵀ, dY) with the forward sparsity pattern.
                let mut dhs = timers.time_agg(|| sspmm_backward(&ctx.adj_t, dy, &pattern));
                if self.arch == Arch::Gin {
                    // Self-path gradient flows through the same mask.
                    timers.time_other(|| {
                        let extra = gather_with_pattern(dy, &pattern);
                        for (d, &e) in dhs.sp_data_mut().iter_mut().zip(extra.sp_data()) {
                            *d += scale * e;
                        }
                    });
                }
                // Scatter back to the dense pre-activation gradient.
                timers.time_maxk(|| maxk_backward(&dhs))
            }
            Some(Activation::Relu) => {
                let mut dh = timers.time_agg(|| spmm_rowwise(&ctx.adj_t, dy));
                if self.arch == Arch::Gin {
                    timers.time_other(|| {
                        let mut extra = dy.clone();
                        ops::scale_assign(&mut extra, scale);
                        ops::add_assign(&mut dh, &extra);
                    });
                }
                timers.time_other(|| ops::relu_backward(&z, &dh))
            }
            None => {
                let mut dz = timers.time_agg(|| spmm_rowwise(&ctx.adj_t, dy));
                if self.arch == Arch::Gin {
                    timers.time_other(|| {
                        let mut extra = dy.clone();
                        ops::scale_assign(&mut extra, scale);
                        ops::add_assign(&mut dz, &extra);
                    });
                }
                dz
            }
        };

        let mut dx = timers.time_linear(|| self.lin_neigh.backward(&x_in, &dz));
        if let Some(lin_self) = self.lin_self.as_mut() {
            let dx_self = timers.time_linear(|| lin_self.backward(&x_in, dy));
            timers.time_other(|| ops::add_assign(&mut dx, &dx_self));
        }

        if let Some(mask) = self.cache_dropout.take() {
            return timers.time_other(|| ops::dropout_backward(&dx, &mask, self.dropout));
        }
        dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.lin_neigh.zero_grad();
        if let Some(l) = self.lin_self.as_mut() {
            l.zero_grad();
        }
    }

    /// Applies one optimizer step to this layer's parameters.
    ///
    /// `base_id` namespaces the layer's tensors within the optimizer.
    pub fn apply_step<O: maxk_tensor::Optimizer>(&mut self, opt: &mut O, base_id: usize) {
        for (slot, (params, grads)) in self.lin_neigh.params_and_grads().into_iter().enumerate() {
            opt.step(base_id * 8 + slot, params, grads);
        }
        if let Some(l) = self.lin_self.as_mut() {
            for (slot, (params, grads)) in l.params_and_grads().into_iter().enumerate() {
                opt.step(base_id * 8 + 4 + slot, params, grads);
            }
        }
    }

    /// Total learnable parameters in this layer.
    pub fn num_params(&self) -> usize {
        self.lin_neigh.num_params() + self.lin_self.as_ref().map_or(0, Linear::num_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxk_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(n: usize, seed: u64) -> Csr {
        generate::chung_lu_power_law(n, 8.0, 2.3, seed)
            .to_csr()
            .unwrap()
    }

    fn forward_backward(arch: Arch, activation: Option<Activation>) -> (Matrix, Matrix) {
        let g = graph(80, 3);
        let ctx = GraphContext::build(&g, arch, 16);
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv::new(arch, activation, 12, 6, 0.0, &mut rng);
        let x = Matrix::xavier(80, 12, &mut rng);
        let mut timers = PhaseTimers::default();
        let y = conv.forward(&ctx, &x, false, &mut rng, &mut timers);
        let dy = Matrix::filled(80, 6, 1.0);
        let dx = conv.backward(&ctx, &dy, &mut timers);
        (y, dx)
    }

    #[test]
    fn shapes_for_all_arch_activation_combos() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [None, Some(Activation::Relu), Some(Activation::MaxK(3))] {
                let (y, dx) = forward_backward(arch, act);
                assert_eq!(y.shape(), (80, 6), "{arch:?} {act:?}");
                assert_eq!(dx.shape(), (80, 12), "{arch:?} {act:?}");
                assert!(y.is_finite() && dx.is_finite());
            }
        }
    }

    #[test]
    fn gcn_context_has_self_loops() {
        let g = graph(30, 5);
        let ctx = GraphContext::build(&g, Arch::Gcn, 8);
        for i in 0..30 {
            assert!(
                ctx.adj.get(i, i as u32).is_some(),
                "GCN adjacency missing self-loop at {i}"
            );
        }
    }

    #[test]
    fn sage_context_uses_row_mean() {
        let g = graph(30, 6);
        let ctx = GraphContext::build(&g, Arch::Sage, 8);
        for i in 0..30 {
            let (_, vals) = ctx.adj.row(i);
            if !vals.is_empty() {
                let s: f32 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gin_context_unit_weights() {
        let g = graph(30, 7);
        let ctx = GraphContext::build(&g, Arch::Gin, 8);
        assert!(ctx.adj.values().iter().all(|&v| v == 1.0));
    }

    /// Finite-difference check of the full layer gradient for every
    /// architecture/activation combination.
    #[test]
    fn layer_gradient_matches_finite_difference() {
        let g = graph(24, 11);
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Some(Activation::Relu), Some(Activation::MaxK(4))] {
                let ctx = GraphContext::build(&g, arch, 8);
                let mut rng = StdRng::seed_from_u64(13);
                let mut conv = Conv::new(arch, act, 6, 4, 0.0, &mut rng);
                let x = Matrix::xavier(24, 6, &mut rng);
                let mut timers = PhaseTimers::default();
                // Objective: sum(Y). dY = ones.
                let _ = conv.forward(&ctx, &x, false, &mut rng, &mut timers);
                let dy = Matrix::filled(24, 4, 1.0);
                let dx = conv.backward(&ctx, &dy, &mut timers);
                let h = 3e-3f32;
                // Spot-check a handful of coordinates.
                for &(r, c) in &[(0usize, 0usize), (3, 2), (10, 5), (23, 1)] {
                    let mut xp = x.clone();
                    xp.set(r, c, x.get(r, c) + h);
                    let mut xm = x.clone();
                    xm.set(r, c, x.get(r, c) - h);
                    let fp: f32 = conv
                        .forward(&ctx, &xp, false, &mut rng, &mut timers)
                        .data()
                        .iter()
                        .sum();
                    let fm: f32 = conv
                        .forward(&ctx, &xm, false, &mut rng, &mut timers)
                        .data()
                        .iter()
                        .sum();
                    let fd = (fp - fm) / (2.0 * h);
                    let got = dx.get(r, c);
                    // MaxK's selection boundary makes the function only
                    // piecewise-linear; tolerate modest error.
                    assert!(
                        (fd - got).abs() < 0.05 * (1.0 + fd.abs().max(got.abs())),
                        "{arch:?} {act:?} at ({r},{c}): fd {fd} vs analytic {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn dropout_only_active_in_training() {
        let g = graph(40, 17);
        let ctx = GraphContext::build(&g, Arch::Gcn, 8);
        let mut rng = StdRng::seed_from_u64(23);
        let mut conv = Conv::new(Arch::Gcn, Some(Activation::Relu), 8, 4, 0.5, &mut rng);
        let x = Matrix::filled(40, 8, 1.0);
        let mut timers = PhaseTimers::default();
        let eval1 = conv.forward(&ctx, &x, false, &mut rng, &mut timers);
        let eval2 = conv.forward(&ctx, &x, false, &mut rng, &mut timers);
        assert_eq!(eval1, eval2, "eval mode must be deterministic");
        let tr1 = conv.forward(&ctx, &x, true, &mut rng, &mut timers);
        let tr2 = conv.forward(&ctx, &x, true, &mut rng, &mut timers);
        assert_ne!(tr1, tr2, "dropout must randomize training forward");
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let g = graph(30, 19);
        let ctx = GraphContext::build(&g, Arch::Sage, 8);
        let mut rng = StdRng::seed_from_u64(29);
        let mut conv = Conv::new(Arch::Sage, Some(Activation::MaxK(2)), 6, 3, 0.0, &mut rng);
        let x = Matrix::xavier(30, 6, &mut rng);
        let mut timers = PhaseTimers::default();
        let _ = conv.forward(&ctx, &x, false, &mut rng, &mut timers);
        let _ = conv.backward(&ctx, &Matrix::filled(30, 3, 1.0), &mut timers);
        conv.zero_grad();
        // After zero_grad, an optimizer step must be a no-op.
        let before = conv.lin_neigh.weight().clone();
        let mut opt = maxk_tensor::Sgd::new(1.0);
        conv.apply_step(&mut opt, 0);
        assert_eq!(conv.lin_neigh.weight(), &before);
    }

    #[test]
    fn param_counts() {
        let mut rng = StdRng::seed_from_u64(31);
        let gcn = Conv::new(Arch::Gcn, None, 10, 4, 0.0, &mut rng);
        assert_eq!(gcn.num_params(), 10 * 4 + 4);
        let sage = Conv::new(Arch::Sage, None, 10, 4, 0.0, &mut rng);
        assert_eq!(sage.num_params(), 2 * (10 * 4 + 4));
    }
}
