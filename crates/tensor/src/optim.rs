//! First-order optimizers.
//!
//! The paper trains with standard full-batch gradient descent (Table 3
//! gives per-dataset learning rates). [`Adam`] is the default used by the
//! reproduction's trainer; [`Sgd`] exists for ablations and tests.

use std::collections::HashMap;

/// A stateful optimizer updating parameter slices in place.
///
/// Parameter tensors are identified by an opaque `param_id` the caller
/// keeps stable across steps (the trainer enumerates its layers).
pub trait Optimizer {
    /// Applies one update to `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != grads.len()`.
    fn step(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]);

    /// Advances the shared timestep (call once per optimization step,
    /// before updating the first tensor).
    fn next_step(&mut self) {}

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with heavy-ball momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd: param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(param_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(
            v.len(),
            params.len(),
            "sgd: param size changed across steps"
        );
        for ((p, &g), vel) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vel = self.momentum * *vel + g;
            *p -= self.lr * *vel;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    moments: HashMap<usize, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with the standard `(β1, β2, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Fully parameterised constructor.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            moments: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn next_step(&mut self) {
        self.t += 1;
    }

    fn step(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "adam: param/grad length mismatch"
        );
        if self.t == 0 {
            self.t = 1; // tolerate callers that skip next_step()
        }
        let (m, v) = self
            .moments
            .entry(param_id)
            .or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()]));
        assert_eq!(
            m.len(),
            params.len(),
            "adam: param size changed across steps"
        );
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = x² with each optimizer; both must converge.
    fn minimise<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut x = vec![5.0f32];
        for _ in 0..steps {
            opt.next_step();
            let g = vec![2.0 * x[0]];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimise(&mut opt, 100);
        assert!(x.abs() < 1e-3, "sgd left x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        let x = minimise(&mut opt, 200);
        assert!(x.abs() < 1e-2, "momentum sgd left x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = minimise(&mut opt, 200);
        assert!(x.abs() < 1e-2, "adam left x = {x}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam update ≈ lr·sign(g).
        let mut opt = Adam::new(0.01);
        let mut x = vec![1.0f32];
        opt.next_step();
        opt.step(0, &mut x, &[123.0]);
        assert!(
            (x[0] - (1.0 - 0.01)).abs() < 1e-4,
            "x after one step: {}",
            x[0]
        );
    }

    #[test]
    fn optimizers_track_separate_tensors() {
        let mut opt = Adam::new(0.1);
        let mut a = vec![1.0f32];
        let mut b = vec![-1.0f32];
        for _ in 0..50 {
            opt.next_step();
            let (ga, gb) = (vec![2.0 * a[0]], vec![2.0 * b[0]]);
            opt.step(0, &mut a, &ga);
            opt.step(1, &mut b, &gb);
        }
        assert!(a[0].abs() < 0.05 && b[0].abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sgd_checks_lengths() {
        let mut opt = Sgd::new(0.1);
        let mut x = vec![0.0f32; 2];
        opt.step(0, &mut x, &[1.0]);
    }

    #[test]
    fn learning_rate_accessors() {
        assert_eq!(Sgd::new(0.5).learning_rate(), 0.5);
        assert_eq!(Adam::new(0.25).learning_rate(), 0.25);
    }
}
