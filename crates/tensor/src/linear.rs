//! Fully-connected layer with explicit gradients.

use crate::matrix::Matrix;
use crate::ops;
use rand::Rng;

/// A dense layer `y = x · W + b` with stored gradients.
///
/// This is the `Linear1`/`Linear2` block of the paper's SAGEConv diagram
/// (Fig. 1(b)). Gradients accumulate until [`Linear::zero_grad`] and are
/// consumed by an [`Optimizer`](crate::Optimizer).
///
/// # Example
///
/// ```
/// use maxk_tensor::{Linear, Matrix};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = Linear::new(4, 2, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// let y = layer.forward(&x);
/// assert_eq!(y.shape(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix, // in_dim × out_dim
    bias: Vec<f32>, // out_dim
    grad_weight: Matrix,
    grad_bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: Matrix::xavier(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Rebuilds a layer from captured parameters (zeroed gradients) — the
    /// deserialization path of model snapshots.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!(
            bias.len(),
            weight.cols(),
            "bias length must match weight columns"
        );
        let (in_dim, out_dim) = weight.shape();
        Linear {
            weight,
            bias,
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Forward pass: `y = x · W + b`.
    ///
    /// # Panics
    ///
    /// Panics when `x.cols() != in_dim`.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = ops::matmul(x, &self.weight);
        ops::add_bias(&mut y, &self.bias);
        y
    }

    /// Backward pass: accumulates `dW = xᵀ·dy`, `db = Σ dy`, returns
    /// `dx = dy · Wᵀ`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `x`, `dy` and the layer.
    #[must_use]
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(x.rows(), dy.rows(), "linear backward: batch mismatch");
        assert_eq!(
            dy.cols(),
            self.out_dim(),
            "linear backward: out_dim mismatch"
        );
        let dw = ops::matmul_at_b(x, dy);
        ops::add_assign(&mut self.grad_weight, &dw);
        for (g, v) in self.grad_bias.iter_mut().zip(ops::column_sums(dy)) {
            *g += v;
        }
        ops::matmul_a_bt(dy, &self.weight)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Parameter/gradient pairs for the optimizer, weights first.
    pub fn params_and_grads(&mut self) -> [(&mut [f32], &[f32]); 2] {
        let Linear {
            weight,
            bias,
            grad_weight,
            grad_bias,
        } = self;
        [
            (weight.data_mut(), grad_weight.data()),
            (bias.as_mut_slice(), grad_bias.as_slice()),
        ]
    }

    /// Total number of learnable scalars.
    pub fn num_params(&self) -> usize {
        self.weight.data().len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Linear::new(3, 2, &mut rng);
        layer.bias[0] = 1.0;
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        for r in 0..4 {
            assert_eq!(y.get(r, 0), 1.0);
            assert_eq!(y.get(r, 1), 0.0);
        }
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let dy = Matrix::from_vec(1, 2, vec![0.5, -1.0]).unwrap();
        let _ = layer.backward(&x, &dy);
        // dW = xᵀ dy
        assert!((layer.grad_weight.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((layer.grad_weight.get(1, 1) + 2.0).abs() < 1e-6);
        assert_eq!(layer.grad_bias, vec![0.5, -1.0]);
        // Accumulation on second call.
        let _ = layer.backward(&x, &dy);
        assert!((layer.grad_weight.get(0, 0) - 1.0).abs() < 1e-6);
        layer.zero_grad();
        assert_eq!(layer.grad_bias, vec![0.0, 0.0]);
        assert_eq!(layer.grad_weight.get(0, 0), 0.0);
    }

    #[test]
    fn backward_dx_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Matrix::xavier(2, 3, &mut rng);
        // Scalar objective: sum of outputs. Then dy = ones and dx should
        // match (f(x+h) - f(x-h)) / 2h elementwise.
        let dy = Matrix::filled(2, 2, 1.0);
        let dx = layer.backward(&x, &dy);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let fp: f32 = layer.forward(&xp).data().iter().sum();
                let fm: f32 = layer.forward(&xm).data().iter().sum();
                let fd = (fp - fm) / (2.0 * h);
                assert!(
                    (fd - dx.get(r, c)).abs() < 1e-2,
                    "finite diff {fd} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn from_parts_restores_forward_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let original = Linear::new(4, 3, &mut rng);
        let rebuilt = Linear::from_parts(original.weight().clone(), original.bias().to_vec());
        let x = Matrix::xavier(6, 4, &mut rng);
        assert_eq!(original.forward(&x), rebuilt.forward(&x));
        assert_eq!(rebuilt.num_params(), original.num_params());
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_parts_rejects_bias_mismatch() {
        let _ = Linear::from_parts(Matrix::zeros(2, 3), vec![0.0; 2]);
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new(5, 3, &mut rng);
        assert_eq!(layer.num_params(), 5 * 3 + 3);
    }
}
