//! Evaluation metrics: accuracy, micro-F1 and ROC-AUC.
//!
//! Table 5 of the paper reports accuracy for Reddit/products/Flickr,
//! micro-F1 for Yelp and ROC-AUC for ogbn-proteins; all three are
//! implemented here over masked node subsets.

use crate::matrix::Matrix;

/// Fraction of masked rows whose argmax logit equals the label.
///
/// Returns 0.0 for an empty mask.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn accuracy(logits: &Matrix, labels: &[u32], mask: &[bool]) -> f64 {
    let (n, _) = logits.shape();
    assert_eq!(labels.len(), n, "label count mismatch");
    assert_eq!(mask.len(), n, "mask length mismatch");
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        total += 1;
        if argmax(logits.row(i)) == labels[i] as usize {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Micro-averaged F1 over multi-hot targets, thresholding logits at 0
/// (sigmoid 0.5).
///
/// Returns 0.0 for an empty mask or when no positives exist anywhere.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn micro_f1(logits: &Matrix, targets: &[u8], mask: &[bool]) -> f64 {
    let (n, c) = logits.shape();
    assert_eq!(targets.len(), n * c, "target matrix shape mismatch");
    assert_eq!(mask.len(), n, "mask length mismatch");
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        let row = logits.row(i);
        for j in 0..c {
            let pred = row[j] > 0.0;
            let truth = targets[i * c + j] == 1;
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fne += 1,
                (false, false) => {}
            }
        }
    }
    let denom = 2 * tp + fp + fne;
    if denom == 0 {
        0.0
    } else {
        2.0 * tp as f64 / denom as f64
    }
}

/// Mean per-class ROC-AUC (the OGB "proteins" protocol), computed with the
/// rank-statistic formulation; classes that are all-positive or
/// all-negative on the masked subset are skipped.
///
/// Returns 0.0 when every class is degenerate.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn roc_auc(logits: &Matrix, targets: &[u8], mask: &[bool]) -> f64 {
    let (n, c) = logits.shape();
    assert_eq!(targets.len(), n * c, "target matrix shape mismatch");
    assert_eq!(mask.len(), n, "mask length mismatch");
    let rows: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
    let mut sum = 0.0f64;
    let mut classes = 0usize;
    let mut scored: Vec<(f32, bool)> = Vec::with_capacity(rows.len());
    for j in 0..c {
        scored.clear();
        for &i in &rows {
            scored.push((logits.get(i, j), targets[i * c + j] == 1));
        }
        let pos = scored.iter().filter(|(_, t)| *t).count();
        let neg = scored.len() - pos;
        if pos == 0 || neg == 0 {
            continue;
        }
        // AUC = (rank-sum of positives - pos(pos+1)/2) / (pos * neg),
        // with midranks for ties.
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN scores"));
        let mut rank_sum = 0.0f64;
        let mut i = 0;
        while i < scored.len() {
            let mut k = i + 1;
            while k < scored.len() && scored[k].0 == scored[i].0 {
                k += 1;
            }
            let midrank = (i + 1 + k) as f64 / 2.0; // average of ranks i+1..=k
            for item in &scored[i..k] {
                if item.1 {
                    rank_sum += midrank;
                }
            }
            i = k;
        }
        let auc = (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos as f64 * neg as f64);
        sum += auc;
        classes += 1;
    }
    if classes == 0 {
        0.0
    } else {
        sum / classes as f64
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_masked_rows_only() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let labels = [0u32, 1, 1];
        let all = accuracy(&logits, &labels, &[true, true, true]);
        assert!((all - 2.0 / 3.0).abs() < 1e-12);
        let masked = accuracy(&logits, &labels, &[true, true, false]);
        assert_eq!(masked, 1.0);
        assert_eq!(accuracy(&logits, &labels, &[false, false, false]), 0.0);
    }

    #[test]
    fn micro_f1_perfect_and_worst() {
        let logits = Matrix::from_vec(2, 2, vec![5.0, -5.0, -5.0, 5.0]).unwrap();
        let perfect = [1u8, 0, 0, 1];
        assert_eq!(micro_f1(&logits, &perfect, &[true, true]), 1.0);
        let inverted = [0u8, 1, 1, 0];
        assert_eq!(micro_f1(&logits, &inverted, &[true, true]), 0.0);
    }

    #[test]
    fn micro_f1_partial() {
        // Predictions: [+,-], truth: [+,+] -> tp=1, fp=0, fn=1 -> F1 = 2/3.
        let logits = Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap();
        let targets = [1u8, 1];
        assert!((micro_f1(&logits, &targets, &[true]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_separation_is_one() {
        let logits = Matrix::from_vec(4, 1, vec![0.9, 0.8, 0.2, 0.1]).unwrap();
        let targets = [1u8, 1, 0, 0];
        assert!((roc_auc(&logits, &targets, &[true; 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_random_scores_is_half() {
        // Symmetric construction: equal scores -> midrank AUC = 0.5.
        let logits = Matrix::from_vec(4, 1, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let targets = [1u8, 0, 1, 0];
        assert!((roc_auc(&logits, &targets, &[true; 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let logits = Matrix::from_vec(4, 1, vec![0.1, 0.2, 0.8, 0.9]).unwrap();
        let targets = [1u8, 1, 0, 0];
        assert!(roc_auc(&logits, &targets, &[true; 4]).abs() < 1e-12);
    }

    #[test]
    fn auc_skips_degenerate_classes() {
        // Class 0 all-positive (skipped), class 1 separable (AUC 1).
        let logits = Matrix::from_vec(2, 2, vec![0.3, 0.9, 0.7, 0.1]).unwrap();
        let targets = [1u8, 1, 1, 0];
        assert!((roc_auc(&logits, &targets, &[true, true]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_all_degenerate_returns_zero() {
        let logits = Matrix::zeros(2, 1);
        let targets = [1u8, 1];
        assert_eq!(roc_auc(&logits, &targets, &[true, true]), 0.0);
    }
}
