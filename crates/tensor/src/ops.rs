//! Threaded dense matrix operations.
//!
//! These implement the dense parts of a GNN layer (the linear transforms of
//! Fig. 1(b) and their gradients). All entry points are shape-checked with
//! panics (the layer code controls all shapes statically); the `try_`
//! variants return [`TensorError`](crate::TensorError) for callers handling
//! untrusted shapes.

use crate::matrix::Matrix;
use crate::parallel;

/// `C = A · B` for `A: n×k`, `B: k×m`.
///
/// Row-parallel ikj loop: each output row accumulates scaled rows of `B`,
/// keeping all accesses sequential in memory.
///
/// # Panics
///
/// Panics when `A.cols() != B.rows()`.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions differ");
    let (n, k) = a.shape();
    let m = b.cols();
    let mut out = Matrix::zeros(n, m);
    let a_data = a.data();
    let b_data = b.data();
    parallel::par_rows_mut(out.data_mut(), m, 8, |first_row, chunk| {
        for (local, out_row) in chunk.chunks_mut(m).enumerate() {
            let i = first_row + local;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * m..(kk + 1) * m];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    });
    out
}

/// `C = Aᵀ · B` for `A: n×k`, `B: n×m`, producing `k×m`.
///
/// This is the weight-gradient contraction `dW = Xᵀ · dY`. Parallelized by
/// per-thread partial accumulators reduced at the end (the contraction axis
/// is the long `n` axis).
///
/// # Panics
///
/// Panics when `A.rows() != B.rows()`.
#[must_use]
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b: row counts differ");
    let (n, k) = a.shape();
    let m = b.cols();
    let a_data = a.data();
    let b_data = b.data();
    let partials = parallel::par_row_map(n, 64, |lo, hi| {
        let mut acc = vec![0f32; k * m];
        for i in lo..hi {
            let a_row = &a_data[i * k..(i + 1) * k];
            let b_row = &b_data[i * m..(i + 1) * m];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let dst = &mut acc[kk * m..(kk + 1) * m];
                for (d, &bv) in dst.iter_mut().zip(b_row) {
                    *d += av * bv;
                }
            }
        }
        acc
    });
    let mut out = vec![0f32; k * m];
    for p in partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    Matrix::from_vec(k, m, out).expect("shape computed above")
}

/// `C = A · Bᵀ` for `A: n×m`, `B: k×m`, producing `n×k`.
///
/// This is the input-gradient contraction `dX = dY · Wᵀ`. Each output
/// element is a dot product of two rows, so memory access is sequential on
/// both operands.
///
/// # Panics
///
/// Panics when `A.cols() != B.cols()`.
#[must_use]
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt: column counts differ");
    let (n, m) = a.shape();
    let k = b.rows();
    let mut out = Matrix::zeros(n, k);
    let a_data = a.data();
    let b_data = b.data();
    parallel::par_rows_mut(out.data_mut(), k, 8, |first_row, chunk| {
        for (local, out_row) in chunk.chunks_mut(k).enumerate() {
            let i = first_row + local;
            let a_row = &a_data[i * m..(i + 1) * m];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b_data[j * m..(j + 1) * m];
                let mut dot = 0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    dot += av * bv;
                }
                *o = dot;
            }
        }
    });
    out
}

/// Adds bias vector `b` (length `m`) to every row of `x` in place.
///
/// # Panics
///
/// Panics when `b.len() != x.cols()`.
pub fn add_bias(x: &mut Matrix, b: &[f32]) {
    assert_eq!(b.len(), x.cols(), "bias length mismatch");
    let m = x.cols();
    parallel::par_rows_mut(x.data_mut(), m, 64, |_, chunk| {
        for row in chunk.chunks_mut(m) {
            for (v, &bv) in row.iter_mut().zip(b) {
                *v += bv;
            }
        }
    });
}

/// Column-wise sum of `x` (the bias gradient `db = Σ_rows dY`).
#[must_use]
pub fn column_sums(x: &Matrix) -> Vec<f32> {
    let m = x.cols();
    let data = x.data();
    let partials = parallel::par_row_map(x.rows(), 128, |lo, hi| {
        let mut acc = vec![0f32; m];
        for i in lo..hi {
            for (a, &v) in acc.iter_mut().zip(&data[i * m..(i + 1) * m]) {
                *a += v;
            }
        }
        acc
    });
    let mut out = vec![0f32; m];
    for p in partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    out
}

/// Element-wise `y = max(x, 0)` (a fresh matrix).
#[must_use]
pub fn relu(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    y.data_mut().iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
    y
}

/// Backward of ReLU: `dx = dy ⊙ [x > 0]`.
///
/// # Panics
///
/// Panics if shapes differ.
#[must_use]
pub fn relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape(), "relu_backward shape mismatch");
    let mut dx = dy.clone();
    for (d, &xv) in dx.data_mut().iter_mut().zip(x.data()) {
        if xv <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

/// In-place `a += b`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape mismatch");
    for (av, &bv) in a.data_mut().iter_mut().zip(b.data()) {
        *av += bv;
    }
}

/// In-place `a *= s`.
pub fn scale_assign(a: &mut Matrix, s: f32) {
    a.data_mut().iter_mut().for_each(|v| *v *= s);
}

/// Inverted-dropout forward: zeroes each element with probability `p` and
/// scales survivors by `1/(1-p)`. Returns the kept-mask for backward.
///
/// # Panics
///
/// Panics unless `0.0 <= p < 1.0`.
pub fn dropout_forward<R: rand::Rng>(x: &Matrix, p: f32, rng: &mut R) -> (Matrix, Vec<bool>) {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    if p == 0.0 {
        return (x.clone(), vec![true; x.data().len()]);
    }
    let keep_scale = 1.0 / (1.0 - p);
    let mut y = x.clone();
    let mut mask = vec![true; x.data().len()];
    for (v, m) in y.data_mut().iter_mut().zip(mask.iter_mut()) {
        if rng.gen::<f32>() < p {
            *v = 0.0;
            *m = false;
        } else {
            *v *= keep_scale;
        }
    }
    (y, mask)
}

/// Inverted-dropout backward: `dx = dy ⊙ mask / (1-p)`.
///
/// # Panics
///
/// Panics if the mask length disagrees with `dy` or `p` is out of range.
#[must_use]
pub fn dropout_backward(dy: &Matrix, mask: &[bool], p: f32) -> Matrix {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    assert_eq!(dy.data().len(), mask.len(), "dropout mask length mismatch");
    let keep_scale = 1.0 / (1.0 - p);
    let mut dx = dy.clone();
    for (d, &keep) in dx.data_mut().iter_mut().zip(mask) {
        if keep {
            *d *= keep_scale;
        } else {
            *d = 0.0;
        }
    }
    dx
}

/// Reference (naive, single-threaded) matmul for testing.
#[must_use]
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0f32;
            for kk in 0..a.cols() {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier(rows, cols, &mut rng)
    }

    #[test]
    fn matmul_matches_reference() {
        let a = random(17, 9, 1);
        let b = random(9, 13, 2);
        let fast = matmul(&a, &b);
        let slow = matmul_reference(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_at_b_matches_transpose_matmul() {
        let a = random(23, 7, 3);
        let b = random(23, 11, 4);
        let fast = matmul_at_b(&a, &b);
        let slow = matmul_reference(&a.transposed(), &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_a_bt_matches_transpose_matmul() {
        let a = random(19, 8, 5);
        let b = random(12, 8, 6);
        let fast = matmul_a_bt(&a, &b);
        let slow = matmul_reference(&a, &b.transposed());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_shapes() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn bias_and_column_sums_roundtrip() {
        let mut x = Matrix::zeros(4, 3);
        add_bias(&mut x, &[1.0, 2.0, 3.0]);
        assert_eq!(x.row(3), &[1.0, 2.0, 3.0]);
        let sums = column_sums(&x);
        assert_eq!(sums, vec![4.0, 8.0, 12.0]);
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu(&x);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Matrix::filled(1, 4, 1.0);
        let dx = relu_backward(&x, &dy);
        assert_eq!(dx.row(0), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        add_assign(&mut a, &b);
        scale_assign(&mut a, 0.5);
        assert!(a.data().iter().all(|&v| (v - 1.5).abs() < 1e-7));
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let x = random(5, 5, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let (y, mask) = dropout_forward(&x, 0.0, &mut rng);
        assert_eq!(y, x);
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn dropout_preserves_expectation() {
        let x = Matrix::filled(100, 100, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let (y, mask) = dropout_forward(&x, 0.5, &mut rng);
        let mean: f32 = y.data().iter().sum::<f32>() / y.data().len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        let kept = mask.iter().filter(|&&m| m).count() as f32 / mask.len() as f32;
        assert!((kept - 0.5).abs() < 0.05);
    }

    #[test]
    fn dropout_backward_masks_gradient() {
        let x = Matrix::filled(10, 10, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let (y, mask) = dropout_forward(&x, 0.3, &mut rng);
        let dy = Matrix::filled(10, 10, 1.0);
        let dx = dropout_backward(&dy, &mask, 0.3);
        // Gradient sparsity pattern must match the forward output.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    fn matmul_identity() {
        let a = random(6, 6, 20);
        let mut eye = Matrix::zeros(6, 6);
        for i in 0..6 {
            eye.set(i, i, 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn big_matmul_parallel_path() {
        // Large enough that the parallel path definitely engages.
        let a = random(700, 40, 30);
        let b = random(40, 50, 31);
        let fast = matmul(&a, &b);
        let slow = matmul_reference(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }
}
