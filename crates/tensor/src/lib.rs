//! Dense tensor substrate for the MaxK-GNN reproduction.
//!
//! The paper's training stack is PyTorch + custom CUDA kernels; this crate
//! is the PyTorch-shaped part: a row-major `f32` [`Matrix`], threaded dense
//! [`ops`] (the `Linear1`/`Linear2` of Fig. 1(b)), [`Linear`] layers with
//! gradients, [`optim`]izers, [`loss`] functions, and evaluation
//! [`metrics`] (accuracy, micro-F1, ROC-AUC — Table 5's three metrics).
//!
//! # Example
//!
//! ```
//! use maxk_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
//! let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c.row(0), &[4.0, 5.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linear;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod ops;
pub mod optim;
pub mod parallel;

pub use linear::Linear;
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};

use std::error::Error;
use std::fmt;

/// Errors produced by dense tensor construction and shape checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Data length does not match the requested shape.
    LengthMismatch {
        /// Rows requested.
        rows: usize,
        /// Columns requested.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: (usize, usize),
        /// Right-hand shape.
        rhs: (usize, usize),
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { rows, cols, len } => {
                write!(
                    f,
                    "buffer of length {len} cannot form a {rows}x{cols} matrix"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(
                    f,
                    "shape mismatch in {op}: {}x{} vs {}x{}",
                    lhs.0, lhs.1, rhs.0, rhs.1
                )
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience alias for results in this crate.
pub type Result<T, E = TensorError> = std::result::Result<T, E>;
