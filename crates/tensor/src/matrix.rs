//! Row-major `f32` matrix.

use crate::{Result, TensorError};
use rand::Rng;

/// A dense row-major `f32` matrix.
///
/// This is the feature-map container used throughout MaxK-GNN: node
/// embeddings are `N × dim` matrices whose rows are fetched/accumulated by
/// the sparse kernels.
///
/// # Example
///
/// ```
/// use maxk_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m.set(0, 1, 3.0);
/// assert_eq!(m.get(0, 1), 3.0);
/// assert_eq!(m.row(1), &[0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len() != rows *
    /// cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Xavier/Glorot-uniform initialisation: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The backing row-major slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Materialized transpose.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sets every element to zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Returns `true` when all elements are finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.data().len(), 6);
        let f = Matrix::filled(1, 2, 7.0);
        assert_eq!(f.row(0), &[7.0, 7.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![0.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                rows: 2,
                cols: 2,
                len: 3
            }
        );
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = Matrix::zeros(3, 2);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let m = Matrix::zeros(1, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Matrix::xavier(64, 64, &mut rng);
        let a = (6.0f64 / 128.0).sqrt() as f32;
        assert!(m.data().iter().all(|&v| v.abs() <= a));
        assert!(m.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn max_abs_diff_and_finite() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = Matrix::filled(2, 2, 1.0);
        b.set(1, 1, 1.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-7);
        assert!(a.is_finite());
        let mut c = a.clone();
        c.set(0, 0, f32::NAN);
        assert!(!c.is_finite());
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::filled(2, 2, 3.0);
        m.fill_zero();
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn frobenius_norm_matches_hand_calc() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
