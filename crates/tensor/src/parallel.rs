//! Scoped-thread data parallelism helpers.
//!
//! All heavy kernels in this reproduction parallelize over contiguous row
//! ranges. [`par_row_chunks`] is the single primitive they share: it splits
//! `rows` into at most `num_threads()` contiguous chunks and runs the
//! closure on each chunk from a `std::thread::scope` scoped thread.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by this process (cached).
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Runs `f(start, end)` over disjoint row ranges covering `0..rows` in
/// parallel.
///
/// Chunks are contiguous and at least `min_chunk` rows (except possibly the
/// last); when the work is too small for more than one chunk, `f` runs on
/// the calling thread with no spawn overhead.
pub fn par_row_chunks<F>(rows: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if rows == 0 {
        return;
    }
    let threads = num_threads();
    let chunk = rows.div_ceil(threads).max(min_chunk.max(1));
    if chunk >= rows {
        f(0, rows);
        return;
    }
    std::thread::scope(|s| {
        let mut start = 0;
        while start < rows {
            let end = (start + chunk).min(rows);
            let f = &f;
            s.spawn(move || f(start, end));
            start = end;
        }
    });
}

/// Like [`par_row_chunks`] but each chunk produces a value; results are
/// returned in chunk order (useful for partial-sum reductions).
pub fn par_row_map<T, F>(rows: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    if rows == 0 {
        return Vec::new();
    }
    let threads = num_threads();
    let chunk = rows.div_ceil(threads).max(min_chunk.max(1));
    if chunk >= rows {
        return vec![f(0, rows)];
    }
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        ranges.push((start, end));
        start = end;
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(a, b)| {
                let f = &f;
                s.spawn(move || f(a, b))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Splits a mutable slice into row-chunks and processes them in parallel.
///
/// `row_width` is the stride of one logical row in the slice. The closure
/// receives `(first_row, rows_chunk)` where `rows_chunk` is the mutable
/// sub-slice for its rows.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_width`.
pub fn par_rows_mut<F>(data: &mut [f32], row_width: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "row width must be positive");
    assert_eq!(
        data.len() % row_width,
        0,
        "slice not a whole number of rows"
    );
    let rows = data.len() / row_width;
    if rows == 0 {
        return;
    }
    let threads = num_threads();
    let chunk = rows.div_ceil(threads).max(min_chunk.max(1));
    if chunk >= rows {
        f(0, data);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = data;
        let mut start = 0;
        while start < rows {
            let end = (start + chunk).min(rows);
            let (head, tail) = rest.split_at_mut((end - start) * row_width);
            rest = tail;
            let f = &f;
            s.spawn(move || f(start, head));
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_all_rows_once() {
        let counter = AtomicUsize::new(0);
        par_row_chunks(1000, 1, |a, b| {
            counter.fetch_add(b - a, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn zero_rows_is_noop() {
        par_row_chunks(0, 1, |_, _| panic!("should not run"));
    }

    #[test]
    fn small_work_runs_inline() {
        // min_chunk larger than rows forces the inline path.
        let counter = AtomicUsize::new(0);
        par_row_chunks(5, 100, |a, b| {
            assert_eq!((a, b), (0, 5));
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn par_row_map_collects_in_order() {
        let sums = par_row_map(100, 10, |a, b| (a, b));
        let mut expect = 0;
        for (a, b) in sums {
            assert_eq!(a, expect);
            expect = b;
        }
        assert_eq!(expect, 100);
    }

    #[test]
    fn par_rows_mut_writes_disjoint() {
        let mut data = vec![0f32; 64 * 4];
        par_rows_mut(&mut data, 4, 1, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(4).enumerate() {
                row.iter_mut().for_each(|v| *v = (first_row + i) as f32);
            }
        });
        for r in 0..64 {
            assert!(data[r * 4..(r + 1) * 4].iter().all(|&v| v == r as f32));
        }
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn par_rows_mut_checks_stride() {
        let mut data = vec![0f32; 5];
        par_rows_mut(&mut data, 2, 1, |_, _| {});
    }

    #[test]
    fn num_threads_positive() {
        assert!(num_threads() >= 1);
    }
}
