//! Loss functions with analytic gradients.
//!
//! Single-label datasets (Flickr, Reddit, ogbn-products) use masked softmax
//! cross-entropy; multi-label datasets (Yelp, ogbn-proteins) use masked
//! sigmoid binary cross-entropy, matching the original tasks' losses.

use crate::matrix::Matrix;

/// Masked softmax cross-entropy.
///
/// Only rows with `mask[i] == true` contribute; the loss is averaged over
/// masked rows and the returned gradient is zero elsewhere.
///
/// Returns `(mean_loss, dlogits)`.
///
/// # Panics
///
/// Panics when shapes disagree or a masked label is out of range; returns
/// `(0.0, zeros)` when the mask is empty.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32], mask: &[bool]) -> (f64, Matrix) {
    let (n, c) = logits.shape();
    assert_eq!(labels.len(), n, "label count mismatch");
    assert_eq!(mask.len(), n, "mask length mismatch");
    let mut grad = Matrix::zeros(n, c);
    let m = mask.iter().filter(|&&b| b).count();
    if m == 0 {
        return (0.0, grad);
    }
    let inv_m = 1.0 / m as f32;
    let mut total = 0.0f64;
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        let row = logits.row(i);
        let label = labels[i] as usize;
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        total += f64::from(log_denom - (row[label] - max));
        let grow = grad.row_mut(i);
        for (j, g) in grow.iter_mut().enumerate() {
            let p = (row[j] - max).exp() / denom;
            *g = (p - f32::from(j == label)) * inv_m;
        }
    }
    (total / m as f64, grad)
}

/// Masked sigmoid binary cross-entropy over multi-hot targets.
///
/// `targets` is a row-major `n × c` multi-hot matrix of `{0, 1}` bytes.
/// Loss is averaged over `masked rows × classes`; gradient is zero on
/// unmasked rows.
///
/// Returns `(mean_loss, dlogits)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn sigmoid_bce(logits: &Matrix, targets: &[u8], mask: &[bool]) -> (f64, Matrix) {
    let (n, c) = logits.shape();
    assert_eq!(targets.len(), n * c, "target matrix shape mismatch");
    assert_eq!(mask.len(), n, "mask length mismatch");
    let mut grad = Matrix::zeros(n, c);
    let m = mask.iter().filter(|&&b| b).count();
    if m == 0 {
        return (0.0, grad);
    }
    let scale = 1.0 / (m * c) as f32;
    let mut total = 0.0f64;
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        let row = logits.row(i);
        let grow = grad.row_mut(i);
        for j in 0..c {
            let x = row[j];
            let t = f32::from(targets[i * c + j]);
            // Numerically-stable log(1 + e^-|x|) formulation.
            let loss = x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
            total += f64::from(loss);
            let p = 1.0 / (1.0 + (-x).exp());
            grow[j] = (p - t) * scale;
        }
    }
    (total / (m * c) as f64, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_perfect_prediction_has_small_loss() {
        // Huge logit on the true class.
        let logits = Matrix::from_vec(2, 3, vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], &[true, true]);
        assert!(loss < 1e-6, "loss {loss}");
        assert!(grad.data().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn ce_uniform_logits_loss_is_log_c() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[2], &[true]);
        assert!((loss - (4f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.3, -0.4, 0.1]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1], &[true]);
        let h = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, j, logits.get(0, j) + h);
            let mut lm = logits.clone();
            lm.set(0, j, logits.get(0, j) - h);
            let (fp, _) = softmax_cross_entropy(&lp, &[1], &[true]);
            let (fm, _) = softmax_cross_entropy(&lm, &[1], &[true]);
            let fd = ((fp - fm) / (2.0 * h as f64)) as f32;
            assert!(
                (fd - grad.get(0, j)).abs() < 1e-3,
                "class {j}: {fd} vs {}",
                grad.get(0, j)
            );
        }
    }

    #[test]
    fn ce_masked_rows_do_not_contribute() {
        let logits = Matrix::from_vec(2, 2, vec![5.0, -5.0, -100.0, 100.0]).unwrap();
        // Row 1 would be a terrible prediction for label 0 but is unmasked.
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 0], &[true, false]);
        assert!(loss < 1e-3);
        assert!(grad.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn ce_empty_mask_returns_zero() {
        let logits = Matrix::zeros(2, 2);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], &[false, false]);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]).unwrap();
        let targets = [1u8, 0, 1];
        let (_, grad) = sigmoid_bce(&logits, &targets, &[true]);
        let h = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, j, logits.get(0, j) + h);
            let mut lm = logits.clone();
            lm.set(0, j, logits.get(0, j) - h);
            let (fp, _) = sigmoid_bce(&lp, &targets, &[true]);
            let (fm, _) = sigmoid_bce(&lm, &targets, &[true]);
            let fd = ((fp - fm) / (2.0 * h as f64)) as f32;
            assert!((fd - grad.get(0, j)).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_confident_correct_is_small() {
        let logits = Matrix::from_vec(1, 2, vec![20.0, -20.0]).unwrap();
        let (loss, _) = sigmoid_bce(&logits, &[1, 0], &[true]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn bce_mask_zeroes_gradient() {
        let logits = Matrix::filled(2, 2, 3.0);
        let targets = [0u8, 0, 0, 0];
        let (_, grad) = sigmoid_bce(&logits, &targets, &[false, true]);
        assert!(grad.row(0).iter().all(|&g| g == 0.0));
        assert!(grad.row(1).iter().any(|&g| g != 0.0));
    }

    #[test]
    #[should_panic(expected = "label")]
    fn ce_rejects_out_of_range_label() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[5], &[true]);
    }
}
