//! Streaming graph mutations on a live server.
//!
//! Every engine built so far serves a frozen graph; [`DynamicEngine`]
//! accepts a **mutation stream** — edge inserts/deletes and feature row
//! writes — alongside queries, without ever stopping the serving path:
//!
//! 1. **Ingress** — [`DynamicEngine::apply`] takes a batch of
//!    [`Mutation`]s (or [`MutationIngress`] feeds batches from a
//!    background thread);
//! 2. **Incremental recompute** — the batch is applied through
//!    [`maxk_graph::dynamic::DynamicGraph`]: the CSR is spliced and only
//!    the dirty normalization rows recomputed, never a from-scratch
//!    rebuild. The resulting operand (and hence every post-mutation
//!    answer) is **bitwise identical** to an engine built fresh on the
//!    mutated graph;
//! 3. **Epoch swap** — a new [`InferenceEngine`] over the updated operand
//!    and features is published atomically behind an `RwLock`; queries in
//!    flight finish against the old epoch, new batches pick up the new
//!    one. Applies are serialized, so epochs are strictly monotone;
//! 4. **Dirty-cone invalidation** — under
//!    [`InvalidationStrategy::DirtyCone`], the mutation's reverse L-hop
//!    dependency cone (via [`maxk_graph::Frontier`]) is computed and
//!    exactly those [`LogitCache`] rows are dropped; every other hot row
//!    keeps hitting across the mutation. The blunt alternative,
//!    [`InvalidationStrategy::BumpVersion`], mints a fresh
//!    [`GraphVersion`] per batch — correct, but every cached row goes
//!    cold (`serve_bench --dynamic` quantifies the gap).
//!
//! # Staleness bound
//!
//! Every [`crate::QueryAnswer`] carries the epoch its logits were
//! computed against ([`crate::QueryAnswer::epoch`]). Because applies are
//! serialized and the swap is atomic, a query submitted after
//! [`MutationReport::epoch`] was returned observes `answer.epoch >=
//! report.epoch` **or** an answer computed concurrently with the swap —
//! the lag never exceeds the batches in flight at swap time (bounded by
//! the queue depth). At quiescence (stream drained, in-flight batches
//! finished) every answer is bitwise identical to a from-scratch engine
//! on the mutated graph, which `tests/dynamic.rs` proves differentially.
//!
//! # Cache soundness under DirtyCone
//!
//! The cone is invalidated **twice**, straddling the swap: once before
//! (dropping resident rows and poisoning in-flight leaders computing
//! against the old epoch) and once after (catching rows filled by
//! batches that raced the swap). A poisoned leader still answers its
//! followers — their answers carry the old epoch — but its fill never
//! becomes resident, so no stale cone row survives past the second pass.
//! The recovery paths that compute rows outside [`LogitCache::claim`]
//! (the server's aborted-leader fallback, the router's probe/scatter
//! fill) register with [`LogitCache::lead_uncounted`] *before*
//! computing, so an invalidation racing them poisons those slots too —
//! the former `fill_rows` bypass is closed ([`LogitCache::fill_rows`]
//! itself is now a warm-up hook that skips any in-flight seed).
//!
//! Sharded engines do not accept mutations yet: a mutation's cone can
//! cross shard halos, which needs ghost-row reconciliation — future
//! work, noted in ARCHITECTURE.md.

use crate::cache::LogitCache;
use crate::engine::{BatchEngine, BatchOutcome, InferenceEngine};
use crate::exec::{self, Executor, StdThreadExecutor, Worker};
use crate::telemetry::Telemetry;
use crate::ServeError;
use maxk_graph::dynamic::{DynamicGraph, EdgeMutation};
use maxk_graph::{Csr, Frontier, GraphError, WarpPartition};
use maxk_nn::snapshot::ModelSnapshot;
use maxk_nn::{GraphContext, GraphVersion, SnapshotGeneration};
use maxk_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One streaming mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Insert the undirected edge `{u, v}` (no-op when present).
    InsertEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Delete the undirected edge `{u, v}` (no-op when absent).
    DeleteEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Overwrite one node's feature row.
    WriteFeature {
        /// The node whose features change.
        node: u32,
        /// The new feature row; must match the model's input dimension.
        values: Vec<f32>,
    },
}

/// How an applied mutation batch reaches the logit cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationStrategy {
    /// Keep the [`GraphVersion`] and drop exactly the reverse L-hop
    /// dirty cone's rows — hot rows outside the cone keep hitting.
    #[default]
    DirtyCone,
    /// Mint a fresh [`GraphVersion`] per batch; every cached row goes
    /// cold and ages out by eviction. The baseline DirtyCone is measured
    /// against.
    BumpVersion,
}

/// What one [`DynamicEngine::apply`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationReport {
    /// The serving epoch after the batch (unchanged when the batch had
    /// no effect).
    pub epoch: u64,
    /// Edge mutations that inserted an absent edge.
    pub inserted: usize,
    /// Edge mutations that deleted a present edge.
    pub deleted: usize,
    /// Edge mutations that found the edge already in the requested state.
    pub noops: usize,
    /// Feature rows overwritten.
    pub feature_writes: usize,
    /// Operand rows whose structure or normalization values changed.
    pub dirty_rows: usize,
    /// Nodes in the reverse L-hop dirty cone (0 when the batch had no
    /// effect).
    pub cone_nodes: usize,
    /// Resident cache rows dropped by dirty-cone invalidation (0 under
    /// [`InvalidationStrategy::BumpVersion`] or with no cache attached).
    pub rows_invalidated: u64,
}

/// Point-in-time counters of a [`DynamicEngine`]'s mutation side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynamicStats {
    /// Current serving epoch.
    pub epoch: u64,
    /// Effective (non-no-op) batches applied.
    pub batches_applied: u64,
    /// Edges inserted across all batches.
    pub edges_inserted: u64,
    /// Edges deleted across all batches.
    pub edges_deleted: u64,
    /// Edge mutations that were no-ops.
    pub edge_noops: u64,
    /// Feature rows overwritten.
    pub feature_writes: u64,
    /// Cache rows dropped by dirty-cone invalidation.
    pub rows_invalidated: u64,
    /// Total dirty-cone sizes (sum over batches).
    pub cone_nodes: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    batches_applied: AtomicU64,
    edges_inserted: AtomicU64,
    edges_deleted: AtomicU64,
    edge_noops: AtomicU64,
    feature_writes: AtomicU64,
    rows_invalidated: AtomicU64,
    cone_nodes: AtomicU64,
}

/// The published serving state of one epoch.
#[derive(Debug)]
struct EpochState {
    epoch: u64,
    engine: InferenceEngine,
}

/// The mutable interior: the incrementally maintained graph, the live
/// feature matrix and the snapshot new epochs are built from. One mutex
/// serializes applies, making epochs strictly monotone.
#[derive(Debug)]
struct Core {
    graph: DynamicGraph,
    features: Matrix,
    snapshot: ModelSnapshot,
    epoch: u64,
}

/// A [`BatchEngine`] over a mutable graph: queries are answered by the
/// current epoch's [`InferenceEngine`], and [`DynamicEngine::apply`]
/// swaps in new epochs as mutation batches land. See the
/// [module docs](self) for the protocol.
#[derive(Debug)]
pub struct DynamicEngine {
    state: RwLock<Arc<EpochState>>,
    core: Mutex<Core>,
    cache: Mutex<Option<Arc<LogitCache>>>,
    recorder: Mutex<Option<Arc<crate::FlightRecorder>>>,
    strategy: InvalidationStrategy,
    stats: StatsInner,
    num_nodes: usize,
    out_dim: usize,
    in_dim: usize,
    hops: usize,
    eg_width: usize,
    generation: SnapshotGeneration,
}

impl DynamicEngine {
    /// Builds a mutable engine over `base` (the structural adjacency,
    /// assumed symmetric) with the given snapshot and features.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadModel`] on shape or consistency mismatches —
    /// the same gates as [`InferenceEngine::from_snapshot`].
    pub fn new(
        snapshot: &ModelSnapshot,
        base: &Csr,
        features: Matrix,
        strategy: InvalidationStrategy,
    ) -> Result<Self, ServeError> {
        let cfg = &snapshot.config;
        let (aggregator, self_loops) = cfg.arch.aggregation();
        let graph = DynamicGraph::from_csr(base, aggregator, self_loops)
            .map_err(|e| ServeError::BadModel(e.to_string()))?;
        let engine = Self::build_engine(
            snapshot,
            &graph,
            features.clone(),
            cfg.eg_width,
            GraphVersion::mint(),
        )?;
        Ok(DynamicEngine {
            state: RwLock::new(Arc::new(EpochState { epoch: 0, engine })),
            core: Mutex::new(Core {
                graph,
                features,
                snapshot: snapshot.clone(),
                epoch: 0,
            }),
            cache: Mutex::new(None),
            recorder: Mutex::new(None),
            strategy,
            stats: StatsInner::default(),
            num_nodes: base.num_nodes(),
            out_dim: cfg.out_dim,
            in_dim: cfg.in_dim,
            hops: cfg.num_layers,
            eg_width: cfg.eg_width,
            generation: snapshot.generation,
        })
    }

    /// Assembles an [`InferenceEngine`] from the dynamic graph's cached
    /// operand — transpose and Edge-Group partition are rebuilt (they
    /// are cheap relative to normalization), the operand itself is the
    /// incrementally maintained one.
    fn build_engine(
        snapshot: &ModelSnapshot,
        graph: &DynamicGraph,
        features: Matrix,
        eg_width: usize,
        version: GraphVersion,
    ) -> Result<InferenceEngine, ServeError> {
        let adj = graph.operand().clone();
        let adj_t = adj.transpose();
        let part = WarpPartition::build(&adj, eg_width);
        let ctx = GraphContext {
            adj,
            adj_t,
            part,
            version,
        };
        InferenceEngine::with_context(snapshot, ctx, features)
    }

    /// The configured invalidation strategy.
    pub fn strategy(&self) -> InvalidationStrategy {
        self.strategy
    }

    /// Point-in-time mutation counters.
    pub fn stats(&self) -> DynamicStats {
        DynamicStats {
            epoch: self.read_state().epoch,
            batches_applied: self.stats.batches_applied.load(Ordering::Relaxed),
            edges_inserted: self.stats.edges_inserted.load(Ordering::Relaxed),
            edges_deleted: self.stats.edges_deleted.load(Ordering::Relaxed),
            edge_noops: self.stats.edge_noops.load(Ordering::Relaxed),
            feature_writes: self.stats.feature_writes.load(Ordering::Relaxed),
            rows_invalidated: self.stats.rows_invalidated.load(Ordering::Relaxed),
            cone_nodes: self.stats.cone_nodes.load(Ordering::Relaxed),
        }
    }

    /// Full forward of the current epoch — the differential harness
    /// compares this against a from-scratch engine on the mutated graph.
    pub fn forward_all(&self) -> Matrix {
        self.read_state().engine.forward_all()
    }

    /// A clone of the current structural adjacency (for from-scratch
    /// rebuild references in tests and assertions).
    pub fn current_graph(&self) -> Csr {
        self.lock_core().graph.base().clone()
    }

    /// A clone of the current feature matrix.
    pub fn current_features(&self) -> Matrix {
        self.lock_core().features.clone()
    }

    /// Applies one mutation batch: incremental graph/feature update, new
    /// epoch swap, and cache invalidation per the configured strategy.
    /// The whole batch is validated before anything is touched; an error
    /// leaves graph, features and serving state unchanged. A batch with
    /// no net effect (all no-ops) swaps nothing and keeps the epoch.
    ///
    /// # Errors
    ///
    /// [`ServeError::SeedOutOfRange`] when a mutation names a node
    /// outside the graph, [`ServeError::BadModel`] on a self-loop edge
    /// mutation or a feature row of the wrong width.
    pub fn apply(&self, batch: &[Mutation]) -> Result<MutationReport, ServeError> {
        let mut edges = Vec::new();
        let mut writes: Vec<(u32, &[f32])> = Vec::new();
        for m in batch {
            match m {
                Mutation::InsertEdge { u, v } => edges.push(EdgeMutation::Insert { u: *u, v: *v }),
                Mutation::DeleteEdge { u, v } => edges.push(EdgeMutation::Delete { u: *u, v: *v }),
                Mutation::WriteFeature { node, values } => {
                    if *node as usize >= self.num_nodes {
                        return Err(ServeError::SeedOutOfRange {
                            seed: *node,
                            num_nodes: self.num_nodes,
                        });
                    }
                    if values.len() != self.in_dim {
                        return Err(ServeError::BadModel(format!(
                            "feature write for node {node} has {} values, model in_dim is {}",
                            values.len(),
                            self.in_dim
                        )));
                    }
                    writes.push((*node, values));
                }
            }
        }

        let mut core = self.lock_core();
        // Edge batch first: it validates fully before mutating, so a bad
        // edge cannot strand applied feature writes.
        let effect = core.graph.apply_batch(&edges).map_err(|e| match e {
            GraphError::NodeOutOfBounds { node, num_nodes } => ServeError::SeedOutOfRange {
                seed: node,
                num_nodes,
            },
            other => ServeError::BadModel(other.to_string()),
        })?;
        for &(node, values) in &writes {
            core.features.row_mut(node as usize).copy_from_slice(values);
        }

        self.stats
            .edges_inserted
            .fetch_add(effect.inserted as u64, Ordering::Relaxed);
        self.stats
            .edges_deleted
            .fetch_add(effect.deleted as u64, Ordering::Relaxed);
        self.stats
            .edge_noops
            .fetch_add(effect.noops as u64, Ordering::Relaxed);
        self.stats
            .feature_writes
            .fetch_add(writes.len() as u64, Ordering::Relaxed);

        if effect.is_empty() && writes.is_empty() {
            return Ok(MutationReport {
                epoch: core.epoch,
                inserted: effect.inserted,
                deleted: effect.deleted,
                noops: effect.noops,
                feature_writes: 0,
                dirty_rows: 0,
                cone_nodes: 0,
                rows_invalidated: 0,
            });
        }

        let old_version = self.read_state().engine.graph_version();
        let version = match self.strategy {
            InvalidationStrategy::DirtyCone => old_version,
            InvalidationStrategy::BumpVersion => GraphVersion::mint(),
        };
        let engine = Self::build_engine(
            &core.snapshot,
            &core.graph,
            core.features.clone(),
            self.eg_width,
            version,
        )?;

        // Reverse L-hop dirty cone, computed on the NEW transpose. Edge
        // dirt propagates through L aggregations but the first one is the
        // dirty row itself, hence L−1 expansion hops; a feature write
        // enters at the input, hence the full L. Deletions are covered on
        // the new graph because the last deleted edge on any vanished
        // path leaves its target row dirty, and the path's suffix still
        // exists.
        let adj_t = &engine.context().adj_t;
        let mut cone: Vec<u32> = Vec::new();
        if !effect.dirty_rows.is_empty() {
            let f = Frontier::reverse_hops(adj_t, &effect.dirty_rows, self.hops - 1)
                .map_err(|e| ServeError::BadModel(e.to_string()))?;
            cone.extend_from_slice(f.inputs().ids());
        }
        if !writes.is_empty() {
            let written: Vec<u32> = writes.iter().map(|&(n, _)| n).collect();
            let f = Frontier::reverse_hops(adj_t, &written, self.hops)
                .map_err(|e| ServeError::BadModel(e.to_string()))?;
            cone.extend_from_slice(f.inputs().ids());
        }
        cone.sort_unstable();
        cone.dedup();

        core.epoch += 1;
        let next = Arc::new(EpochState {
            epoch: core.epoch,
            engine,
        });

        let cache = self.cache.lock().expect("cache slot poisoned").clone();
        let mut rows_invalidated = 0u64;
        match self.strategy {
            InvalidationStrategy::DirtyCone => {
                // Invalidate, swap, invalidate again: the first pass stops
                // the cone being served and poisons in-flight leaders, the
                // second catches fills that raced the swap.
                if let Some(c) = &cache {
                    rows_invalidated += c.invalidate_seeds(self.generation, old_version, &cone);
                }
                *self.write_state() = Arc::new(EpochState {
                    epoch: next.epoch,
                    engine: next.engine.clone(),
                });
                if let Some(c) = &cache {
                    rows_invalidated += c.invalidate_seeds(self.generation, old_version, &cone);
                }
            }
            InvalidationStrategy::BumpVersion => {
                *self.write_state() = next;
            }
        }

        self.stats.batches_applied.fetch_add(1, Ordering::Relaxed);
        self.stats
            .cone_nodes
            .fetch_add(cone.len() as u64, Ordering::Relaxed);
        self.stats
            .rows_invalidated
            .fetch_add(rows_invalidated, Ordering::Relaxed);

        // Black-box the swap at its exact time (the monitor only sees
        // counter deltas a tick later).
        if let Some(rec) = self
            .recorder
            .lock()
            .expect("recorder slot poisoned")
            .as_ref()
        {
            rec.record(crate::EventKind::EpochSwap, core.epoch, rows_invalidated);
        }

        Ok(MutationReport {
            epoch: core.epoch,
            inserted: effect.inserted,
            deleted: effect.deleted,
            noops: effect.noops,
            feature_writes: writes.len(),
            dirty_rows: effect.dirty_rows.len(),
            cone_nodes: cone.len(),
            rows_invalidated,
        })
    }

    fn read_state(&self) -> Arc<EpochState> {
        Arc::clone(&self.state.read().expect("state lock poisoned"))
    }

    fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, Arc<EpochState>> {
        self.state.write().expect("state lock poisoned")
    }

    fn lock_core(&self) -> std::sync::MutexGuard<'_, Core> {
        self.core.lock().expect("core lock poisoned")
    }
}

impl BatchEngine for DynamicEngine {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn generation(&self) -> SnapshotGeneration {
        self.generation
    }

    fn graph_version(&self) -> GraphVersion {
        self.read_state().engine.graph_version()
    }

    fn epoch(&self) -> u64 {
        self.read_state().epoch
    }

    fn bind_cache(&self, cache: &Arc<LogitCache>) {
        *self.cache.lock().expect("cache slot poisoned") = Some(Arc::clone(cache));
    }

    fn bind_recorder(&self, recorder: &Arc<crate::FlightRecorder>) {
        *self.recorder.lock().expect("recorder slot poisoned") = Some(Arc::clone(recorder));
    }

    fn forward_union(&self, union: &[u32]) -> BatchOutcome {
        BatchEngine::forward_union(&self.read_state().engine, union)
    }

    fn forward_union_observed(
        &self,
        union: &[u32],
        obs: Option<(&Telemetry, u64)>,
    ) -> BatchOutcome {
        self.read_state().engine.forward_union_observed(union, obs)
    }
}

/// A background mutation submitter: batches queued here are applied to
/// the engine by a dedicated thread, so the query path never blocks on
/// mutation ingestion.
#[derive(Debug)]
pub struct MutationIngress {
    tx: Option<exec::Sender<Vec<Mutation>>>,
    join: Option<Worker<(u64, u64)>>,
}

impl MutationIngress {
    /// Spawns the applier worker over `engine` (named
    /// `maxk-mutations`, through [`crate::exec`]).
    pub fn spawn(engine: Arc<DynamicEngine>) -> Self {
        let executor = StdThreadExecutor;
        let (tx, rx) = executor.unbounded::<Vec<Mutation>>();
        let join = executor.spawn_worker("maxk-mutations", move || {
            let (mut ok, mut failed) = (0u64, 0u64);
            while let Ok(batch) = rx.recv() {
                match engine.apply(&batch) {
                    Ok(_) => ok += 1,
                    Err(_) => failed += 1,
                }
            }
            (ok, failed)
        });
        MutationIngress {
            tx: Some(tx),
            join: Some(join),
        }
    }

    /// Queues one batch for application.
    ///
    /// # Errors
    ///
    /// [`ServeError::ChannelClosed`] after shutdown.
    pub fn submit(&self, batch: Vec<Mutation>) -> Result<(), ServeError> {
        self.tx
            .as_ref()
            .ok_or(ServeError::ChannelClosed)?
            .send(batch)
            .map_err(|_| ServeError::ChannelClosed)
    }

    /// Drains the queue and stops the applier, returning `(applied,
    /// failed)` batch counts.
    pub fn shutdown(mut self) -> (u64, u64) {
        drop(self.tx.take());
        self.join
            .take()
            .map(|j| j.join().expect("mutation applier panicked"))
            .unwrap_or((0, 0))
    }
}

impl Drop for MutationIngress {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxk_graph::generate;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(arch: Arch) -> (ModelSnapshot, Csr, Matrix) {
        let graph = generate::chung_lu_power_law(50, 4.0, 2.3, 9)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(arch, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(11);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let snapshot = ModelSnapshot::capture(&model);
        let features = Matrix::xavier(50, 6, &mut rng);
        (snapshot, graph, features)
    }

    fn rebuilt(snapshot: &ModelSnapshot, graph: &Csr, features: Matrix) -> InferenceEngine {
        InferenceEngine::from_snapshot(snapshot, graph, features).unwrap()
    }

    #[test]
    fn fresh_engine_matches_frozen_construction() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            let (snapshot, graph, features) = setup(arch);
            let dynamic = DynamicEngine::new(
                &snapshot,
                &graph,
                features.clone(),
                InvalidationStrategy::DirtyCone,
            )
            .unwrap();
            let frozen = rebuilt(&snapshot, &graph, features);
            assert_eq!(
                dynamic.forward_all(),
                frozen.forward_all(),
                "{arch:?} epoch-0 logits differ from frozen engine"
            );
        }
    }

    #[test]
    fn mutations_match_from_scratch_rebuild() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            let (snapshot, graph, features) = setup(arch);
            let dynamic =
                DynamicEngine::new(&snapshot, &graph, features, InvalidationStrategy::DirtyCone)
                    .unwrap();
            let report = dynamic
                .apply(&[
                    Mutation::InsertEdge { u: 0, v: 49 },
                    Mutation::DeleteEdge { u: 0, v: 49 },
                    Mutation::InsertEdge { u: 3, v: 17 },
                    Mutation::WriteFeature {
                        node: 5,
                        values: vec![0.25; 6],
                    },
                ])
                .unwrap();
            assert_eq!(report.epoch, 1);
            assert_eq!(report.feature_writes, 1);
            assert!(report.cone_nodes > 0);
            let reference = rebuilt(
                &snapshot,
                &dynamic.current_graph(),
                dynamic.current_features(),
            );
            assert_eq!(
                dynamic.forward_all(),
                reference.forward_all(),
                "{arch:?} post-mutation logits differ from rebuild"
            );
        }
    }

    #[test]
    fn noop_batch_keeps_epoch_and_version() {
        let (snapshot, graph, features) = setup(Arch::Sage);
        let dynamic =
            DynamicEngine::new(&snapshot, &graph, features, InvalidationStrategy::DirtyCone)
                .unwrap();
        let v0 = BatchEngine::graph_version(&dynamic);
        // Toggle the edge there and back (whatever its initial state):
        // net effect zero.
        let batch = if graph.get(1, 2).is_some() {
            [
                Mutation::DeleteEdge { u: 1, v: 2 },
                Mutation::InsertEdge { u: 1, v: 2 },
            ]
        } else {
            [
                Mutation::InsertEdge { u: 1, v: 2 },
                Mutation::DeleteEdge { u: 1, v: 2 },
            ]
        };
        let report = dynamic.apply(&batch).unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(BatchEngine::epoch(&dynamic), 0);
        assert_eq!(BatchEngine::graph_version(&dynamic), v0);
    }

    #[test]
    fn invalid_batches_leave_state_untouched() {
        let (snapshot, graph, features) = setup(Arch::Gcn);
        let dynamic =
            DynamicEngine::new(&snapshot, &graph, features, InvalidationStrategy::DirtyCone)
                .unwrap();
        let before = dynamic.forward_all();
        assert!(matches!(
            dynamic.apply(&[Mutation::WriteFeature {
                node: 99,
                values: vec![0.0; 6]
            }]),
            Err(ServeError::SeedOutOfRange { seed: 99, .. })
        ));
        assert!(matches!(
            dynamic.apply(&[Mutation::WriteFeature {
                node: 1,
                values: vec![0.0; 3]
            }]),
            Err(ServeError::BadModel(_))
        ));
        assert!(matches!(
            dynamic.apply(&[Mutation::InsertEdge { u: 4, v: 4 }]),
            Err(ServeError::BadModel(_))
        ));
        assert_eq!(BatchEngine::epoch(&dynamic), 0);
        assert_eq!(dynamic.forward_all(), before);
    }

    #[test]
    fn strategies_version_the_cache_differently() {
        let (snapshot, graph, features) = setup(Arch::Sage);
        let cone = DynamicEngine::new(
            &snapshot,
            &graph,
            features.clone(),
            InvalidationStrategy::DirtyCone,
        )
        .unwrap();
        let bump = DynamicEngine::new(
            &snapshot,
            &graph,
            features,
            InvalidationStrategy::BumpVersion,
        )
        .unwrap();
        let (vc, vb) = (
            BatchEngine::graph_version(&cone),
            BatchEngine::graph_version(&bump),
        );
        let batch = [Mutation::InsertEdge { u: 2, v: 41 }];
        cone.apply(&batch).unwrap();
        bump.apply(&batch).unwrap();
        assert_eq!(
            BatchEngine::graph_version(&cone),
            vc,
            "dirty-cone keeps the version"
        );
        assert_ne!(
            BatchEngine::graph_version(&bump),
            vb,
            "bump mints a fresh version"
        );
        assert_eq!(BatchEngine::epoch(&cone), 1);
        assert_eq!(BatchEngine::epoch(&bump), 1);
    }

    #[test]
    fn dirty_cone_invalidates_bound_cache() {
        let (snapshot, graph, features) = setup(Arch::Sage);
        let dynamic = Arc::new(
            DynamicEngine::new(&snapshot, &graph, features, InvalidationStrategy::DirtyCone)
                .unwrap(),
        );
        let cache = Arc::new(LogitCache::new(crate::CacheConfig { capacity: 128 }));
        dynamic.bind_cache(&cache);
        // Warm every seed at the current identity.
        let all: Vec<u32> = (0..50).collect();
        let logits = dynamic.forward_all();
        cache.fill_rows(
            BatchEngine::generation(&*dynamic),
            BatchEngine::graph_version(&*dynamic),
            &all,
            &logits,
        );
        let report = dynamic
            .apply(&[Mutation::WriteFeature {
                node: 7,
                values: vec![1.0; 6],
            }])
            .unwrap();
        assert!(report.rows_invalidated > 0);
        assert_eq!(report.rows_invalidated, report.cone_nodes as u64);
        let snap = cache.snapshot();
        assert_eq!(snap.invalidated, report.rows_invalidated);
        assert_eq!(
            snap.resident_rows,
            50 - report.rows_invalidated,
            "rows outside the cone stay resident"
        );
        assert_eq!(dynamic.stats().rows_invalidated, report.rows_invalidated);
    }

    #[test]
    fn ingress_applies_in_background() {
        let (snapshot, graph, features) = setup(Arch::Gin);
        let dynamic = Arc::new(
            DynamicEngine::new(&snapshot, &graph, features, InvalidationStrategy::DirtyCone)
                .unwrap(),
        );
        let ingress = MutationIngress::spawn(Arc::clone(&dynamic));
        ingress
            .submit(vec![Mutation::InsertEdge { u: 0, v: 30 }])
            .unwrap();
        ingress
            .submit(vec![Mutation::WriteFeature {
                node: 2,
                values: vec![0.5; 6],
            }])
            .unwrap();
        ingress
            .submit(vec![Mutation::InsertEdge { u: 9, v: 9 }])
            .unwrap();
        let (ok, failed) = ingress.shutdown();
        assert_eq!(ok, 2);
        assert_eq!(failed, 1, "self-loop batch rejected");
        assert_eq!(BatchEngine::epoch(&*dynamic), 2);
        let reference = rebuilt(
            &snapshot,
            &dynamic.current_graph(),
            dynamic.current_features(),
        );
        assert_eq!(dynamic.forward_all(), reference.forward_all());
    }
}
