//! Bounded seed-level logit cache with in-flight coalescing.
//!
//! Zipf-skewed serving traffic concentrates on a small hot seed set, yet
//! without a cache every repeat of a hot seed pays a full or partial
//! forward. [`LogitCache`] stores finished logit **rows** keyed by
//! [`CacheKey`] — `(SnapshotGeneration, GraphVersion, seed)` — so a row
//! is only ever reused for the exact weight set and graph operand that
//! computed it; hot-swapping a snapshot or rebuilding the context mints
//! new identities and the stale rows age out via eviction instead of
//! being served.
//!
//! # Eviction
//!
//! The store is bounded to `capacity` rows and evicts with the **CLOCK**
//! algorithm (second-chance): every probe or fill sets the row's
//! reference bit; the clock hand sweeps the slots, clearing bits until it
//! finds an unreferenced victim. CLOCK approximates LRU with O(1)
//! amortized bookkeeping per access and no per-access list splicing —
//! every batch probes many seeds under one lock, so the cheap touch
//! matters more than exact recency.
//!
//! # In-flight coalescing
//!
//! Concurrent batches frequently want the same hot seed that nobody has
//! finished computing yet. [`LogitCache::claim`] arbitrates: the first
//! claimant of a missing seed becomes its **leader** (the seed joins the
//! leader's [`LeadClaim`] and its forward union); later claimants become
//! **followers**, parked on a [`FollowHandle`] that resolves when the
//! leader fills — they never re-enter the planner for that seed. A
//! leader that dies before filling (worker panic) aborts its slots on
//! drop, so followers wake with `None` and recompute instead of hanging.
//!
//! # Counter discipline
//!
//! The snapshot counters are an exact account, not a heuristic:
//! per *seed instance* that gets answered, exactly one of
//! `hits`/`misses`/`coalesced` is incremented — `hits` at probe time or
//! when [`LogitCache::claim`] finds the row resident, `misses` once per
//! leader-computed seed, `coalesced` for every instance that shared a
//! leader's computation (including the leader's own duplicate
//! instances). The serving stack asserts
//! `hits + misses + coalesced == answered seed instances` in its books.

use maxk_nn::{GraphVersion, SnapshotGeneration};
use maxk_tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of one cached logit row: which weights, which graph operand,
/// which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The weight set that computed the row.
    pub generation: SnapshotGeneration,
    /// The normalized graph operand the row was computed over.
    pub graph_version: GraphVersion,
    /// The seed (global node id) the row belongs to.
    pub seed: u32,
}

/// Configuration of a [`LogitCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident logit rows (CLOCK evicts beyond this). Must be
    /// nonzero.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 4096 }
    }
}

/// Point-in-time counters of a [`LogitCache`].
///
/// `hits + misses + coalesced` equals the number of answered seed
/// instances that consulted the cache (see the
/// [module docs](self#counter-discipline)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Seed instances answered from a resident row.
    pub hits: u64,
    /// Seeds computed by a leader (one per unique missing seed).
    pub misses: u64,
    /// Seed instances that shared a leader's in-flight computation.
    pub coalesced: u64,
    /// Rows evicted by the CLOCK hand.
    pub evictions: u64,
    /// Rows removed by targeted invalidation
    /// ([`LogitCache::invalidate_seeds`]) — the dirty-cone path of
    /// streaming graph mutations.
    pub invalidated: u64,
    /// Rows currently resident.
    pub resident_rows: u64,
    /// Payload bytes of the resident rows (`f32` data only, excluding
    /// map/slot overhead).
    pub resident_bytes: u64,
    /// Configured row capacity.
    pub capacity: u64,
}

impl CacheSnapshot {
    /// Fraction of cache-consulting seed instances answered without
    /// waiting: `hits / (hits + misses + coalesced)` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// State of one in-flight seed computation.
#[derive(Debug)]
enum InflightState {
    /// The leader is still computing.
    Pending,
    /// The leader filled the row.
    Done(Arc<[f32]>),
    /// The leader dropped without filling; followers must recompute.
    Aborted,
}

/// One in-flight seed: followers block on `cv` until the leader resolves
/// `state`.
#[derive(Debug)]
struct Inflight {
    state: Mutex<InflightState>,
    cv: Condvar,
    /// Poisoned by [`LogitCache::invalidate_seeds`]: the leader computed
    /// (or is computing) against a graph state that has since mutated, so
    /// its fill must not become resident. Followers still receive the row
    /// — their answers carry the epoch the row was computed against.
    invalidated: AtomicBool,
}

impl Inflight {
    fn new() -> Arc<Self> {
        Arc::new(Inflight {
            state: Mutex::new(InflightState::Pending),
            cv: Condvar::new(),
            invalidated: AtomicBool::new(false),
        })
    }

    fn resolve(&self, state: InflightState) {
        *self.state.lock().expect("inflight lock poisoned") = state;
        self.cv.notify_all();
    }
}

/// One resident row.
#[derive(Debug)]
struct Slot {
    key: CacheKey,
    row: Arc<[f32]>,
    /// CLOCK reference bit; set on probe and fill, cleared by the hand.
    referenced: bool,
}

/// The locked interior: resident store, CLOCK state, in-flight table and
/// counters. Lock order is store-then-inflight; [`FollowHandle::wait`]
/// only ever takes the inflight lock, so no cycle exists.
#[derive(Debug)]
struct Store {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    hand: usize,
    inflight: HashMap<CacheKey, Arc<Inflight>>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    invalidated: u64,
    resident_bytes: u64,
}

impl Store {
    /// Removes one resident row, keeping the slot vector dense: the last
    /// slot backfills the vacated index (with its map entry re-pointed)
    /// and the CLOCK hand is clamped back into range. With fewer slots
    /// than capacity, subsequent inserts take the append path, so the
    /// sweep invariants hold unchanged.
    fn remove_key(&mut self, key: &CacheKey) -> bool {
        let Some(i) = self.map.remove(key) else {
            return false;
        };
        self.resident_bytes -= (self.slots[i].row.len() * std::mem::size_of::<f32>()) as u64;
        self.slots.swap_remove(i);
        if let Some(moved) = self.slots.get(i) {
            self.map.insert(moved.key, i);
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
        true
    }

    /// Inserts (or refreshes) a resident row, evicting via CLOCK at
    /// capacity.
    fn insert(&mut self, capacity: usize, key: CacheKey, row: Arc<[f32]>) {
        let bytes = (row.len() * std::mem::size_of::<f32>()) as u64;
        if let Some(&i) = self.map.get(&key) {
            let slot = &mut self.slots[i];
            self.resident_bytes -= (slot.row.len() * std::mem::size_of::<f32>()) as u64;
            self.resident_bytes += bytes;
            slot.row = row;
            slot.referenced = true;
            return;
        }
        if self.slots.len() < capacity {
            self.map.insert(key, self.slots.len());
            // New rows start unreferenced: only a subsequent probe (or
            // refresh) earns the second chance, so one-shot rows are the
            // first to go while repeatedly-probed rows survive sweeps.
            self.slots.push(Slot {
                key,
                row,
                referenced: false,
            });
            self.resident_bytes += bytes;
            return;
        }
        // CLOCK sweep: clear reference bits until an unreferenced victim
        // turns up. Terminates within two revolutions because cleared
        // bits stay cleared under this lock.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % capacity;
            } else {
                break;
            }
        }
        let victim = &mut self.slots[self.hand];
        self.map.remove(&victim.key);
        self.resident_bytes -= (victim.row.len() * std::mem::size_of::<f32>()) as u64;
        self.evictions += 1;
        self.map.insert(key, self.hand);
        *victim = Slot {
            key,
            row,
            referenced: false,
        };
        self.resident_bytes += bytes;
        self.hand = (self.hand + 1) % capacity;
    }
}

/// A bounded, thread-safe seed-level logit cache with CLOCK eviction and
/// in-flight coalescing. See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct LogitCache {
    cfg: CacheConfig,
    store: Mutex<Store>,
}

impl LogitCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.capacity` is zero — a zero-row cache cannot hold
    /// a leader's fill, which would silently disable coalescing; disable
    /// caching by not attaching one instead.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.capacity > 0, "cache capacity must be nonzero");
        LogitCache {
            cfg,
            store: Mutex::new(Store {
                map: HashMap::new(),
                slots: Vec::new(),
                hand: 0,
                inflight: HashMap::new(),
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
                invalidated: 0,
                resident_bytes: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Non-blocking lookup of one seed's row; counts a hit when resident.
    ///
    /// Only call for seed instances that will definitely be answered —
    /// every probe hit is a counted, answered instance. In-flight seeds
    /// miss here (the instance coalesces at [`LogitCache::claim`]
    /// instead).
    pub fn probe(
        &self,
        generation: SnapshotGeneration,
        graph_version: GraphVersion,
        seed: u32,
    ) -> Option<Arc<[f32]>> {
        let key = CacheKey {
            generation,
            graph_version,
            seed,
        };
        let mut store = self.lock();
        if let Some(&i) = store.map.get(&key) {
            store.hits += 1;
            let slot = &mut store.slots[i];
            slot.referenced = true;
            return Some(Arc::clone(&slot.row));
        }
        None
    }

    /// Counts `n` misses without claiming leadership — for callers (the
    /// sharded router's probe-before-scatter) that compute missing rows
    /// through their own path and fill with [`LogitCache::fill_rows`].
    pub fn record_misses(&self, n: u64) {
        self.lock().misses += n;
    }

    /// Arbitrates a batch's missing seeds into hits, a leader set and
    /// follower handles.
    ///
    /// `missing` lists `(seed, occurrences)` pairs — each unique seed the
    /// caller's probe missed, with how many answered instances in the
    /// batch want it. Per seed, exactly one of three things happens:
    ///
    /// * **resident** (filled since the probe): all instances are late
    ///   hits — the row is returned in [`Claim::hits`];
    /// * **in-flight**: all instances coalesce onto the existing leader —
    ///   a [`FollowHandle`] is returned in [`Claim::follows`];
    /// * **absent**: the caller becomes the leader — the seed joins
    ///   [`Claim::lead`], whose union the caller must compute and
    ///   [`LeadClaim::fill`].
    ///
    /// Counters move accordingly (`occ` hits, `occ` coalesced, or 1 miss
    /// + `occ − 1` coalesced), keeping the per-instance account exact.
    pub fn claim(
        self: &Arc<Self>,
        generation: SnapshotGeneration,
        graph_version: GraphVersion,
        missing: &[(u32, u32)],
    ) -> Claim {
        let mut hits = Vec::new();
        let mut lead_entries = Vec::new();
        let mut follows = Vec::new();
        let mut store = self.lock();
        for &(seed, occ) in missing {
            debug_assert!(occ > 0, "claimed seed with zero instances");
            let key = CacheKey {
                generation,
                graph_version,
                seed,
            };
            if let Some(&i) = store.map.get(&key) {
                store.hits += u64::from(occ);
                let slot = &mut store.slots[i];
                slot.referenced = true;
                hits.push((seed, Arc::clone(&slot.row)));
            } else if let Some(inflight) = store.inflight.get(&key).map(Arc::clone) {
                store.coalesced += u64::from(occ);
                follows.push((seed, FollowHandle { inflight }));
            } else {
                store.misses += 1;
                store.coalesced += u64::from(occ) - 1;
                let inflight = Inflight::new();
                store.inflight.insert(key, Arc::clone(&inflight));
                lead_entries.push((seed, inflight));
            }
        }
        drop(store);
        Claim {
            hits,
            lead: LeadClaim {
                cache: Arc::clone(self),
                generation,
                graph_version,
                entries: lead_entries,
            },
            follows,
        }
    }

    /// Inserts finished rows without touching counters or the in-flight
    /// table — a **warm-up hook only**. `rows.row(i)` is stored for
    /// `seeds[i]`.
    ///
    /// Because nothing is registered in flight, a mutation's
    /// [`LogitCache::invalidate_seeds`] racing the caller's computation
    /// has nothing to poison, and the stale rows would land after it.
    /// Serving paths that compute rows outside [`LogitCache::claim`]
    /// (the sharded router's probe/scatter/fill, the server's
    /// aborted-leader fallback) must register with
    /// [`LogitCache::lead_uncounted`] *before* computing and publish via
    /// [`LeadClaim::fill`] instead. Live seeds under another in-flight
    /// leader are skipped rather than clobbered.
    ///
    /// # Panics
    ///
    /// Panics when `rows` has fewer rows than `seeds`.
    pub fn fill_rows(
        &self,
        generation: SnapshotGeneration,
        graph_version: GraphVersion,
        seeds: &[u32],
        rows: &Matrix,
    ) {
        assert!(rows.rows() >= seeds.len(), "fewer rows than seeds");
        let mut store = self.lock();
        for (i, &seed) in seeds.iter().enumerate() {
            let key = CacheKey {
                generation,
                graph_version,
                seed,
            };
            if store.inflight.contains_key(&key) {
                // An in-flight leader owns this seed; warm-up must not
                // race its (possibly already-poisoned) fill.
                continue;
            }
            store.insert(self.cfg.capacity, key, Arc::from(rows.row(i)));
        }
    }

    /// Registers **uncounted** leadership over `seeds` for callers that
    /// compute rows through their own forward path but still need the
    /// dynamic invalidation protocol to see the computation in flight.
    /// No hit/miss/coalesced counters move — the caller already
    /// accounted its instances (via [`LogitCache::probe`] /
    /// [`LogitCache::record_misses`] or as part of a batch answer).
    ///
    /// Call **before** starting the computation, then publish through
    /// [`LeadClaim::fill`]: a mutation's
    /// [`LogitCache::invalidate_seeds`] poisons the registered slots
    /// mid-computation, and `fill` then skips the stale rows instead of
    /// landing pre-mutation bits — the race the raw
    /// [`LogitCache::fill_rows`] hook cannot close.
    ///
    /// Seeds already resident are re-led (under one `(generation,
    /// graph_version)` identity a recomputation is bitwise-identical,
    /// so the refresh is harmless); seeds already led by another
    /// in-flight claim are skipped (that leader owns the slot) and do
    /// not appear in [`LeadClaim::seeds`].
    pub fn lead_uncounted(
        self: &Arc<Self>,
        generation: SnapshotGeneration,
        graph_version: GraphVersion,
        seeds: &[u32],
    ) -> LeadClaim {
        let mut entries = Vec::with_capacity(seeds.len());
        let mut store = self.lock();
        for &seed in seeds {
            let key = CacheKey {
                generation,
                graph_version,
                seed,
            };
            if store.inflight.contains_key(&key) {
                continue;
            }
            let inflight = Inflight::new();
            store.inflight.insert(key, Arc::clone(&inflight));
            entries.push((seed, inflight));
        }
        drop(store);
        LeadClaim {
            cache: Arc::clone(self),
            generation,
            graph_version,
            entries,
        }
    }

    /// Drops the resident rows of `seeds` under `(generation,
    /// graph_version)` and poisons any matching in-flight computations,
    /// returning how many resident rows were removed. This is the
    /// **dirty-cone** invalidation path of streaming mutations: rows
    /// whose reverse L-hop cone a mutation touched stop being served,
    /// while every other resident row keeps hitting.
    ///
    /// A poisoned in-flight entry is also unlinked from the table, so the
    /// next claimant of that seed leads a fresh computation instead of
    /// coalescing onto the stale one; when the stale leader eventually
    /// fills, its row wakes its already-parked followers but is not
    /// inserted into the resident store.
    pub fn invalidate_seeds(
        &self,
        generation: SnapshotGeneration,
        graph_version: GraphVersion,
        seeds: &[u32],
    ) -> u64 {
        let mut removed = 0u64;
        let mut store = self.lock();
        for &seed in seeds {
            let key = CacheKey {
                generation,
                graph_version,
                seed,
            };
            if store.remove_key(&key) {
                removed += 1;
            }
            if let Some(inflight) = store.inflight.remove(&key) {
                inflight.invalidated.store(true, Ordering::Release);
            }
        }
        store.invalidated += removed;
        removed
    }

    /// Point-in-time counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        let store = self.lock();
        CacheSnapshot {
            hits: store.hits,
            misses: store.misses,
            coalesced: store.coalesced,
            evictions: store.evictions,
            invalidated: store.invalidated,
            resident_rows: store.slots.len() as u64,
            resident_bytes: store.resident_bytes,
            capacity: self.cfg.capacity as u64,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Store> {
        self.store.lock().expect("cache lock poisoned")
    }
}

/// Result of [`LogitCache::claim`]: late hits, the caller's leader set
/// and the handles to park on.
#[derive(Debug)]
pub struct Claim {
    /// Seeds that became resident between probe and claim, with their
    /// rows (already counted as hits).
    pub hits: Vec<(u32, Arc<[f32]>)>,
    /// The seeds this caller leads; compute their union and
    /// [`LeadClaim::fill`].
    pub lead: LeadClaim,
    /// Seeds led by another in-flight batch; [`FollowHandle::wait`]
    /// blocks until that leader resolves.
    pub follows: Vec<(u32, FollowHandle)>,
}

/// The set of seeds one claimant leads. Obtained via
/// [`LogitCache::claim`]; the owner must compute the seeds' logit rows
/// and [`LeadClaim::fill`]. Dropping without filling **aborts** the
/// slots: parked followers wake with `None` and recompute — they never
/// hang on a dead leader.
#[derive(Debug)]
pub struct LeadClaim {
    cache: Arc<LogitCache>,
    generation: SnapshotGeneration,
    graph_version: GraphVersion,
    entries: Vec<(u32, Arc<Inflight>)>,
}

impl LeadClaim {
    /// The led seeds, in claim order (the order [`LeadClaim::fill`]
    /// expects rows in).
    pub fn seeds(&self) -> Vec<u32> {
        self.entries.iter().map(|(s, _)| *s).collect()
    }

    /// True when this claim leads no seeds (everything was resident or
    /// already in flight).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publishes the computed rows: inserts each into the resident store,
    /// wakes the followers with the row, and retires the in-flight slots.
    /// `rows.row(i)` belongs to `self.seeds()[i]`. Returns the
    /// `(seed, row)` pairs for the leader's own answer assembly.
    ///
    /// # Panics
    ///
    /// Panics when `rows` has fewer rows than led seeds.
    pub fn fill(mut self, rows: &Matrix) -> Vec<(u32, Arc<[f32]>)> {
        let entries = std::mem::take(&mut self.entries);
        assert!(rows.rows() >= entries.len(), "fewer rows than led seeds");
        let mut out = Vec::with_capacity(entries.len());
        let mut store = self.cache.lock();
        for (i, (seed, inflight)) in entries.into_iter().enumerate() {
            let key = CacheKey {
                generation: self.generation,
                graph_version: self.graph_version,
                seed,
            };
            let row: Arc<[f32]> = Arc::from(rows.row(i));
            // A poisoned slot was invalidated mid-computation: the row is
            // stale for the resident store, but followers (and the leader
            // itself) still answer with it under the epoch it was
            // computed against.
            if !inflight.invalidated.load(Ordering::Acquire) {
                store.insert(self.cache.cfg.capacity, key, Arc::clone(&row));
            }
            // Only unlink our own slot: invalidation may have already
            // replaced the table entry with a successor leader's.
            if store
                .inflight
                .get(&key)
                .is_some_and(|cur| Arc::ptr_eq(cur, &inflight))
            {
                store.inflight.remove(&key);
            }
            inflight.resolve(InflightState::Done(Arc::clone(&row)));
            out.push((seed, row));
        }
        out
    }
}

impl Drop for LeadClaim {
    fn drop(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        // Unfilled leadership (fill panicked upstream, or the worker bailed):
        // abort the slots so followers recompute instead of hanging.
        let entries = std::mem::take(&mut self.entries);
        let mut store = self.cache.lock();
        for (seed, inflight) in entries {
            let key = CacheKey {
                generation: self.generation,
                graph_version: self.graph_version,
                seed,
            };
            if store
                .inflight
                .get(&key)
                .is_some_and(|cur| Arc::ptr_eq(cur, &inflight))
            {
                store.inflight.remove(&key);
            }
            inflight.resolve(InflightState::Aborted);
        }
    }
}

/// A parked follower of one in-flight seed computation.
#[derive(Debug)]
pub struct FollowHandle {
    inflight: Arc<Inflight>,
}

impl FollowHandle {
    /// Blocks until the leader resolves: `Some(row)` when it filled,
    /// `None` when it aborted (the follower must compute the seed
    /// itself).
    pub fn wait(self) -> Option<Arc<[f32]>> {
        let mut state = self.inflight.state.lock().expect("inflight lock poisoned");
        loop {
            match &*state {
                InflightState::Pending => {
                    state = self
                        .inflight
                        .cv
                        .wait(state)
                        .expect("inflight lock poisoned");
                }
                InflightState::Done(row) => return Some(Arc::clone(row)),
                InflightState::Aborted => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (SnapshotGeneration, GraphVersion) {
        (SnapshotGeneration::mint(), GraphVersion::mint())
    }

    fn row_matrix(rows: &[&[f32]]) -> Matrix {
        let cols = rows[0].len();
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        m
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 4 });
        assert!(cache.probe(g, v, 3).is_none());
        cache.fill_rows(g, v, &[3], &row_matrix(&[&[1.0, 2.0]]));
        let row = cache.probe(g, v, 3).expect("filled row resident");
        assert_eq!(&row[..], &[1.0, 2.0]);
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.resident_rows, 1);
        assert_eq!(snap.resident_bytes, 8);
    }

    #[test]
    fn versions_partition_the_keyspace() {
        let (g1, v1) = ids();
        let (g2, v2) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 8 });
        cache.fill_rows(g1, v1, &[5], &row_matrix(&[&[1.0]]));
        assert!(cache.probe(g2, v1, 5).is_none(), "other generation");
        assert!(cache.probe(g1, v2, 5).is_none(), "other graph version");
        assert!(cache.probe(g1, v1, 5).is_some());
    }

    #[test]
    fn clock_eviction_bounds_residency_and_counts() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 3 });
        for s in 0..10u32 {
            cache.fill_rows(g, v, &[s], &row_matrix(&[&[s as f32]]));
        }
        let snap = cache.snapshot();
        assert_eq!(snap.resident_rows, 3);
        assert_eq!(snap.evictions, 7);
        assert_eq!(snap.resident_bytes, 12);
        // Exactly 3 of the 10 rows remain resident.
        let resident = (0..10u32)
            .filter(|&s| cache.probe(g, v, s).is_some())
            .count();
        assert_eq!(resident, 3);
    }

    #[test]
    fn clock_second_chance_keeps_touched_rows() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 2 });
        cache.fill_rows(g, v, &[0], &row_matrix(&[&[0.0]]));
        cache.fill_rows(g, v, &[1], &row_matrix(&[&[1.0]]));
        // Touch 0 so its reference bit survives the first sweep; the
        // insert of 2 must then prefer evicting 1.
        assert!(cache.probe(g, v, 0).is_some());
        cache.fill_rows(g, v, &[2], &row_matrix(&[&[2.0]]));
        assert!(cache.probe(g, v, 0).is_some(), "recently-touched survives");
        assert!(cache.probe(g, v, 2).is_some(), "new row resident");
    }

    #[test]
    fn refreshing_a_resident_row_does_not_evict() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 2 });
        cache.fill_rows(g, v, &[0, 1], &row_matrix(&[&[0.0], &[1.0]]));
        cache.fill_rows(g, v, &[0], &row_matrix(&[&[9.0]]));
        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 0);
        assert_eq!(snap.resident_rows, 2);
        assert_eq!(&cache.probe(g, v, 0).unwrap()[..], &[9.0]);
    }

    #[test]
    fn claim_counts_exactly_per_instance() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        cache.fill_rows(g, v, &[7], &row_matrix(&[&[7.0]]));
        // Seed 7 resident (2 instances), seed 3 absent (3 instances).
        let claim = cache.claim(g, v, &[(7, 2), (3, 3)]);
        assert_eq!(claim.hits.len(), 1);
        assert_eq!(claim.lead.seeds(), vec![3]);
        assert!(claim.follows.is_empty());
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.coalesced, 2);
        // A second claimant of seed 3 while in flight: all coalesced.
        let second = cache.claim(g, v, &[(3, 2)]);
        assert!(second.lead.is_empty());
        assert_eq!(second.follows.len(), 1);
        assert_eq!(cache.snapshot().coalesced, 4);
        // Leader fills; follower resolves with the same bits.
        let filled = claim.lead.fill(&row_matrix(&[&[3.5]]));
        assert_eq!(filled.len(), 1);
        let (seed, handle) = second.follows.into_iter().next().unwrap();
        assert_eq!(seed, 3);
        assert_eq!(&handle.wait().expect("leader filled")[..], &[3.5]);
        // Identity: hits + misses + coalesced == answered instances (2+3+2).
        let snap = cache.snapshot();
        assert_eq!(snap.hits + snap.misses + snap.coalesced, 7);
    }

    #[test]
    fn claim_after_fill_is_a_late_hit() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let lead = cache.claim(g, v, &[(1, 1)]).lead;
        lead.fill(&row_matrix(&[&[1.0]]));
        let claim = cache.claim(g, v, &[(1, 4)]);
        assert_eq!(claim.hits.len(), 1);
        assert!(claim.lead.is_empty());
        assert!(claim.follows.is_empty());
        assert_eq!(cache.snapshot().hits, 4);
    }

    #[test]
    fn dropped_leader_aborts_followers() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let leader = cache.claim(g, v, &[(9, 1)]);
        let follower = cache.claim(g, v, &[(9, 1)]);
        drop(leader);
        let (_, handle) = follower.follows.into_iter().next().unwrap();
        assert!(handle.wait().is_none(), "aborted leader yields None");
        // The slot is gone: the next claimant becomes a fresh leader.
        let retry = cache.claim(g, v, &[(9, 1)]);
        assert_eq!(retry.lead.seeds(), vec![9]);
    }

    #[test]
    fn followers_parked_across_threads_wake_on_fill() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let leader = cache.claim(g, v, &[(4, 1)]);
        let joined: Vec<Arc<[f32]>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || {
                        let c = cache.claim(g, v, &[(4, 1)]);
                        let (_, h) = c.follows.into_iter().next().expect("in flight");
                        h.wait().expect("leader fills")
                    })
                })
                .collect();
            // Give followers a moment to park, then fill.
            std::thread::sleep(std::time::Duration::from_millis(10));
            leader.lead.fill(&row_matrix(&[&[4.25, -1.0]]));
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for row in joined {
            assert_eq!(&row[..], &[4.25, -1.0]);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.coalesced, 4);
    }

    #[test]
    fn invalidate_removes_exactly_the_named_seeds() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 8 });
        for s in 0..5u32 {
            cache.fill_rows(g, v, &[s], &row_matrix(&[&[s as f32]]));
        }
        let removed = cache.invalidate_seeds(g, v, &[1, 3, 9]);
        assert_eq!(removed, 2, "seed 9 was never resident");
        assert!(cache.probe(g, v, 1).is_none());
        assert!(cache.probe(g, v, 3).is_none());
        for s in [0u32, 2, 4] {
            assert!(cache.probe(g, v, s).is_some(), "seed {s} untouched");
        }
        let snap = cache.snapshot();
        assert_eq!(snap.invalidated, 2);
        assert_eq!(snap.resident_rows, 3);
        assert_eq!(snap.resident_bytes, 12);
        assert_eq!(snap.evictions, 0, "invalidation is not eviction");
    }

    #[test]
    fn invalidate_then_refill_reuses_capacity() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 3 });
        for s in 0..3u32 {
            cache.fill_rows(g, v, &[s], &row_matrix(&[&[s as f32]]));
        }
        assert_eq!(cache.invalidate_seeds(g, v, &[0, 1, 2]), 3);
        assert_eq!(cache.snapshot().resident_rows, 0);
        // The freed slots refill without eviction churn.
        for s in 10..13u32 {
            cache.fill_rows(g, v, &[s], &row_matrix(&[&[s as f32]]));
        }
        let snap = cache.snapshot();
        assert_eq!(snap.resident_rows, 3);
        assert_eq!(snap.evictions, 0);
        for s in 10..13u32 {
            assert!(cache.probe(g, v, s).is_some());
        }
    }

    #[test]
    fn invalidated_leader_fill_stays_nonresident() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let claim = cache.claim(g, v, &[(6, 1)]);
        let follower = cache.claim(g, v, &[(6, 1)]);
        // A mutation lands while the leader computes.
        cache.invalidate_seeds(g, v, &[6]);
        // Parked followers still get the (stale-epoch) row...
        let filled = claim.lead.fill(&row_matrix(&[&[6.5]]));
        assert_eq!(filled.len(), 1);
        let (_, handle) = follower.follows.into_iter().next().unwrap();
        assert_eq!(&handle.wait().expect("leader resolved")[..], &[6.5]);
        // ...but the row never became resident.
        assert!(cache.probe(g, v, 6).is_none(), "stale fill not resident");
        // And the next claimant leads fresh instead of coalescing.
        let retry = cache.claim(g, v, &[(6, 1)]);
        assert_eq!(retry.lead.seeds(), vec![6]);
    }

    #[test]
    fn stale_leader_does_not_clobber_successor() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let stale = cache.claim(g, v, &[(2, 1)]);
        cache.invalidate_seeds(g, v, &[2]);
        // A successor leads the seed post-invalidation.
        let fresh = cache.claim(g, v, &[(2, 1)]);
        assert_eq!(fresh.lead.seeds(), vec![2]);
        // The stale leader fills (or aborts): the successor's in-flight
        // slot must survive both.
        stale.lead.fill(&row_matrix(&[&[0.0]]));
        let parked = cache.claim(g, v, &[(2, 1)]);
        assert!(parked.lead.is_empty(), "successor slot still in flight");
        assert_eq!(parked.follows.len(), 1);
        let rows = fresh.lead.fill(&row_matrix(&[&[2.25]]));
        assert_eq!(&rows[0].1[..], &[2.25]);
        let (_, handle) = parked.follows.into_iter().next().unwrap();
        assert_eq!(&handle.wait().expect("fresh leader filled")[..], &[2.25]);
        assert_eq!(&cache.probe(g, v, 2).unwrap()[..], &[2.25]);
    }

    #[test]
    fn aborted_leader_recovery_never_lands_premutation_bits() {
        // The satellite-1 race: a leader aborts, the server's fallback
        // path recomputes the seed through its own forward, and a
        // mutation invalidates the seed while that recompute runs. The
        // recovery must register in flight *before* computing so the
        // invalidation poisons it; the stale row must never land.
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let leader = cache.claim(g, v, &[(6, 1)]);
        let follower = cache.claim(g, v, &[(6, 1)]);
        drop(leader); // leader aborts mid-flight
        let (_, handle) = follower.follows.into_iter().next().unwrap();
        assert!(handle.wait().is_none(), "abort reaches the follower");
        // Fallback recovery: register uncounted leadership, then compute.
        let recovery = cache.lead_uncounted(g, v, &[6]);
        assert_eq!(recovery.seeds(), vec![6]);
        // The racing mutation lands while the recompute is in flight.
        cache.invalidate_seeds(g, v, &[6]);
        recovery.fill(&row_matrix(&[&[-99.0]]));
        assert!(
            cache.probe(g, v, 6).is_none(),
            "pre-mutation bits must not land after invalidation"
        );
        // The next claimant leads fresh rather than seeing stale state.
        let retry = cache.claim(g, v, &[(6, 1)]);
        assert_eq!(retry.lead.seeds(), vec![6]);
    }

    #[test]
    fn lead_uncounted_fill_lands_and_wakes_followers() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let lead = cache.lead_uncounted(g, v, &[3]);
        assert_eq!(lead.seeds(), vec![3]);
        // No counters moved: leadership here is bookkeeping-free.
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.coalesced), (0, 0, 0));
        // A claimant arriving mid-flight coalesces onto the slot.
        let claim = cache.claim(g, v, &[(3, 1)]);
        assert!(claim.lead.is_empty());
        assert_eq!(claim.follows.len(), 1);
        lead.fill(&row_matrix(&[&[3.75, 1.0]]));
        let (_, handle) = claim.follows.into_iter().next().unwrap();
        assert_eq!(&handle.wait().expect("filled")[..], &[3.75, 1.0]);
        assert_eq!(&cache.probe(g, v, 3).unwrap()[..], &[3.75, 1.0]);
    }

    #[test]
    fn lead_uncounted_skips_live_leader() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let owner = cache.claim(g, v, &[(5, 1)]);
        let lead = cache.lead_uncounted(g, v, &[5, 6]);
        assert_eq!(lead.seeds(), vec![6], "seed 5 already owned in flight");
        owner.lead.fill(&row_matrix(&[&[5.0]]));
        lead.fill(&row_matrix(&[&[6.0]]));
        assert_eq!(&cache.probe(g, v, 5).unwrap()[..], &[5.0]);
        assert_eq!(&cache.probe(g, v, 6).unwrap()[..], &[6.0]);
    }

    #[test]
    fn fill_rows_warmup_does_not_race_inflight_leader() {
        let (g, v) = ids();
        let cache = Arc::new(LogitCache::new(CacheConfig { capacity: 8 }));
        let owner = cache.claim(g, v, &[(1, 1)]);
        cache.fill_rows(g, v, &[1], &row_matrix(&[&[-1.0]]));
        assert!(
            cache.probe(g, v, 1).is_none(),
            "warm-up must not preempt a live in-flight leader"
        );
        // The real leader's fill wins, and its bits are what land.
        owner.lead.fill(&row_matrix(&[&[1.5]]));
        assert_eq!(&cache.probe(g, v, 1).unwrap()[..], &[1.5]);
    }

    #[test]
    fn remove_key_backfill_keeps_map_consistent() {
        let (g, v) = ids();
        let cache = LogitCache::new(CacheConfig { capacity: 8 });
        for s in 0..4u32 {
            cache.fill_rows(g, v, &[s], &row_matrix(&[&[s as f32]]));
        }
        // Removing slot 0 swaps slot 3 into its place; every surviving
        // row must still be reachable with its own bits.
        cache.invalidate_seeds(g, v, &[0]);
        for s in 1..4u32 {
            assert_eq!(&cache.probe(g, v, s).unwrap()[..], &[s as f32]);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = LogitCache::new(CacheConfig { capacity: 0 });
    }

    #[test]
    fn hit_rate_reads_zero_when_idle() {
        let snap = CacheSnapshot::default();
        assert_eq!(snap.hit_rate(), 0.0);
    }
}
