//! Per-query stage traces and the bounded span ring.
//!
//! A sampled query carries a [`TraceContext`] through the serving
//! pipeline; each layer stamps a [`Stage`] mark as the query passes
//! (admission enqueue, dequeue, cache probe, batch assembly, forward,
//! gather, reply). Marks accumulate *locally* in the context — the hot
//! path touches no shared state until the reply, when the finished
//! context is folded into spans and pushed into the [`TraceRing`].
//!
//! The ring is bounded (`ring_capacity` slots, oldest overwritten) and
//! its push path is wait-free on the index side: an atomic fetch-add
//! picks the slot, and only that one slot's mutex is taken to write the
//! record. Unsampled queries never touch the ring at all — that is what
//! keeps full-rate serving overhead within the sampling budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Pipeline stages a query passes through; each mark timestamps the
/// *completion* of the step it names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accepted into the admission queue.
    Enqueue,
    /// Popped from the admission queue by the batcher.
    Dequeue,
    /// Logit-cache probe finished (only stamped when a cache is
    /// configured).
    CacheProbe,
    /// Joined an assembled batch (fully-hot inline answers skip this).
    BatchAssembled,
    /// The batch's forward pass started on a worker.
    Forward,
    /// The forward returned and per-query row gathering started.
    Gather,
    /// The answer was recorded and sent.
    Reply,
}

impl Stage {
    /// Label of the interval **ending** at this mark (the span name the
    /// Chrome-trace export renders for the gap between the previous mark
    /// and this one).
    pub fn interval_label(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::Dequeue => "queue_wait",
            Stage::CacheProbe => "cache_probe",
            Stage::BatchAssembled => "batch_assembly",
            Stage::Forward => "batch_wait",
            Stage::Gather => "forward",
            Stage::Reply => "reply",
        }
    }
}

/// The per-query trace state: an id plus locally accumulated
/// `(stage, instant)` marks. Created by
/// [`crate::telemetry::Telemetry::begin_trace`] for sampled queries and
/// carried inside the request payload; no locks, no shared memory.
#[derive(Debug)]
pub struct TraceContext {
    id: u64,
    client: u64,
    seeds: u64,
    marks: Vec<(Stage, Instant)>,
}

impl TraceContext {
    pub(crate) fn new(id: u64, client: u64, seeds: u64) -> Self {
        TraceContext {
            id,
            client,
            seeds,
            marks: Vec::with_capacity(8),
        }
    }

    /// This trace's id (the Chrome-trace `tid` its spans render under).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The submitting client.
    pub fn client(&self) -> u64 {
        self.client
    }

    /// Number of seeds the query carries.
    pub fn seeds(&self) -> u64 {
        self.seeds
    }

    /// Stamps `stage` as completed now.
    pub fn mark(&mut self, stage: Stage) {
        self.mark_at(stage, Instant::now());
    }

    /// Stamps `stage` as completed at `at` (reuses an instant the caller
    /// already read — e.g. the admission entry's enqueue time — so the
    /// trace and the stage histograms agree about the same event).
    pub fn mark_at(&mut self, stage: Stage, at: Instant) {
        self.marks.push((stage, at));
    }

    /// The accumulated marks in stamp order.
    pub fn marks(&self) -> &[(Stage, Instant)] {
        &self.marks
    }
}

/// One finished span, Chrome-trace shaped: a named complete event with a
/// microsecond start (relative to the telemetry epoch) and duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (a stage interval label, or a batch-level step like
    /// `plan` / `shard_forward`).
    pub name: &'static str,
    /// Event category: `"query"` for per-query stage spans, `"batch"`
    /// for batch-level engine/router spans.
    pub cat: &'static str,
    /// Track id: the trace id for query spans, the batch id for batch
    /// spans.
    pub tid: u64,
    /// Start, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// One span-specific argument (seed count for query spans, shard
    /// index for `shard_forward` spans, 0 otherwise).
    pub arg: u64,
}

/// Bounded ring of finished spans: `capacity` slots, oldest overwritten.
///
/// Pushes are concurrent-safe and nearly disjoint: the head index is an
/// atomic fetch-add, and each slot has its own mutex, so two pushes only
/// contend when they land on the same slot (ring wrap under heavy
/// sampling). Memory is bounded at `capacity` records regardless of how
/// long the server runs.
#[derive(Debug)]
pub struct TraceRing {
    head: AtomicUsize,
    slots: Vec<Mutex<Option<SpanRecord>>>,
}

impl TraceRing {
    /// A ring with `capacity` slots (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            head: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (not clamped to capacity).
    pub fn pushed(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one span, overwriting the oldest when full.
    pub fn push(&self, record: SpanRecord) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock().expect("ring slot poisoned") = Some(record);
    }

    /// Appends a group of spans.
    pub fn push_all(&self, records: impl IntoIterator<Item = SpanRecord>) {
        for r in records {
            self.push(r);
        }
    }

    /// Copies the resident window, sorted by start time.
    pub fn collect(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("ring slot poisoned").clone())
            .collect();
        out.sort_by_key(|r| (r.start_us, r.tid));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(tid: u64, start_us: u64) -> SpanRecord {
        SpanRecord {
            name: "queue_wait",
            cat: "query",
            tid,
            start_us,
            dur_us: 5,
            arg: 0,
        }
    }

    #[test]
    fn ring_bounds_memory_and_keeps_newest() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(span(i, i));
        }
        assert_eq!(ring.pushed(), 10);
        let window = ring.collect();
        assert_eq!(window.len(), 4);
        // The resident window is the newest 4 pushes.
        let tids: Vec<u64> = window.iter().map(|r| r.tid).collect();
        assert_eq!(tids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn collect_sorts_by_start() {
        let ring = TraceRing::new(8);
        ring.push(span(1, 30));
        ring.push(span(2, 10));
        ring.push(span(3, 20));
        let starts: Vec<u64> = ring.collect().iter().map(|r| r.start_us).collect();
        assert_eq!(starts, vec![10, 20, 30]);
    }

    #[test]
    fn trace_context_accumulates_marks_in_order() {
        let mut ctx = TraceContext::new(7, 3, 2);
        let t0 = Instant::now();
        ctx.mark_at(Stage::Enqueue, t0);
        ctx.mark_at(Stage::Dequeue, t0 + Duration::from_micros(10));
        ctx.mark(Stage::Reply);
        assert_eq!(ctx.id(), 7);
        assert_eq!(ctx.client(), 3);
        assert_eq!(ctx.seeds(), 2);
        let stages: Vec<Stage> = ctx.marks().iter().map(|&(s, _)| s).collect();
        assert_eq!(stages, vec![Stage::Enqueue, Stage::Dequeue, Stage::Reply]);
    }

    #[test]
    fn concurrent_pushes_never_lose_the_ring() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.push(span(t, i));
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 400);
        assert_eq!(ring.collect().len(), 64);
    }
}
