//! Readiness and live-state introspection: the `/healthz` and
//! `/debug/state` payloads.
//!
//! A [`HealthReport`] is a list of named pass/fail checks (engine bound,
//! queue below derived capacity, shutdown barrier not tripped, no SLO
//! breach); the endpoint maps it to `200 ok` / `503 degraded` so load
//! balancers and `serve_bench` can poll one boolean while operators read
//! the per-check detail. The [`JsonObj`] builder keeps the hand-rolled
//! JSON in `/debug/state` (and the health body) structurally valid
//! without a serialization dependency.

use std::fmt::Write as _;

use super::export::escape_json_str;

/// One named readiness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCheck {
    /// Check name (e.g. `engine_bound`, `queue_capacity`, `slo`).
    pub name: &'static str,
    /// Whether the check passes.
    pub ok: bool,
    /// Human-readable detail (current values, thresholds).
    pub detail: String,
}

impl HealthCheck {
    /// A check result.
    pub fn new(name: &'static str, ok: bool, detail: impl Into<String>) -> Self {
        HealthCheck {
            name,
            ok,
            detail: detail.into(),
        }
    }
}

/// The readiness surface behind `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// The individual checks, in evaluation order.
    pub checks: Vec<HealthCheck>,
}

impl HealthReport {
    /// A report over `checks`.
    pub fn new(checks: Vec<HealthCheck>) -> Self {
        HealthReport { checks }
    }

    /// Ready iff every check passes.
    pub fn ready(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The JSON body: `{"status": "ok"|"degraded", "checks": [...]}`.
    pub fn render_json(&self) -> String {
        let mut checks = String::new();
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                checks.push(',');
            }
            let _ = write!(
                checks,
                "{{\"name\":\"{}\",\"ok\":{},\"detail\":\"{}\"}}",
                c.name,
                c.ok,
                escape_json_str(&c.detail)
            );
        }
        format!(
            "{{\"status\":\"{}\",\"checks\":[{}]}}",
            if self.ready() { "ok" } else { "degraded" },
            checks
        )
    }
}

/// A minimal JSON object builder for the hand-rolled introspection
/// payloads (no serialization crates in this build). Values are written
/// in insertion order; keys are escaped.
#[derive(Debug, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    fn push(&mut self, key: &str, rendered: String) -> &mut Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a numeric field (any integer or float display form that is
    /// valid JSON).
    pub fn num(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// Adds a float field, mapping non-finite values to 0.
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() { value } else { 0.0 };
        self.push(key, format!("{v}"))
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push(key, format!("\"{}\"", escape_json_str(value)))
    }

    /// Adds a raw field — `value` must already be valid JSON (a nested
    /// object, array, or pre-rendered number).
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.push(key, value.into())
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let inner: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json_str(k), v))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// Renders a JSON array from already-rendered element strings.
pub fn json_array(elems: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = elems.into_iter().collect();
    format!("[{}]", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ready_iff_all_checks_pass() {
        let ok = HealthReport::new(vec![
            HealthCheck::new("engine_bound", true, "generation 3"),
            HealthCheck::new("queue_capacity", true, "depth 1 < cap 64"),
        ]);
        assert!(ok.ready());
        assert!(ok.render_json().contains("\"status\":\"ok\""));
        let degraded = HealthReport::new(vec![
            HealthCheck::new("engine_bound", true, ""),
            HealthCheck::new("slo", false, "latency breached"),
        ]);
        assert!(!degraded.ready());
        let body = degraded.render_json();
        assert!(body.contains("\"status\":\"degraded\""));
        assert!(body.contains("\"name\":\"slo\",\"ok\":false"));
    }

    #[test]
    fn json_obj_renders_escaped_fields() {
        let mut obj = JsonObj::new();
        obj.num("depth", 3)
            .bool("ready", true)
            .str("policy", "deadline \"shed\"")
            .float("burn", f64::NAN)
            .raw("nested", "{\"a\":1}");
        let out = obj.render();
        assert_eq!(
            out,
            "{\"depth\":3,\"ready\":true,\"policy\":\"deadline \\\"shed\\\"\",\"burn\":0,\"nested\":{\"a\":1}}"
        );
        assert_eq!(json_array(["1".to_string(), "2".to_string()]), "[1,2]");
    }
}
