//! The metrics registry: named counter/gauge/histogram families with
//! label sets, behind cheap cloneable handles.
//!
//! The registry is the rendezvous between producers (server, engines,
//! router) and exporters (Prometheus text, JSON dump): producers hold
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles obtained once by
//! `(name, labels)` key, exporters take a [`RegistrySnapshot`] and render
//! every family. Handles are `Arc`-backed, so recording never touches the
//! registry's own maps — the per-call cost is one atomic add (counters,
//! gauges) or one short mutex-guarded histogram record.

use crate::metrics::LatencyHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A metric's identity: family name plus its sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

fn key(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
    let mut labels: Vec<(&'static str, String)> =
        labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
    labels.sort_unstable();
    Key { name, labels }
}

/// A monotonically increasing counter handle (one atomic add per
/// record; cloning shares the underlying cell).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle (one atomic store per record; cloning
/// shares the underlying cell).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency-histogram handle over [`LatencyHistogram`] (one short
/// mutex-guarded record per observation; cloning shares the histogram).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<LatencyHistogram>>);

impl Histogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        self.0.lock().expect("histogram poisoned").record(us);
    }

    /// Records a batch of observations under one lock acquisition (the
    /// server's per-batch stage recording path).
    pub fn record_all(&self, us: impl IntoIterator<Item = u64>) {
        let mut h = self.0.lock().expect("histogram poisoned");
        for v in us {
            h.record(v);
        }
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

/// One exported sample: family name, label pairs (sorted by label name)
/// and the value at snapshot time.
#[derive(Debug, Clone)]
pub struct MetricSample<T> {
    /// Metric family name (e.g. `maxk_serve_kernel_time_us_total`).
    pub name: &'static str,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(&'static str, String)>,
    /// The sampled value.
    pub value: T,
}

/// Point-in-time copy of every registered metric, sorted by
/// `(name, labels)` so exports are deterministic.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter samples.
    pub counters: Vec<MetricSample<u64>>,
    /// Gauge samples.
    pub gauges: Vec<MetricSample<u64>>,
    /// Histogram samples (full bucket state, not just summaries).
    pub histograms: Vec<MetricSample<LatencyHistogram>>,
    /// Help text per family name.
    pub help: BTreeMap<&'static str, &'static str>,
}

/// The registry itself: get-or-create maps from `(name, labels)` to the
/// shared cells behind the handles.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Mutex<LatencyHistogram>>>>,
    help: Mutex<BTreeMap<&'static str, &'static str>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn note_help(&self, name: &'static str, help: &'static str) {
        self.help
            .lock()
            .expect("help poisoned")
            .entry(name)
            .or_insert(help);
    }

    /// The counter for `(name, labels)`, created on first use.
    pub fn counter(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> Counter {
        self.note_help(name, help);
        let cell = Arc::clone(
            self.counters
                .lock()
                .expect("counters poisoned")
                .entry(key(name, labels))
                .or_default(),
        );
        Counter(cell)
    }

    /// The gauge for `(name, labels)`, created on first use.
    pub fn gauge(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> Gauge {
        self.note_help(name, help);
        let cell = Arc::clone(
            self.gauges
                .lock()
                .expect("gauges poisoned")
                .entry(key(name, labels))
                .or_default(),
        );
        Gauge(cell)
    }

    /// The histogram for `(name, labels)`, created on first use.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> Histogram {
        self.note_help(name, help);
        let cell = Arc::clone(
            self.histograms
                .lock()
                .expect("histograms poisoned")
                .entry(key(name, labels))
                .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new()))),
        );
        Histogram(cell)
    }

    /// Copies every registered metric (sorted by name then labels).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counters poisoned")
            .iter()
            .map(|(k, v)| MetricSample {
                name: k.name,
                labels: k.labels.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauges poisoned")
            .iter()
            .map(|(k, v)| MetricSample {
                name: k.name,
                labels: k.labels.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histograms poisoned")
            .iter()
            .map(|(k, v)| MetricSample {
                name: k.name,
                labels: k.labels.clone(),
                value: v.lock().expect("histogram poisoned").clone(),
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            help: self.help.lock().expect("help poisoned").clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_by_key() {
        let reg = Registry::new();
        let a = reg.counter("c_total", &[("shard", "0")], "help");
        let b = reg.counter("c_total", &[("shard", "0")], "help");
        let other = reg.counter("c_total", &[("shard", "1")], "help");
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(snap.counters[1].value, 1);
        assert_eq!(snap.help.get("c_total"), Some(&"help"));
    }

    #[test]
    fn gauge_holds_last_value() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[], "queue depth");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", &[("stage", "queue_wait")], "stage wait");
        h.record(10);
        h.record_all([20, 30]);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum_us(), 60);
        let reg_snap = reg.snapshot();
        assert_eq!(reg_snap.histograms.len(), 1);
        assert_eq!(reg_snap.histograms[0].value.count(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("b_total", &[], "b").inc();
        reg.counter("a_total", &[("x", "2")], "a").inc();
        reg.counter("a_total", &[("x", "1")], "a").inc();
        let names: Vec<(&str, Vec<(&str, String)>)> = reg
            .snapshot()
            .counters
            .into_iter()
            .map(|s| (s.name, s.labels))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a_total", vec![("x", "1".to_string())]),
                ("a_total", vec![("x", "2".to_string())]),
                ("b_total", vec![]),
            ]
        );
    }
}
