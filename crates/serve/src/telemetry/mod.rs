//! End-to-end serving telemetry: per-query stage traces, the metrics
//! registry, per-layer kernel timing, and the exporters.
//!
//! [`Telemetry`] is the one shared observability object a [`crate::Server`]
//! owns (when [`TelemetryConfig::enabled`]); every serving layer feeds it:
//!
//! * the admission/batcher/worker path records the **stage split** of
//!   every answered query — queue-wait (admission enqueue → batcher pop),
//!   batch-wait (pop → forward start) and service (forward start →
//!   reply) — into registry histograms; the three stage durations and the
//!   end-to-end latency are derived from the *same* four timestamps, so
//!   `queue + batch + service` reconstructs the end-to-end latency up to
//!   microsecond truncation (≤ 3µs of slop);
//! * a **sampled subset** of queries additionally carries a
//!   [`TraceContext`] whose stage marks become [`SpanRecord`]s in the
//!   bounded [`TraceRing`] at reply time (plus batch-level plan/forward/
//!   shard spans), exportable as Chrome `trace_event` JSON;
//! * the engines record **per-layer kernel timing** (dense-linear vs
//!   SpMM vs SSpMM vs MaxK vs gather, full vs partial path) and the
//!   sharded router its **per-shard** forward time, as registry counters.
//!
//! Overhead model: stage recording costs four integer durations and one
//! short lock per histogram *per batch* (amortized over the batch's
//! queries); tracing costs nothing for unsampled queries (the sampler is
//! one relaxed atomic increment) and a handful of ring writes at reply
//! for sampled ones; kernel timing is per *batch*, two `Instant` reads
//! per kernel call. `serve_bench --telemetry-sweep` measures the total
//! against `--telemetry-off`.

pub mod export;
pub mod health;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod trace;

pub use export::{
    chrome_trace_json, serve_scrape, HistSample, MetricsExporter, Sample, ScrapeSource,
};
pub use health::{HealthCheck, HealthReport};
pub use recorder::{EventKind, FlightEvent, FlightRecorder, IncidentReport, RecorderConfig};
pub use registry::{Counter, Gauge, Histogram, MetricSample, Registry, RegistrySnapshot};
pub use slo::{
    AnswerObs, SloConfig, SloEvent, SloHub, SloKind, SloSpec, SloSpecSet, SloState, SloStatus,
    SloTracker,
};
pub use trace::{SpanRecord, Stage, TraceContext, TraceRing};

use maxk_nn::plan::KernelKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Telemetry knobs, carried inside [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch. When `false` the server allocates no telemetry
    /// state at all — the zero-overhead baseline `serve_bench
    /// --telemetry-off` measures against.
    pub enabled: bool,
    /// Fraction of queries that carry a full [`TraceContext`] (span
    /// recording). `0.0` disables tracing, `1.0` traces everything;
    /// intermediate rates trace every ⌈1/rate⌉-th query. Stage
    /// histograms and kernel counters are **not** sampled — they cover
    /// every answered query/batch whenever telemetry is enabled.
    pub sampling: f64,
    /// Span-ring capacity (bounded memory for the trace window).
    pub ring_capacity: usize,
    /// Per-layer kernel timing in the engines (per batch, not per
    /// query).
    pub kernel_timing: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            sampling: 0.0,
            ring_capacity: 4096,
            kernel_timing: true,
        }
    }
}

impl TelemetryConfig {
    /// A disabled configuration (the `--telemetry-off` baseline).
    pub fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        }
    }
}

/// The per-query stage wait/service histograms, as one read-out.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Admission enqueue → batcher pop, per answered query.
    pub queue_wait: crate::metrics::LatencySummary,
    /// Batcher pop → forward start (window wait + batch-channel
    /// handoff; 0 for inline cache answers), per answered query.
    pub batch_wait: crate::metrics::LatencySummary,
    /// Forward start → reply recorded (forward + gather + reply
    /// assembly; cache-row assembly for inline answers), per answered
    /// query.
    pub service: crate::metrics::LatencySummary,
    /// Enqueue → reply, recorded from the same timestamps the three
    /// stages split (so its count matches theirs exactly).
    pub e2e: crate::metrics::LatencySummary,
}

/// The shared telemetry hub: sampler, registry, stage histograms and the
/// span ring. One per server, `Arc`-shared with every thread that
/// records into it.
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    epoch: Instant,
    registry: Registry,
    ring: TraceRing,
    /// Trace every `sample_every`-th query; 0 disables tracing.
    sample_every: u64,
    sample_ctr: AtomicU64,
    /// Trace-sampling boost deadline (µs on the telemetry clock): while
    /// `now < boost_until`, every query traces regardless of the
    /// configured rate. 0 means no boost. Set by the flight recorder on
    /// an incident trigger.
    boost_until_us: AtomicU64,
    next_trace_id: AtomicU64,
    next_batch_id: AtomicU64,
    stage_queue: Histogram,
    stage_batch: Histogram,
    stage_service: Histogram,
    stage_e2e: Histogram,
}

const STAGE_HIST: &str = "maxk_serve_stage_latency_us";
const STAGE_HELP: &str =
    "Per-stage latency split of answered queries (queue_wait + batch_wait + service == e2e \
     up to microsecond truncation)";

impl Telemetry {
    /// Builds the hub for `cfg` (callers gate on `cfg.enabled`
    /// themselves — a disabled config still builds a working, unused
    /// hub).
    pub fn new(cfg: TelemetryConfig) -> Self {
        let registry = Registry::new();
        let stage = |stage: &str| registry.histogram(STAGE_HIST, &[("stage", stage)], STAGE_HELP);
        let stage_queue = stage("queue_wait");
        let stage_batch = stage("batch_wait");
        let stage_service = stage("service");
        let stage_e2e = stage("e2e");
        let sample_every = if cfg.sampling <= 0.0 {
            0
        } else {
            (1.0 / cfg.sampling.min(1.0)).round().max(1.0) as u64
        };
        Telemetry {
            cfg,
            epoch: Instant::now(),
            ring: TraceRing::new(cfg.ring_capacity),
            sample_every,
            sample_ctr: AtomicU64::new(0),
            boost_until_us: AtomicU64::new(0),
            next_trace_id: AtomicU64::new(1),
            next_batch_id: AtomicU64::new(1),
            registry,
            stage_queue,
            stage_batch,
            stage_service,
            stage_e2e,
        }
    }

    /// The configuration this hub was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// The metrics registry (engines and the router record kernel and
    /// shard counters here; exporters snapshot it).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Microseconds since the telemetry epoch for `at` (span
    /// timestamps).
    pub fn us_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Microseconds since the telemetry epoch, now. The flight recorder
    /// and SLO engine share this clock so incident events and spans line
    /// up on one timebase.
    pub fn now_us(&self) -> u64 {
        self.us_since_epoch(Instant::now())
    }

    /// Boosts trace sampling to 100% until `until_us` on the telemetry
    /// clock (monotone: never shrinks an already-later deadline). The
    /// flight recorder calls this on an incident trigger so the
    /// post-trigger window is fully traced.
    pub fn boost_sampling_until(&self, until_us: u64) {
        self.boost_until_us.fetch_max(until_us, Ordering::Relaxed);
    }

    fn boosted(&self) -> bool {
        let until = self.boost_until_us.load(Ordering::Relaxed);
        until != 0 && self.now_us() < until
    }

    /// True when span recording is on at any rate (batch-level spans are
    /// recorded per batch whenever it is), including during an incident
    /// boost window.
    pub fn spans_enabled(&self) -> bool {
        self.sample_every > 0 || self.boosted()
    }

    /// Sampler: hands out a [`TraceContext`] for every
    /// ⌈1/sampling⌉-th query, `None` otherwise. The unsampled path costs
    /// one relaxed atomic increment (plus one load for the boost
    /// deadline); during an incident boost window every query traces.
    pub fn begin_trace(&self, client: u64, seeds: usize) -> Option<Box<TraceContext>> {
        if self.sample_every == 0 {
            if !self.boosted() {
                return None;
            }
        } else {
            let n = self.sample_ctr.fetch_add(1, Ordering::Relaxed);
            if n % self.sample_every != 0 && !self.boosted() {
                return None;
            }
        }
        let id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        Some(Box::new(TraceContext::new(id, client, seeds as u64)))
    }

    /// Allocates a batch id for batch-level spans.
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Folds a finished trace into spans: one span per consecutive mark
    /// interval (named by the later mark's
    /// [`Stage::interval_label`]) plus one whole-query `"query"` span,
    /// all pushed into the ring.
    pub fn finish_trace(&self, ctx: &TraceContext) {
        let marks = ctx.marks();
        if marks.len() < 2 {
            return;
        }
        for pair in marks.windows(2) {
            let (_, prev_at) = pair[0];
            let (stage, at) = pair[1];
            self.ring.push(SpanRecord {
                name: stage.interval_label(),
                cat: "query",
                tid: ctx.id(),
                start_us: self.us_since_epoch(prev_at),
                dur_us: at.saturating_duration_since(prev_at).as_micros() as u64,
                arg: ctx.seeds(),
            });
        }
        let (_, first) = marks[0];
        let (_, last) = marks[marks.len() - 1];
        self.ring.push(SpanRecord {
            name: "query",
            cat: "query",
            tid: ctx.id(),
            start_us: self.us_since_epoch(first),
            dur_us: last.saturating_duration_since(first).as_micros() as u64,
            arg: ctx.client(),
        });
    }

    /// Pushes one batch-level span (plan / forward / shard_forward /
    /// gather) into the ring.
    pub fn push_span(
        &self,
        name: &'static str,
        batch_id: u64,
        start: Instant,
        dur: Duration,
        arg: u64,
    ) {
        self.ring.push(SpanRecord {
            name,
            cat: "batch",
            tid: batch_id,
            start_us: self.us_since_epoch(start),
            dur_us: dur.as_micros() as u64,
            arg,
        });
    }

    /// Records one answered query's stage split, `(queue_wait,
    /// batch_wait, service, e2e)` in microseconds. Use
    /// [`Telemetry::record_stage_rows`] to amortize the histogram locks
    /// over a batch.
    pub fn record_stages(&self, queue_us: u64, batch_us: u64, service_us: u64, e2e_us: u64) {
        self.record_stage_rows(&[[queue_us, batch_us, service_us, e2e_us]]);
    }

    /// Batch variant of [`Telemetry::record_stages`]: one lock per
    /// histogram for the whole batch.
    pub fn record_stage_rows(&self, rows: &[[u64; 4]]) {
        if rows.is_empty() {
            return;
        }
        self.stage_queue.record_all(rows.iter().map(|r| r[0]));
        self.stage_batch.record_all(rows.iter().map(|r| r[1]));
        self.stage_service.record_all(rows.iter().map(|r| r[2]));
        self.stage_e2e.record_all(rows.iter().map(|r| r[3]));
    }

    /// The stage histograms as one read-out (also surfaced through
    /// [`crate::StatsSnapshot::stages`]).
    pub fn stage_breakdown(&self) -> StageBreakdown {
        use crate::metrics::LatencySummary;
        StageBreakdown {
            queue_wait: LatencySummary::of(&self.stage_queue.snapshot()),
            batch_wait: LatencySummary::of(&self.stage_batch.snapshot()),
            service: LatencySummary::of(&self.stage_service.snapshot()),
            e2e: LatencySummary::of(&self.stage_e2e.snapshot()),
        }
    }

    /// Records one forward pass's wall time on `path` (`"full"` /
    /// `"partial"`).
    pub fn record_forward(&self, path: &'static str, dur: Duration) {
        self.registry
            .counter(
                "maxk_serve_forward_time_us_total",
                &[("path", path)],
                "Cumulative engine forward wall time by plan path",
            )
            .add(dur.as_micros() as u64);
        self.registry
            .counter(
                "maxk_serve_forwards_total",
                &[("path", path)],
                "Forward passes by plan path",
            )
            .inc();
    }

    /// Records a forward's per-layer kernel laps on `path` into the
    /// `maxk_serve_kernel_time_us_total{path,layer,kernel}` counters.
    pub fn record_kernel_laps(&self, path: &'static str, laps: &[(usize, KernelKind, Duration)]) {
        for &(layer, kernel, dur) in laps {
            self.registry
                .counter(
                    "maxk_serve_kernel_time_us_total",
                    &[
                        ("path", path),
                        ("layer", &layer.to_string()),
                        ("kernel", kernel.label()),
                    ],
                    "Cumulative per-layer kernel wall time by plan path",
                )
                .add(dur.as_micros() as u64);
        }
    }

    /// Records planning (full-vs-partial cost model) wall time.
    pub fn record_plan(&self, dur: Duration) {
        self.registry
            .counter(
                "maxk_serve_plan_time_us_total",
                &[],
                "Cumulative batch plan-selection wall time",
            )
            .add(dur.as_micros() as u64);
    }

    /// Records one shard's forward wall time within a sharded batch.
    pub fn record_shard_forward(&self, shard: usize, dur: Duration, partial: bool) {
        let shard_label = shard.to_string();
        self.registry
            .counter(
                "maxk_serve_shard_forward_time_us_total",
                &[("shard", &shard_label)],
                "Cumulative per-shard forward wall time",
            )
            .add(dur.as_micros() as u64);
        self.registry
            .counter(
                "maxk_serve_shard_forwards_total",
                &[
                    ("shard", &shard_label),
                    ("path", if partial { "partial" } else { "full" }),
                ],
                "Per-shard forward passes by plan path",
            )
            .inc();
    }

    /// The resident span window, sorted by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.collect()
    }

    /// The resident span window as Chrome `trace_event` JSON.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.spans())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rate_maps_to_stride() {
        assert_eq!(Telemetry::new(TelemetryConfig::default()).sample_every, 0);
        let full = Telemetry::new(TelemetryConfig {
            sampling: 1.0,
            ..TelemetryConfig::default()
        });
        assert_eq!(full.sample_every, 1);
        let percent = Telemetry::new(TelemetryConfig {
            sampling: 0.01,
            ..TelemetryConfig::default()
        });
        assert_eq!(percent.sample_every, 100);
    }

    #[test]
    fn sampler_hands_out_every_nth_trace() {
        let t = Telemetry::new(TelemetryConfig {
            sampling: 0.25,
            ..TelemetryConfig::default()
        });
        let sampled = (0..100).filter(|_| t.begin_trace(0, 1).is_some()).count();
        assert_eq!(sampled, 25);
        let off = Telemetry::new(TelemetryConfig::default());
        assert!(off.begin_trace(0, 1).is_none());
        assert!(!off.spans_enabled());
    }

    #[test]
    fn finished_trace_produces_interval_spans() {
        let t = Telemetry::new(TelemetryConfig {
            sampling: 1.0,
            ..TelemetryConfig::default()
        });
        let mut ctx = t.begin_trace(9, 3).expect("sampling 1.0 traces everything");
        let t0 = Instant::now();
        ctx.mark_at(Stage::Enqueue, t0);
        ctx.mark_at(Stage::Dequeue, t0 + Duration::from_micros(50));
        ctx.mark_at(Stage::Forward, t0 + Duration::from_micros(80));
        ctx.mark_at(Stage::Reply, t0 + Duration::from_micros(100));
        t.finish_trace(&ctx);
        let spans = t.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"queue_wait"));
        assert!(names.contains(&"batch_wait"));
        assert!(names.contains(&"reply"));
        assert!(names.contains(&"query"));
        let q = spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(q.dur_us, 50);
        assert_eq!(q.tid, ctx.id());
        let whole = spans.iter().find(|s| s.name == "query").unwrap();
        assert_eq!(whole.dur_us, 100);
    }

    #[test]
    fn stage_rows_land_in_all_four_histograms() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record_stage_rows(&[[10, 5, 85, 100], [0, 0, 7, 7]]);
        let b = t.stage_breakdown();
        assert_eq!(b.queue_wait.count, 2);
        assert_eq!(b.batch_wait.count, 2);
        assert_eq!(b.service.count, 2);
        assert_eq!(b.e2e.count, 2);
        assert_eq!(b.e2e.max_us, 100);
    }

    #[test]
    fn kernel_and_shard_counters_register() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record_forward("partial", Duration::from_micros(120));
        t.record_kernel_laps(
            "partial",
            &[
                (0, KernelKind::DenseLinear, Duration::from_micros(60)),
                (0, KernelKind::SSpMM, Duration::from_micros(40)),
            ],
        );
        t.record_shard_forward(1, Duration::from_micros(70), true);
        let snap = t.registry().snapshot();
        let get = |name: &str, label: (&str, &str)| {
            snap.counters
                .iter()
                .find(|s| {
                    s.name == name && s.labels.iter().any(|(k, v)| *k == label.0 && v == label.1)
                })
                .map(|s| s.value)
        };
        assert_eq!(
            get("maxk_serve_forward_time_us_total", ("path", "partial")),
            Some(120)
        );
        assert_eq!(
            get("maxk_serve_kernel_time_us_total", ("kernel", "sspmm")),
            Some(40)
        );
        assert_eq!(
            get("maxk_serve_shard_forward_time_us_total", ("shard", "1")),
            Some(70)
        );
    }
}
