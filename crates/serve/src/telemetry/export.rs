//! Exporters: Prometheus text exposition, a JSON metrics dump, the
//! Chrome-trace (`trace_event`) span dump, and the TCP scrape endpoint.
//!
//! Everything here is hand-rolled over `std` (the build vendors no HTTP
//! or serialization crates): the scrape endpoint is a minimal HTTP/1.1
//! responder on a [`std::net::TcpListener`], the Prometheus text follows
//! the [exposition format] (`# HELP`/`# TYPE`, cumulative `le` buckets,
//! `_sum`/`_count`), and the trace dump is the `traceEvents` JSON that
//! `chrome://tracing` / Perfetto load directly.
//!
//! [exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use super::health::HealthReport;
use super::registry::RegistrySnapshot;
use super::trace::SpanRecord;
use crate::metrics::LatencyHistogram;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a JSON string value.
fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Crate-internal alias for [`escape_json`] (the recorder and health
/// modules hand-roll JSON too).
pub(crate) fn escape_json_str(v: &str) -> String {
    escape_json(v)
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn label_block(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// One plain sample for the Prometheus/JSON renderers: stats-derived
/// series (the [`crate::StatsSnapshot`] books) are folded into the same
/// shape as registry samples so both exporters treat them uniformly.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Family name.
    pub name: &'static str,
    /// Label pairs.
    pub labels: Vec<(&'static str, String)>,
    /// Sampled value (counters and gauges both render as numbers).
    pub value: f64,
    /// Family help text.
    pub help: &'static str,
    /// `true` renders `# TYPE … counter`, `false` renders a gauge.
    pub counter: bool,
}

impl Sample {
    /// An unlabeled counter sample.
    pub fn counter(name: &'static str, value: u64, help: &'static str) -> Self {
        Sample {
            name,
            labels: Vec::new(),
            value: value as f64,
            help,
            counter: true,
        }
    }

    /// An unlabeled gauge sample.
    pub fn gauge(name: &'static str, value: f64, help: &'static str) -> Self {
        Sample {
            name,
            labels: Vec::new(),
            value,
            help,
            counter: false,
        }
    }

    /// Attaches one label pair.
    #[must_use]
    pub fn with_label(mut self, key: &'static str, value: impl ToString) -> Self {
        self.labels.push((key, value.to_string()));
        self
    }
}

/// A named histogram for the renderers.
#[derive(Debug, Clone)]
pub struct HistSample {
    /// Family name.
    pub name: &'static str,
    /// Label pairs.
    pub labels: Vec<(&'static str, String)>,
    /// The distribution.
    pub hist: LatencyHistogram,
    /// Family help text.
    pub help: &'static str,
}

/// Renders the Prometheus text exposition for plain samples, histograms
/// and an optional registry snapshot. `# HELP`/`# TYPE` headers are
/// emitted once per family, in first-appearance order.
pub fn render_prometheus(
    samples: &[Sample],
    hists: &[HistSample],
    registry: Option<&RegistrySnapshot>,
) -> String {
    let mut out = String::new();
    let mut seen: Vec<&'static str> = Vec::new();
    let mut header = |out: &mut String, name: &'static str, help: &str, kind: &str| {
        if !seen.contains(&name) {
            seen.push(name);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
    };
    for s in samples {
        header(
            &mut out,
            s.name,
            s.help,
            if s.counter { "counter" } else { "gauge" },
        );
        let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels), num(s.value));
    }
    if let Some(reg) = registry {
        for s in &reg.counters {
            let help = reg.help.get(s.name).copied().unwrap_or("");
            header(&mut out, s.name, help, "counter");
            let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels), s.value);
        }
        for s in &reg.gauges {
            let help = reg.help.get(s.name).copied().unwrap_or("");
            header(&mut out, s.name, help, "gauge");
            let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels), s.value);
        }
    }
    let mut all_hists: Vec<HistSample> = hists.to_vec();
    if let Some(reg) = registry {
        for s in &reg.histograms {
            all_hists.push(HistSample {
                name: s.name,
                labels: s.labels.clone(),
                hist: s.value.clone(),
                help: reg.help.get(s.name).copied().unwrap_or(""),
            });
        }
    }
    for h in &all_hists {
        header(&mut out, h.name, h.help, "histogram");
        render_histogram(&mut out, h);
    }
    out
}

fn num(v: f64) -> String {
    let v = finite(v);
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders one histogram family entry: cumulative `le` buckets at the
/// log₂ bucket upper bounds (`1, 3, 7, …, 2^(b+1)-1`), up to the last
/// occupied bucket, then `+Inf`, `_sum` and `_count`.
fn render_histogram(out: &mut String, h: &HistSample) {
    let counts = h.hist.bucket_counts();
    let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0).min(62);
    let labels = &h.labels;
    let mut cumulative = 0u64;
    for (b, &c) in counts.iter().enumerate().take(last + 1) {
        cumulative += c;
        let le: u64 = if b == 0 { 1 } else { (1u64 << (b + 1)) - 1 };
        let mut with_le = labels.clone();
        with_le.push(("le", le.to_string()));
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            h.name,
            label_block(&with_le),
            cumulative
        );
    }
    let mut with_inf = labels.clone();
    with_inf.push(("le", "+Inf".to_string()));
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        h.name,
        label_block(&with_inf),
        h.hist.count()
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        h.name,
        label_block(labels),
        h.hist.sum_us()
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        h.name,
        label_block(labels),
        h.hist.count()
    );
}

fn json_labels(labels: &[(&'static str, String)]) -> String {
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn json_hist(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"sum_us\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        h.count(),
        h.sum_us(),
        finite(h.mean_us()),
        finite(h.p50()),
        finite(h.p95()),
        finite(h.p99()),
        h.max_us()
    )
}

/// Renders the same metric set as [`render_prometheus`] as one JSON
/// object: `{"metrics": [...], "histograms": [...]}` with each sample's
/// name, labels and value.
pub fn render_metrics_json(
    samples: &[Sample],
    hists: &[HistSample],
    registry: Option<&RegistrySnapshot>,
) -> String {
    let mut metrics: Vec<String> = Vec::new();
    for s in samples {
        metrics.push(format!(
            "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(s.name),
            json_labels(&s.labels),
            num(s.value)
        ));
    }
    if let Some(reg) = registry {
        for s in &reg.counters {
            metrics.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                escape_json(s.name),
                json_labels(&s.labels),
                s.value
            ));
        }
        for s in &reg.gauges {
            metrics.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                escape_json(s.name),
                json_labels(&s.labels),
                s.value
            ));
        }
    }
    let mut hist_objs: Vec<String> = Vec::new();
    for h in hists {
        hist_objs.push(format!(
            "{{\"name\":\"{}\",\"labels\":{},\"summary\":{}}}",
            escape_json(h.name),
            json_labels(&h.labels),
            json_hist(&h.hist)
        ));
    }
    if let Some(reg) = registry {
        for s in &reg.histograms {
            hist_objs.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"summary\":{}}}",
                escape_json(s.name),
                json_labels(&s.labels),
                json_hist(&s.value)
            ));
        }
    }
    format!(
        "{{\"metrics\":[{}],\"histograms\":[{}]}}",
        metrics.join(","),
        hist_objs.join(",")
    )
}

/// Serializes spans as Chrome `trace_event` JSON (the object form with a
/// `traceEvents` array of complete `"ph":"X"` events) — loadable in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len());
    for s in spans {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"v\":{}}}}}",
            escape_json(s.name),
            escape_json(s.cat),
            s.start_us,
            s.dur_us,
            s.tid,
            s.arg
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

/// What the scrape endpoint serves: implemented by the server's stats
/// source (a cloneable bundle of the live counter/histogram handles).
/// `Sync` because one source answers concurrent scrapes from multiple
/// connection threads.
pub trait ScrapeSource: Send + Sync + 'static {
    /// The Prometheus text exposition body (`GET /metrics`).
    fn prometheus(&self) -> String;
    /// The JSON metrics dump body (`GET /metrics.json`).
    fn metrics_json(&self) -> String;
    /// The readiness report behind `GET /healthz` (`200` when ready,
    /// `503` when degraded). Defaults to an empty — always ready —
    /// report for sources without health wiring.
    fn healthz(&self) -> HealthReport {
        HealthReport::default()
    }
    /// The live-state dump behind `GET /debug/state` (admission, cache,
    /// shards, epoch, SLO). Defaults to an empty object.
    fn debug_state(&self) -> String {
        "{}".to_string()
    }
}

/// A running scrape endpoint: one listener thread answering
/// `GET /metrics` (Prometheus text) and `GET /metrics.json` (JSON dump).
/// Dropping it (or [`MetricsExporter::shutdown`]) stops the listener.
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// The bound address (pass port 0 to let the OS pick one).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Concurrent scrape connections answered on their own threads; excess
/// connections are answered serially on the listener thread (bounded by
/// the head-read deadline), so a scrape storm degrades to serial
/// service instead of unbounded thread growth.
const MAX_SCRAPE_THREADS: usize = 32;

/// Overall deadline for reading one request head: a client that
/// trickles bytes (or sends nothing) is cut off here, so it can never
/// pin a scrape thread past this bound.
const SCRAPE_HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// Binds `addr` and serves scrapes from `source` on a background
/// listener thread, with a bounded number of concurrent
/// per-connection threads.
///
/// # Errors
///
/// Propagates the bind/configure I/O errors.
pub fn serve_scrape<S: ScrapeSource>(
    source: S,
    addr: impl ToSocketAddrs,
) -> io::Result<MetricsExporter> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let source: Arc<S> = Arc::new(source);
    let handle = std::thread::spawn(move || {
        let active = Arc::new(AtomicUsize::new(0));
        while !stop_flag.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // A malformed or hung client only loses its own
                    // scrape; the endpoint keeps serving.
                    if active.load(Ordering::Relaxed) < MAX_SCRAPE_THREADS {
                        active.fetch_add(1, Ordering::Relaxed);
                        let src = Arc::clone(&source);
                        let worker_active = Arc::clone(&active);
                        let spawned = std::thread::Builder::new()
                            .name("maxk-scrape".to_string())
                            .spawn(move || {
                                let _ = answer_scrape(stream, &*src);
                                worker_active.fetch_sub(1, Ordering::Relaxed);
                            });
                        if let Err(_e) = spawned {
                            active.fetch_sub(1, Ordering::Relaxed);
                            // Thread spawn failed (resource pressure):
                            // the stream was moved into the closure and
                            // dropped with it; the client sees a reset
                            // and retries.
                        }
                    } else {
                        let _ = answer_scrape(stream, &*source);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });
    Ok(MetricsExporter {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Reads one HTTP request head (under [`SCRAPE_HEAD_DEADLINE`]) and
/// writes the matching response.
fn answer_scrape<S: ScrapeSource + ?Sized>(mut stream: TcpStream, source: &S) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_millis(1000)))?;
    let started = Instant::now();
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    // Read until the end of the request head (or a sane cap), giving up
    // entirely at the overall deadline.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 16 * 1024 {
        if started.elapsed() >= SCRAPE_HEAD_DEADLINE {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request head deadline exceeded",
            ));
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            // Per-read timeout: loop to re-check the overall deadline.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut first = request.lines().next().unwrap_or("").split_whitespace();
    let method = first.next().unwrap_or("GET");
    let path = first.next().unwrap_or("/");
    let mut allow = "";
    let (status, ctype, body) = if method != "GET" {
        allow = "Allow: GET\r\n";
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else if path.starts_with("/healthz") {
        let report = source.healthz();
        (
            if report.ready() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            },
            "application/json",
            report.render_json(),
        )
    } else if path.starts_with("/debug/state") {
        ("200 OK", "application/json", source.debug_state())
    } else if path.starts_with("/metrics.json") {
        ("200 OK", "application/json", source.metrics_json())
    } else if path == "/" || path.starts_with("/metrics") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            source.prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n{allow}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_renders_families_once() {
        let samples = [
            Sample::counter("maxk_serve_queries_total", 5, "answered"),
            Sample::counter("maxk_serve_shard_batches_total", 2, "per shard")
                .with_label("shard", 0),
            Sample::counter("maxk_serve_shard_batches_total", 3, "per shard")
                .with_label("shard", 1),
            Sample::gauge("maxk_serve_queue_depth", 1.0, "depth"),
        ];
        let mut hist = LatencyHistogram::new();
        hist.record(10);
        hist.record(100);
        let hists = [HistSample {
            name: "maxk_serve_latency_us",
            labels: Vec::new(),
            hist,
            help: "e2e latency",
        }];
        let text = render_prometheus(&samples, &hists, None);
        assert_eq!(
            text.matches("# TYPE maxk_serve_shard_batches_total counter")
                .count(),
            1
        );
        assert!(text.contains("maxk_serve_queries_total 5"));
        assert!(text.contains("maxk_serve_shard_batches_total{shard=\"0\"} 2"));
        assert!(text.contains("maxk_serve_queue_depth 1"));
        assert!(text.contains("# TYPE maxk_serve_latency_us histogram"));
        assert!(text.contains("maxk_serve_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("maxk_serve_latency_us_sum 110"));
        assert!(text.contains("maxk_serve_latency_us_count 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let mut hist = LatencyHistogram::new();
        hist.record(1); // bucket 0
        hist.record(2); // bucket 1
        hist.record(2);
        let h = HistSample {
            name: "h",
            labels: Vec::new(),
            hist,
            help: "",
        };
        let mut out = String::new();
        render_histogram(&mut out, &h);
        assert!(out.contains("h_bucket{le=\"1\"} 1"));
        assert!(out.contains("h_bucket{le=\"3\"} 3"));
        assert!(out.contains("h_bucket{le=\"+Inf\"} 3"));
        // No empty tail buckets beyond the last occupied one.
        assert!(!out.contains("le=\"7\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = [SpanRecord {
            name: "queue_wait",
            cat: "query",
            tid: 3,
            start_us: 100,
            dur_us: 40,
            arg: 2,
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":40"));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn scrape_endpoint_answers_over_tcp() {
        struct Fixed;
        impl ScrapeSource for Fixed {
            fn prometheus(&self) -> String {
                "# HELP x x\n# TYPE x counter\nx 1\n".to_string()
            }
            fn metrics_json(&self) -> String {
                "{\"metrics\":[],\"histograms\":[]}".to_string()
            }
        }
        let exporter = serve_scrape(Fixed, ("127.0.0.1", 0)).expect("bind");
        let addr = exporter.local_addr();
        let fetch = |path: &str| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
            let mut body = String::new();
            stream.read_to_string(&mut body).expect("read");
            body
        };
        let text = fetch("/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("x 1"));
        let json = fetch("/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"metrics\""));
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        exporter.shutdown();
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_label("x\"y"), "x\\\"y");
    }

    struct Fixture;
    impl ScrapeSource for Fixture {
        fn prometheus(&self) -> String {
            "x 1\n".to_string()
        }
        fn metrics_json(&self) -> String {
            "{\"metrics\":[]}".to_string()
        }
        fn healthz(&self) -> HealthReport {
            HealthReport::new(vec![super::super::health::HealthCheck::new(
                "always", true, "fixture",
            )])
        }
        fn debug_state(&self) -> String {
            "{\"depth\":0}".to_string()
        }
    }

    fn fetch_raw(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        body
    }

    #[test]
    fn non_get_methods_rejected_with_405() {
        let exporter = serve_scrape(Fixture, ("127.0.0.1", 0)).expect("bind");
        let addr = exporter.local_addr();
        let resp = fetch_raw(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"));
        assert!(resp.contains("Allow: GET"));
        exporter.shutdown();
    }

    #[test]
    fn healthz_and_debug_state_routes_answer() {
        let exporter = serve_scrape(Fixture, ("127.0.0.1", 0)).expect("bind");
        let addr = exporter.local_addr();
        let health = fetch_raw(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"));
        assert!(health.contains("application/json"));
        assert!(health.contains("\"status\":\"ok\""));
        let state = fetch_raw(addr, "GET /debug/state HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(state.starts_with("HTTP/1.1 200"));
        assert!(state.contains("\"depth\":0"));
        exporter.shutdown();
    }

    #[test]
    fn degraded_source_answers_503() {
        struct Degraded;
        impl ScrapeSource for Degraded {
            fn prometheus(&self) -> String {
                String::new()
            }
            fn metrics_json(&self) -> String {
                String::new()
            }
            fn healthz(&self) -> HealthReport {
                HealthReport::new(vec![super::super::health::HealthCheck::new(
                    "slo", false, "breached",
                )])
            }
        }
        let exporter = serve_scrape(Degraded, ("127.0.0.1", 0)).expect("bind");
        let resp = fetch_raw(
            exporter.local_addr(),
            "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503"));
        assert!(resp.contains("\"status\":\"degraded\""));
        exporter.shutdown();
    }

    #[test]
    fn stalled_client_does_not_block_other_scrapes() {
        let exporter = serve_scrape(Fixture, ("127.0.0.1", 0)).expect("bind");
        let addr = exporter.local_addr();
        // Connect and send nothing — this client holds its connection
        // open while real scrapes proceed on their own threads.
        let stalled = TcpStream::connect(addr).expect("connect");
        let start = Instant::now();
        let resp = fetch_raw(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"));
        assert!(
            start.elapsed() < SCRAPE_HEAD_DEADLINE,
            "scrape waited behind a stalled client"
        );
        drop(stalled);
        exporter.shutdown();
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let exporter = serve_scrape(Fixture, ("127.0.0.1", 0)).expect("bind");
        let addr = exporter.local_addr();
        let handles: Vec<_> = (0..24)
            .map(|i| {
                std::thread::spawn(move || {
                    let path = match i % 4 {
                        0 => "/metrics",
                        1 => "/metrics.json",
                        2 => "/healthz",
                        _ => "/debug/state",
                    };
                    fetch_raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().expect("scrape thread");
            assert!(resp.starts_with("HTTP/1.1 200"), "got: {resp}");
        }
        exporter.shutdown();
    }
}
