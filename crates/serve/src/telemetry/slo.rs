//! Declarative service-level objectives with multi-window burn-rate
//! alerting.
//!
//! An [`SloSpec`] names one objective over the serving books — a
//! latency-under-budget bound, availability (answered / submitted), a
//! cache hit-rate floor, or a staleness epoch-lag bound. Every objective
//! reduces to a **good/bad event stream**: each observed event either
//! honored the objective or burned error budget. Events land in a
//! time-bucketed [`WindowRing`] covering the slow window; burn rates are
//! read over two sliding windows at once (the fast window catches an
//! active incident in seconds, the slow window keeps one noisy blip from
//! paging), the multi-window pattern of SRE burn-rate alerting scaled
//! down to serving-bench time constants.
//!
//! The state machine is a **pure function of the two burn rates**
//! (plus a minimum event mass), which makes its transitions monotone in
//! observed error mass: with the good-event stream held fixed, adding
//! bad events can only raise the state, never lower it — no flapping
//! without signal. `tests/slo.rs` proves this property under proptest.
//!
//! A server evaluates its [`SloHub`] on a monitor tick (the `maxk-slo`
//! worker): burn rates and states export as `maxk_serve_slo_*` registry
//! gauges, a transition into [`SloState::Breach`] triggers the flight
//! recorder (incident bundle + trace-sampling boost) and — when
//! [`SloConfig::feedback`] is on — tightens the
//! [`crate::AdaptiveController`]'s derived deadline until the breach
//! clears.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::recorder::RecorderConfig;
use super::Telemetry;

/// Maximum number of objectives an [`SloSpecSet`] can hold.
///
/// Fixed so [`SloConfig`] stays `Copy` (it travels by value through
/// [`crate::ServeConfig`] and the server builder), mirroring
/// [`crate::admission::MAX_CLASSES`].
pub const MAX_SLOS: usize = 8;

/// What one objective measures — every kind reduces to a good/bad event
/// classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Answered-query latency under a budget: an answered query is bad
    /// when its end-to-end latency exceeds `budget_us`. Combined with
    /// the spec's error budget this encodes
    /// "p(1 - error_budget) latency ≤ budget" — e.g. error budget 0.01
    /// means "99% of answers under the bound".
    LatencyUnder {
        /// The per-answer latency bound in microseconds.
        budget_us: u64,
    },
    /// Availability: a submitted query that is answered is good; a
    /// rejection or shed is bad.
    Availability,
    /// Cache hit-rate floor: a seed instance served from residency or a
    /// coalesced in-flight row is good, a miss (fresh forward) is bad.
    /// Only meaningful when the server has a logit cache.
    CacheHitRate,
    /// Staleness: an answer computed at an engine epoch lagging the
    /// current epoch by more than `max_lag` mutation batches is bad.
    /// Frozen-graph engines never produce bad events here.
    StalenessLag {
        /// Largest acceptable epoch lag per answer.
        max_lag: u64,
    },
}

impl SloKind {
    /// Stable label for gauges and incident bundles.
    pub fn label(&self) -> &'static str {
        match self {
            SloKind::LatencyUnder { .. } => "latency_under",
            SloKind::Availability => "availability",
            SloKind::CacheHitRate => "cache_hit_rate",
            SloKind::StalenessLag { .. } => "staleness_lag",
        }
    }
}

/// One declarative objective: a name, what it measures, and how much of
/// the event stream may be bad before budget burns at rate 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Objective name — the `slo` label on every exported series.
    pub name: &'static str,
    /// What good/bad means for this objective.
    pub kind: SloKind,
    /// Fraction of events allowed to be bad (the error budget). Burn
    /// rate is `(bad / total) / error_budget`: 1.0 means budget burns
    /// exactly as provisioned, above 1.0 the budget exhausts early.
    pub error_budget: f64,
}

impl SloSpec {
    /// A latency objective: at least `1 - error_budget` of answers under
    /// `budget`.
    pub fn latency(name: &'static str, budget: Duration, error_budget: f64) -> Self {
        SloSpec {
            name,
            kind: SloKind::LatencyUnder {
                budget_us: budget.as_micros().min(u128::from(u64::MAX)) as u64,
            },
            error_budget,
        }
    }

    /// An availability objective: at most `error_budget` of submissions
    /// rejected or shed.
    pub fn availability(name: &'static str, error_budget: f64) -> Self {
        SloSpec {
            name,
            kind: SloKind::Availability,
            error_budget,
        }
    }

    /// A cache hit-rate floor: at most `error_budget` of answered seed
    /// instances missing the cache (i.e. hit rate ≥ `1 - error_budget`).
    pub fn cache_hit_rate(name: &'static str, error_budget: f64) -> Self {
        SloSpec {
            name,
            kind: SloKind::CacheHitRate,
            error_budget,
        }
    }

    /// A staleness bound: at most `error_budget` of answers lagging the
    /// live epoch by more than `max_lag`.
    pub fn staleness(name: &'static str, max_lag: u64, error_budget: f64) -> Self {
        SloSpec {
            name,
            kind: SloKind::StalenessLag { max_lag },
            error_budget,
        }
    }
}

/// A fixed-capacity, `Copy` set of objectives (see [`MAX_SLOS`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloSpecSet {
    specs: [Option<SloSpec>; MAX_SLOS],
    len: usize,
}

impl SloSpecSet {
    /// An empty set.
    pub fn new() -> Self {
        SloSpecSet::default()
    }

    /// Adds one objective.
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_SLOS`] objectives, on a non-finite or
    /// out-of-range error budget, or on a duplicate name.
    #[must_use]
    pub fn with_spec(mut self, spec: SloSpec) -> Self {
        assert!(self.len < MAX_SLOS, "at most {MAX_SLOS} SLOs");
        assert!(
            spec.error_budget.is_finite() && spec.error_budget > 0.0 && spec.error_budget <= 1.0,
            "SLO error budget must be in (0, 1] (got {})",
            spec.error_budget
        );
        assert!(
            self.iter().all(|s| s.name != spec.name),
            "duplicate SLO name {:?}",
            spec.name
        );
        self.specs[self.len] = Some(spec);
        self.len += 1;
        self
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objectives are configured.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the configured objectives in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &SloSpec> {
        self.specs[..self.len].iter().filter_map(|s| s.as_ref())
    }
}

/// SLO engine configuration, carried inside [`crate::ServeConfig`].
///
/// The defaults use serving-bench time constants (seconds, not the
/// 5m/1h of fleet dashboards) so incidents resolve within a test run;
/// the structure — fast window to detect, slow window to confirm — is
/// the standard multi-window burn-rate shape either way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// The objectives to evaluate.
    pub specs: SloSpecSet,
    /// Fast (detection) window. Default 5s.
    pub fast_window: Duration,
    /// Slow (confirmation) window; also bounds ring memory. Default 60s.
    pub slow_window: Duration,
    /// Monitor evaluation cadence. Default 20ms.
    pub tick: Duration,
    /// Fast-window burn rate at which a tracker enters
    /// [`SloState::Warning`]. Default 2.0.
    pub warn_burn: f64,
    /// Fast-window burn rate required for [`SloState::Breach`] (the
    /// slow window must simultaneously burn at ≥ 1.0 — budget actually
    /// depleting — so one sparse spike cannot page). Default 8.0.
    pub breach_burn: f64,
    /// Minimum events in a window before its burn rate reads nonzero
    /// (no alerting off a near-empty window). Default 16.
    pub min_events: u64,
    /// Flight-recorder knobs (ring byte bound, post-trigger window,
    /// re-trigger cooldown).
    pub recorder: RecorderConfig,
    /// Feed breaches back into the [`crate::AdaptiveController`]:
    /// while any objective is breached the derived deadline is
    /// multiplied by [`SloConfig::tighten`], shedding harder until the
    /// burn clears. Default `true` (no-op without an adaptive
    /// controller).
    pub feedback: bool,
    /// Deadline multiplier applied while breached (in `(0, 1]`).
    /// Default 0.5.
    pub tighten: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            specs: SloSpecSet::new(),
            fast_window: Duration::from_secs(5),
            slow_window: Duration::from_secs(60),
            tick: Duration::from_millis(20),
            warn_burn: 2.0,
            breach_burn: 8.0,
            min_events: 16,
            recorder: RecorderConfig::default(),
            feedback: true,
            tighten: 0.5,
        }
    }
}

impl SloConfig {
    /// A serving default: a latency objective at `budget` plus an
    /// availability objective, both with a 5% error budget.
    pub fn with_latency_budget(budget: Duration) -> Self {
        SloConfig {
            specs: SloSpecSet::new()
                .with_spec(SloSpec::latency("latency", budget, 0.05))
                .with_spec(SloSpec::availability("availability", 0.05)),
            ..SloConfig::default()
        }
    }
}

/// Objective health, ordered: comparisons follow severity
/// (`Ok < Warning < Breach`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Burn within budget.
    Ok,
    /// The fast window burns above [`SloConfig::warn_burn`].
    Warning,
    /// The fast window burns above [`SloConfig::breach_burn`] while the
    /// slow window confirms budget depletion (burn ≥ 1.0).
    Breach,
}

impl SloState {
    /// Stable label for gauges and incident bundles.
    pub fn label(&self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Breach => "breach",
        }
    }

    /// Gauge encoding: 0 ok, 1 warning, 2 breach.
    pub fn rank(&self) -> u64 {
        match self {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Breach => 2,
        }
    }
}

/// Time-bucketed good/bad event ring covering the slow window.
///
/// Bucket width is `fast_window / 8` so the fast window reads at ~12%
/// granularity; the ring holds `slow_window / width + 1` buckets, so
/// memory is bounded by the window ratio, not by traffic. Recording
/// advances the ring to the event's bucket (zeroing skipped buckets —
/// idle time decays naturally) and adds; reading sums the trailing
/// buckets of the requested window.
#[derive(Debug)]
pub struct WindowRing {
    width_us: u64,
    /// `(good, bad)` per bucket.
    buckets: Vec<(u64, u64)>,
    /// Absolute bucket index of the newest bucket.
    head: u64,
    /// True once any event has been recorded (distinguishes "bucket 0 is
    /// live" from "nothing ever happened").
    touched: bool,
}

impl WindowRing {
    /// A ring sized for the given windows.
    pub fn new(fast_window: Duration, slow_window: Duration) -> Self {
        let fast_us = fast_window.as_micros().max(8) as u64;
        let slow_us = (slow_window.as_micros() as u64).max(fast_us);
        let width_us = (fast_us / 8).max(1);
        let buckets = (slow_us.div_ceil(width_us) + 1) as usize;
        WindowRing {
            width_us,
            buckets: vec![(0, 0); buckets],
            head: 0,
            touched: false,
        }
    }

    /// Bucket width in microseconds.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    fn advance(&mut self, to: u64) {
        if !self.touched {
            self.head = to;
            self.touched = true;
            let slot = (to % self.buckets.len() as u64) as usize;
            self.buckets[slot] = (0, 0);
            return;
        }
        if to <= self.head {
            return;
        }
        let n = self.buckets.len() as u64;
        let steps = (to - self.head).min(n);
        for i in 1..=steps {
            let slot = ((self.head + i) % n) as usize;
            self.buckets[slot] = (0, 0);
        }
        if to - self.head > n {
            // Every bucket went stale; zero the rest of the ring too.
            for b in &mut self.buckets {
                *b = (0, 0);
            }
        }
        self.head = to;
    }

    /// Records `good`/`bad` events observed at `at_us` (microseconds on
    /// the telemetry clock). Events older than the ring window are
    /// dropped.
    pub fn record(&mut self, at_us: u64, good: u64, bad: u64) {
        let idx = at_us / self.width_us;
        self.advance(idx);
        let n = self.buckets.len() as u64;
        if self.head - idx.min(self.head) >= n {
            return; // predates the resident window
        }
        let slot = (idx.min(self.head) % n) as usize;
        self.buckets[slot].0 += good;
        self.buckets[slot].1 += bad;
    }

    /// Sums `(good, bad)` over the trailing `window` as of `now_us`.
    pub fn totals(&mut self, window: Duration, now_us: u64) -> (u64, u64) {
        self.advance(now_us / self.width_us);
        if !self.touched {
            return (0, 0);
        }
        let n = self.buckets.len() as u64;
        let k = ((window.as_micros() as u64).div_ceil(self.width_us)).clamp(1, n);
        let mut good = 0;
        let mut bad = 0;
        for i in 0..k {
            if i > self.head {
                break;
            }
            let slot = ((self.head - i) % n) as usize;
            good += self.buckets[slot].0;
            bad += self.buckets[slot].1;
        }
        (good, bad)
    }
}

/// The pure state function: burn rates in, state out. Monotone in both
/// burn rates (raising either can only raise the state), which is what
/// makes the engine flap-free without signal.
pub fn state_of(cfg: &SloConfig, fast_burn: f64, slow_burn: f64) -> SloState {
    if fast_burn >= cfg.breach_burn && slow_burn >= 1.0 {
        SloState::Breach
    } else if fast_burn >= cfg.warn_burn {
        SloState::Warning
    } else {
        SloState::Ok
    }
}

/// One objective's sliding windows plus its state machine. Standalone so
/// tests can drive it deterministically with synthetic clocks; the
/// [`SloHub`] owns one per configured spec.
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    cfg: SloConfig,
    ring: WindowRing,
    state: SloState,
    fast_burn: f64,
    slow_burn: f64,
    transitions: u64,
    breaches: u64,
}

impl SloTracker {
    /// A tracker for `spec` under `cfg`'s windows and thresholds.
    pub fn new(spec: SloSpec, cfg: SloConfig) -> Self {
        SloTracker {
            spec,
            cfg,
            ring: WindowRing::new(cfg.fast_window, cfg.slow_window),
            state: SloState::Ok,
            fast_burn: 0.0,
            slow_burn: 0.0,
            transitions: 0,
            breaches: 0,
        }
    }

    /// The objective this tracker evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Feeds `good`/`bad` events observed at `at_us`.
    pub fn record(&mut self, at_us: u64, good: u64, bad: u64) {
        if good | bad != 0 {
            self.ring.record(at_us, good, bad);
        }
    }

    fn burn(&mut self, window: Duration, now_us: u64) -> f64 {
        let (good, bad) = self.ring.totals(window, now_us);
        let total = good + bad;
        if total < self.cfg.min_events.max(1) {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.spec.error_budget
    }

    /// Re-evaluates the state machine as of `now_us`, returning
    /// `(previous, current)` state.
    pub fn evaluate(&mut self, now_us: u64) -> (SloState, SloState) {
        self.fast_burn = self.burn(self.cfg.fast_window, now_us);
        self.slow_burn = self.burn(self.cfg.slow_window, now_us);
        let prev = self.state;
        let next = state_of(&self.cfg, self.fast_burn, self.slow_burn);
        if next != prev {
            self.transitions += 1;
            if next == SloState::Breach {
                self.breaches += 1;
            }
        }
        self.state = next;
        (prev, next)
    }

    /// Current state (as of the last [`SloTracker::evaluate`]).
    pub fn state(&self) -> SloState {
        self.state
    }

    /// Point-in-time status.
    pub fn status(&self) -> SloStatus {
        SloStatus {
            name: self.spec.name,
            kind: self.spec.kind.label(),
            state: self.state,
            fast_burn: self.fast_burn,
            slow_burn: self.slow_burn,
            transitions: self.transitions,
            breaches: self.breaches,
        }
    }
}

/// One objective's exported status (surfaced through
/// [`crate::StatsSnapshot::slo`], `/debug/state` and incident bundles).
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: &'static str,
    /// Objective kind label.
    pub kind: &'static str,
    /// State as of the last monitor evaluation.
    pub state: SloState,
    /// Fast-window burn rate.
    pub fast_burn: f64,
    /// Slow-window burn rate.
    pub slow_burn: f64,
    /// State transitions since start.
    pub transitions: u64,
    /// Transitions into [`SloState::Breach`] since start.
    pub breaches: u64,
}

/// One state transition surfaced by [`SloHub::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    /// The objective that transitioned.
    pub name: &'static str,
    /// Previous state.
    pub from: SloState,
    /// New state.
    pub to: SloState,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// An answered query's SLO-relevant observation.
#[derive(Debug, Clone, Copy)]
pub struct AnswerObs {
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
    /// Epochs the answer lagged the live engine (0 for frozen graphs).
    pub epoch_lag: u64,
}

/// The per-server SLO engine: one tracker per configured objective,
/// fed by the serving layers and evaluated on the monitor tick.
///
/// Answered queries are fed at reply time by the batcher (inline cache
/// answers) and workers; availability bad-mass (rejections + sheds) and
/// cache hit/miss mass are fed by the monitor from counter deltas.
/// Gauges land in the shared [`Telemetry`] registry on every
/// [`SloHub::evaluate`], so scrapes see them with zero extra plumbing.
#[derive(Debug)]
pub struct SloHub {
    cfg: SloConfig,
    telemetry: Arc<Telemetry>,
    trackers: Mutex<Vec<SloTracker>>,
    /// Cheap read-side for `/healthz`: true while any tracker is in
    /// [`SloState::Breach`].
    breached: AtomicBool,
}

impl SloHub {
    /// Builds the hub over the server's telemetry (gauges register in
    /// its registry; timestamps use its epoch).
    pub fn new(cfg: SloConfig, telemetry: Arc<Telemetry>) -> Self {
        let trackers = cfg.specs.iter().map(|s| SloTracker::new(*s, cfg)).collect();
        SloHub {
            cfg,
            telemetry,
            trackers: Mutex::new(trackers),
            breached: AtomicBool::new(false),
        }
    }

    /// The configuration the hub was built with.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Feeds a batch of answered queries (good availability mass;
    /// latency and staleness classified per spec). One lock per batch.
    pub fn observe_answers(&self, at_us: u64, rows: &[AnswerObs]) {
        if rows.is_empty() {
            return;
        }
        let mut trackers = self.trackers.lock().expect("slo trackers poisoned");
        for t in trackers.iter_mut() {
            match t.spec.kind {
                SloKind::LatencyUnder { budget_us } => {
                    let bad = rows.iter().filter(|r| r.latency_us > budget_us).count() as u64;
                    t.record(at_us, rows.len() as u64 - bad, bad);
                }
                SloKind::Availability => {
                    t.record(at_us, rows.len() as u64, 0);
                }
                SloKind::StalenessLag { max_lag } => {
                    let bad = rows.iter().filter(|r| r.epoch_lag > max_lag).count() as u64;
                    t.record(at_us, rows.len() as u64 - bad, bad);
                }
                SloKind::CacheHitRate => {}
            }
        }
    }

    /// Feeds availability bad mass (rejections + sheds since the last
    /// call, from the admission counters).
    pub fn observe_unserved(&self, at_us: u64, unserved: u64) {
        if unserved == 0 {
            return;
        }
        let mut trackers = self.trackers.lock().expect("slo trackers poisoned");
        for t in trackers.iter_mut() {
            if matches!(t.spec.kind, SloKind::Availability) {
                t.record(at_us, 0, unserved);
            }
        }
    }

    /// Feeds cache hit/miss mass (deltas of the cache books).
    pub fn observe_cache(&self, at_us: u64, hits: u64, misses: u64) {
        if hits | misses == 0 {
            return;
        }
        let mut trackers = self.trackers.lock().expect("slo trackers poisoned");
        for t in trackers.iter_mut() {
            if matches!(t.spec.kind, SloKind::CacheHitRate) {
                t.record(at_us, hits, misses);
            }
        }
    }

    /// Re-evaluates every tracker as of `now_us`, refreshes the
    /// `maxk_serve_slo_*` gauges, and returns the state transitions.
    pub fn evaluate(&self, now_us: u64) -> Vec<SloEvent> {
        let mut events = Vec::new();
        let mut any_breach = false;
        let mut trackers = self.trackers.lock().expect("slo trackers poisoned");
        let reg = self.telemetry.registry();
        for t in trackers.iter_mut() {
            let (prev, next) = t.evaluate(now_us);
            any_breach |= next == SloState::Breach;
            let labels = [("slo", t.spec.name)];
            reg.gauge(
                "maxk_serve_slo_state",
                &labels,
                "Objective state: 0 ok, 1 warning, 2 breach",
            )
            .set(next.rank());
            reg.gauge(
                "maxk_serve_slo_burn_permille",
                &[("slo", t.spec.name), ("window", "fast")],
                "Burn rate per window, thousandths (1000 = budget burning exactly as provisioned)",
            )
            .set((t.fast_burn * 1000.0).round().min(u64::MAX as f64) as u64);
            reg.gauge(
                "maxk_serve_slo_burn_permille",
                &[("slo", t.spec.name), ("window", "slow")],
                "Burn rate per window, thousandths (1000 = budget burning exactly as provisioned)",
            )
            .set((t.slow_burn * 1000.0).round().min(u64::MAX as f64) as u64);
            if next != prev {
                reg.counter(
                    "maxk_serve_slo_transitions_total",
                    &[("slo", t.spec.name), ("to", next.label())],
                    "Objective state transitions",
                )
                .inc();
                if next == SloState::Breach {
                    reg.counter(
                        "maxk_serve_slo_breaches_total",
                        &labels,
                        "Transitions into breach",
                    )
                    .inc();
                }
                events.push(SloEvent {
                    name: t.spec.name,
                    from: prev,
                    to: next,
                    fast_burn: t.fast_burn,
                    slow_burn: t.slow_burn,
                });
            }
        }
        self.breached.store(any_breach, Ordering::Relaxed);
        events
    }

    /// True while any objective is breached (one relaxed load — the
    /// `/healthz` read side).
    pub fn any_breached(&self) -> bool {
        self.breached.load(Ordering::Relaxed)
    }

    /// Point-in-time status of every objective.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.trackers
            .lock()
            .expect("slo trackers poisoned")
            .iter()
            .map(|t| t.status())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryConfig;

    const MS: u64 = 1000;

    fn cfg() -> SloConfig {
        SloConfig {
            fast_window: Duration::from_millis(80),
            slow_window: Duration::from_millis(800),
            min_events: 4,
            ..SloConfig::default()
        }
    }

    #[test]
    fn spec_set_holds_up_to_max() {
        let mut set = SloSpecSet::new();
        for i in 0..MAX_SLOS {
            let name: &'static str = Box::leak(format!("slo{i}").into_boxed_str());
            set = set.with_spec(SloSpec::availability(name, 0.1));
        }
        assert_eq!(set.len(), MAX_SLOS);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = SloSpecSet::new()
            .with_spec(SloSpec::availability("a", 0.1))
            .with_spec(SloSpec::availability("a", 0.2));
    }

    #[test]
    fn ring_decays_old_buckets() {
        let mut ring = WindowRing::new(Duration::from_millis(80), Duration::from_millis(800));
        ring.record(0, 10, 10);
        assert_eq!(ring.totals(Duration::from_millis(80), 5 * MS), (10, 10));
        // Two seconds later, everything fell out of even the slow window.
        assert_eq!(ring.totals(Duration::from_millis(800), 2000 * MS), (0, 0));
    }

    #[test]
    fn state_function_is_monotone() {
        let c = cfg();
        assert_eq!(state_of(&c, 0.0, 0.0), SloState::Ok);
        assert_eq!(state_of(&c, c.warn_burn, 0.5), SloState::Warning);
        assert_eq!(state_of(&c, c.breach_burn, 0.5), SloState::Warning);
        assert_eq!(state_of(&c, c.breach_burn, 1.0), SloState::Breach);
        assert!(state_of(&c, 100.0, 100.0) >= state_of(&c, 1.0, 1.0));
    }

    #[test]
    fn tracker_breaches_under_error_mass_and_recovers() {
        let c = cfg();
        let mut t = SloTracker::new(SloSpec::latency("lat", Duration::from_millis(1), 0.05), c);
        // All-bad mass: burn = 20x budget in both windows.
        for tick in 0..10u64 {
            t.record(tick * 10 * MS, 0, 5);
        }
        let (_, state) = t.evaluate(100 * MS);
        assert_eq!(state, SloState::Breach);
        assert_eq!(t.status().breaches, 1);
        // Fast window decays (slow still holds mass): breach clears.
        let (_, state) = t.evaluate(400 * MS);
        assert_eq!(state, SloState::Ok);
    }

    #[test]
    fn min_events_suppresses_empty_window_alerts() {
        let c = cfg();
        let mut t = SloTracker::new(SloSpec::availability("avail", 0.01), c);
        t.record(0, 0, 2); // 2 events < min_events(4)
        let (_, state) = t.evaluate(10 * MS);
        assert_eq!(state, SloState::Ok);
        assert_eq!(t.status().fast_burn, 0.0);
    }

    #[test]
    fn hub_classifies_answers_per_spec_and_exports_gauges() {
        let tel = Arc::new(Telemetry::new(TelemetryConfig::default()));
        let c = SloConfig {
            specs: SloSpecSet::new()
                .with_spec(SloSpec::latency("lat", Duration::from_micros(100), 0.05))
                .with_spec(SloSpec::availability("avail", 0.05))
                .with_spec(SloSpec::staleness("stale", 1, 0.05)),
            ..cfg()
        };
        let hub = SloHub::new(c, Arc::clone(&tel));
        let rows: Vec<AnswerObs> = (0..20)
            .map(|i| AnswerObs {
                latency_us: if i < 10 { 10 } else { 500 },
                epoch_lag: 0,
            })
            .collect();
        hub.observe_answers(10 * MS, &rows);
        let events = hub.evaluate(20 * MS);
        // Latency: 10/20 bad over a 0.05 budget = burn 10 ≥ breach 8.
        assert!(events
            .iter()
            .any(|e| e.name == "lat" && e.to == SloState::Breach));
        assert!(hub.any_breached());
        let statuses = hub.statuses();
        assert_eq!(statuses.len(), 3);
        assert_eq!(
            statuses.iter().find(|s| s.name == "avail").unwrap().state,
            SloState::Ok
        );
        let snap = tel.registry().snapshot();
        let state_gauge = snap
            .gauges
            .iter()
            .find(|g| g.name == "maxk_serve_slo_state" && g.labels.iter().any(|(_, v)| v == "lat"))
            .expect("state gauge exported");
        assert_eq!(state_gauge.value, 2);
    }

    #[test]
    fn unserved_mass_breaches_availability() {
        let tel = Arc::new(Telemetry::new(TelemetryConfig::default()));
        let c = SloConfig {
            specs: SloSpecSet::new().with_spec(SloSpec::availability("avail", 0.05)),
            ..cfg()
        };
        let hub = SloHub::new(c, tel);
        hub.observe_answers(
            MS,
            &[AnswerObs {
                latency_us: 1,
                epoch_lag: 0,
            }; 10],
        );
        hub.observe_unserved(2 * MS, 10);
        let events = hub.evaluate(5 * MS);
        assert!(events
            .iter()
            .any(|e| e.name == "avail" && e.to == SloState::Breach));
    }
}
