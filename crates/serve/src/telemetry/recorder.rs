//! The always-on flight recorder: a bounded black-box event ring plus
//! triggered incident bundles.
//!
//! Serving layers [`FlightRecorder::record`] coarse events (batch
//! formed, shed burst, epoch swap, eviction churn, replan, scrape) into
//! a fixed-byte ring at near-zero cost — one relaxed atomic fetch-add
//! and one short slot-mutex write, the same discipline as
//! [`super::TraceRing`]. Nothing is paid at steady state beyond that;
//! there is no sink I/O and no allocation per event.
//!
//! When an SLO breaches, [`FlightRecorder::trigger`] snapshots the ring
//! (the *pre*-incident evidence, captured retroactively) and boosts
//! trace sampling to 100% for [`RecorderConfig::post_trigger`] (the
//! *post*-incident evidence, captured prospectively). Once the window
//! elapses, [`FlightRecorder::finalize_due`] composes a self-contained
//! incident bundle — ring events, the boosted span window as Chrome
//! trace JSON, a full registry snapshot, the serving config and the
//! breach context — and writes it to the sink directory as
//! `incident-NNNN.json` (schema `maxk-incident-v1`). Re-triggering is
//! suppressed while an incident is open and for
//! [`RecorderConfig::cooldown`] after it closes, so one sustained breach
//! produces exactly one bundle.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::export::chrome_trace_json;
use super::trace::SpanRecord;
use super::Telemetry;

/// What a flight event witnessed. Coarse by design: the ring records
/// *that* something happened and its magnitude, spans record *why it
/// was slow*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A batch left the batcher (`a` = queries, `b` = union seeds).
    BatchFormed,
    /// A fully-cache-hot query answered inline (`a` = seeds).
    InlineAnswer,
    /// Admission shed queries (`a` = shed count in the burst).
    ShedBurst,
    /// Admission rejected queries (`a` = rejected count).
    Rejected,
    /// A dynamic engine swapped epochs (`a` = new epoch, `b` = rows
    /// invalidated by the swap).
    EpochSwap,
    /// Cache eviction churn observed by the monitor (`a` = evictions
    /// since the last tick).
    EvictionChurn,
    /// The adaptive controller replanned (`a` = replans since the last
    /// tick).
    Replan,
    /// A scrape or introspection request was answered (`a` = endpoint
    /// discriminant).
    Scrape,
    /// An SLO changed state (`a` = new state rank, `b` = fast burn in
    /// thousandths).
    SloTransition,
    /// The recorder itself triggered (`a` = incident id).
    Trigger,
}

impl EventKind {
    /// Stable label for bundles and debug dumps.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::BatchFormed => "batch_formed",
            EventKind::InlineAnswer => "inline_answer",
            EventKind::ShedBurst => "shed_burst",
            EventKind::Rejected => "rejected",
            EventKind::EpochSwap => "epoch_swap",
            EventKind::EvictionChurn => "eviction_churn",
            EventKind::Replan => "replan",
            EventKind::Scrape => "scrape",
            EventKind::SloTransition => "slo_transition",
            EventKind::Trigger => "trigger",
        }
    }
}

/// One black-box event: a timestamp on the telemetry clock, a kind and
/// two kind-specific magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the telemetry epoch.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// First magnitude (kind-specific).
    pub a: u64,
    /// Second magnitude (kind-specific).
    pub b: u64,
}

/// Flight-recorder knobs, carried inside [`super::slo::SloConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Byte bound on the event ring; capacity is
    /// `max_bytes / size_of::<FlightEvent>()` slots. Default 64 KiB
    /// (≈ 1630 events).
    pub max_bytes: usize,
    /// How long after a trigger to keep sampling boosted before the
    /// bundle finalizes. Default 500ms.
    pub post_trigger: Duration,
    /// Re-trigger suppression after a bundle closes. Default 5s.
    pub cooldown: Duration,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            max_bytes: 64 * 1024,
            post_trigger: Duration::from_millis(500),
            cooldown: Duration::from_secs(5),
        }
    }
}

/// A closed incident: everything that went into (or would go into) its
/// bundle file, retained in memory for introspection and tests.
#[derive(Debug, Clone)]
pub struct IncidentReport {
    /// Monotonic incident id (1-based).
    pub id: u64,
    /// Why the recorder triggered (e.g. `slo:latency`).
    pub reason: String,
    /// Trigger time, microseconds on the telemetry clock.
    pub trigger_us: u64,
    /// Finalize time, microseconds on the telemetry clock.
    pub finalize_us: u64,
    /// The ring snapshot taken at trigger time.
    pub events: Vec<FlightEvent>,
    /// The span window collected at finalize time (includes the boosted
    /// post-trigger traces).
    pub spans: Vec<SpanRecord>,
    /// Where the bundle was written (`None` without a sink dir).
    pub path: Option<PathBuf>,
}

#[derive(Debug)]
struct Pending {
    id: u64,
    reason: String,
    context_json: String,
    trigger_us: u64,
    due_us: u64,
    events: Vec<FlightEvent>,
}

#[derive(Debug, Default)]
struct RecorderState {
    pending: Option<Pending>,
    incidents: Vec<IncidentReport>,
    last_close_us: Option<u64>,
    next_id: u64,
}

/// The always-on black box. One per server, `Arc`-shared with every
/// layer that records into it.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    telemetry: Arc<Telemetry>,
    /// Serving config rendered once at startup, embedded in every
    /// bundle.
    config_json: String,
    sink: Option<PathBuf>,
    head: AtomicUsize,
    slots: Vec<Mutex<Option<FlightEvent>>>,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// Builds the recorder over the server's telemetry (timestamps and
    /// the boosted span window share its clock). `config_json` is the
    /// serving configuration as a JSON object, embedded verbatim in
    /// every bundle; `sink` is the incident output directory (`None`
    /// keeps bundles in memory only).
    pub fn new(
        cfg: RecorderConfig,
        telemetry: Arc<Telemetry>,
        config_json: String,
        sink: Option<PathBuf>,
    ) -> Self {
        let capacity = (cfg.max_bytes / std::mem::size_of::<FlightEvent>()).max(1);
        FlightRecorder {
            cfg,
            telemetry,
            config_json,
            sink,
            head: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    /// Ring capacity in events (bounded by
    /// [`RecorderConfig::max_bytes`]).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Resident ring bytes — always ≤ the configured bound.
    pub fn ring_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<FlightEvent>()
    }

    /// The incident sink directory, when configured.
    pub fn sink(&self) -> Option<&Path> {
        self.sink.as_deref()
    }

    /// Records one event at the current time. The steady-state cost:
    /// one relaxed fetch-add plus one short slot-mutex store.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        self.record_at(self.telemetry.now_us(), kind, a, b);
    }

    /// Records one event at an explicit telemetry-clock time.
    pub fn record_at(&self, at_us: u64, kind: EventKind, a: u64, b: u64) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[idx].lock().expect("recorder slot poisoned") =
            Some(FlightEvent { at_us, kind, a, b });
    }

    /// The resident event window, sorted by time.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| *s.lock().expect("recorder slot poisoned"))
            .collect();
        out.sort_by_key(|e| e.at_us);
        out
    }

    /// Opens an incident: snapshots the ring, boosts trace sampling to
    /// 100% for the post-trigger window, and schedules the bundle.
    /// Returns `false` (and does nothing) while an incident is already
    /// open or the post-close cooldown is running — one sustained breach
    /// yields exactly one bundle.
    ///
    /// `reason` names the trigger (e.g. `slo:latency`); `context_json`
    /// is a JSON object describing the breach (burn rates, states),
    /// embedded verbatim in the bundle.
    pub fn trigger(&self, reason: &str, context_json: String) -> bool {
        let now_us = self.telemetry.now_us();
        let mut state = self.state.lock().expect("recorder state poisoned");
        if state.pending.is_some() {
            return false;
        }
        if let Some(closed) = state.last_close_us {
            if now_us < closed.saturating_add(self.cfg.cooldown.as_micros() as u64) {
                return false;
            }
        }
        state.next_id += 1;
        let id = state.next_id;
        drop(state);
        // Record the trigger itself, then snapshot — the event is part
        // of the evidence.
        self.record_at(now_us, EventKind::Trigger, id, 0);
        let events = self.events();
        let due_us = now_us.saturating_add(self.cfg.post_trigger.as_micros() as u64);
        self.telemetry.boost_sampling_until(due_us);
        self.telemetry
            .registry()
            .counter(
                "maxk_serve_incidents_total",
                &[],
                "Flight-recorder incidents triggered",
            )
            .inc();
        let mut state = self.state.lock().expect("recorder state poisoned");
        state.pending = Some(Pending {
            id,
            reason: reason.to_string(),
            context_json,
            trigger_us: now_us,
            due_us,
            events,
        });
        true
    }

    /// True while a triggered incident has not yet finalized.
    pub fn incident_open(&self) -> bool {
        self.state
            .lock()
            .expect("recorder state poisoned")
            .pending
            .is_some()
    }

    /// Finalizes the open incident once its post-trigger window has
    /// elapsed (or immediately when `force` — the shutdown path, so a
    /// breach near exit still emits its bundle). Collects the boosted
    /// span window and the registry snapshot, writes the bundle to the
    /// sink, and starts the cooldown. Returns the closed report.
    pub fn finalize_due(&self, force: bool) -> Option<IncidentReport> {
        let now_us = self.telemetry.now_us();
        let pending = {
            let mut state = self.state.lock().expect("recorder state poisoned");
            match &state.pending {
                Some(p) if force || now_us >= p.due_us => state.pending.take(),
                _ => None,
            }
        }?;
        let spans = self.telemetry.spans();
        let report = IncidentReport {
            id: pending.id,
            reason: pending.reason,
            trigger_us: pending.trigger_us,
            finalize_us: now_us,
            events: pending.events,
            spans,
            path: None,
        };
        let bundle = self.render_bundle(&report, &pending.context_json);
        let path = self.sink.as_ref().and_then(|dir| {
            let path = dir.join(format!("incident-{:04}.json", report.id));
            std::fs::create_dir_all(dir).ok()?;
            std::fs::write(&path, bundle.as_bytes()).ok()?;
            Some(path)
        });
        let report = IncidentReport { path, ..report };
        let mut state = self.state.lock().expect("recorder state poisoned");
        state.last_close_us = Some(now_us);
        state.incidents.push(report.clone());
        Some(report)
    }

    /// Every closed incident so far.
    pub fn incidents(&self) -> Vec<IncidentReport> {
        self.state
            .lock()
            .expect("recorder state poisoned")
            .incidents
            .clone()
    }

    /// Renders the self-contained `maxk-incident-v1` bundle.
    fn render_bundle(&self, report: &IncidentReport, context_json: &str) -> String {
        use std::fmt::Write as _;
        let mut events = String::new();
        for (i, e) in report.events.iter().enumerate() {
            if i > 0 {
                events.push(',');
            }
            let _ = write!(
                events,
                "{{\"at_us\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.at_us,
                e.kind.label(),
                e.a,
                e.b
            );
        }
        let registry = super::export::render_metrics_json(
            &[],
            &[],
            Some(&self.telemetry.registry().snapshot()),
        );
        let context = if context_json.is_empty() {
            "{}"
        } else {
            context_json
        };
        format!(
            "{{\"schema\":\"maxk-incident-v1\",\"id\":{},\"reason\":\"{}\",\"trigger_us\":{},\
             \"finalize_us\":{},\"context\":{},\"config\":{},\"events\":[{}],\"trace\":{},\
             \"registry\":{}}}",
            report.id,
            super::export::escape_json_str(&report.reason),
            report.trigger_us,
            report.finalize_us,
            context,
            if self.config_json.is_empty() {
                "{}"
            } else {
                &self.config_json
            },
            events,
            chrome_trace_json(&report.spans),
            registry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryConfig;

    fn recorder(cfg: RecorderConfig) -> FlightRecorder {
        let tel = Arc::new(Telemetry::new(TelemetryConfig::default()));
        FlightRecorder::new(cfg, tel, "{}".to_string(), None)
    }

    #[test]
    fn ring_never_exceeds_byte_bound() {
        let cfg = RecorderConfig {
            max_bytes: 1024,
            ..RecorderConfig::default()
        };
        let rec = recorder(cfg);
        assert!(rec.ring_bytes() <= 1024);
        let cap = rec.capacity();
        for i in 0..(cap * 3) {
            rec.record_at(i as u64, EventKind::BatchFormed, 1, 1);
        }
        assert!(rec.events().len() <= cap);
        assert!(rec.ring_bytes() <= 1024);
    }

    #[test]
    fn ring_keeps_newest_events() {
        let rec = recorder(RecorderConfig {
            max_bytes: 4 * std::mem::size_of::<FlightEvent>(),
            ..RecorderConfig::default()
        });
        assert_eq!(rec.capacity(), 4);
        for i in 0..10u64 {
            rec.record_at(i, EventKind::Replan, i, 0);
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].a, 6);
        assert_eq!(events[3].a, 9);
    }

    #[test]
    fn trigger_suppressed_while_open_and_during_cooldown() {
        let rec = recorder(RecorderConfig {
            post_trigger: Duration::from_millis(0),
            cooldown: Duration::from_secs(3600),
            ..RecorderConfig::default()
        });
        rec.record(EventKind::ShedBurst, 5, 0);
        assert!(rec.trigger("slo:latency", "{}".to_string()));
        assert!(rec.incident_open());
        assert!(!rec.trigger("slo:latency", "{}".to_string()));
        let report = rec.finalize_due(false).expect("due immediately");
        assert_eq!(report.id, 1);
        assert!(report.events.iter().any(|e| e.kind == EventKind::ShedBurst));
        assert!(report
            .events
            .iter()
            .any(|e| e.kind == EventKind::Trigger && e.a == 1));
        // Cooldown (1h) suppresses the next trigger.
        assert!(!rec.trigger("slo:latency", "{}".to_string()));
        assert_eq!(rec.incidents().len(), 1);
    }

    #[test]
    fn trigger_boosts_sampling_and_bundle_carries_spans() {
        let tel = Arc::new(Telemetry::new(TelemetryConfig::default()));
        let rec = FlightRecorder::new(
            RecorderConfig {
                post_trigger: Duration::from_millis(200),
                ..RecorderConfig::default()
            },
            Arc::clone(&tel),
            "{}".to_string(),
            None,
        );
        // Sampling is 0.0: no traces before the trigger.
        assert!(tel.begin_trace(0, 1).is_none());
        assert!(rec.trigger("slo:latency", "{}".to_string()));
        // Boost window: everything traces.
        assert!(tel.spans_enabled());
        assert!(tel.begin_trace(0, 1).is_some());
        tel.push_span(
            "forward",
            1,
            std::time::Instant::now(),
            Duration::from_micros(40),
            0,
        );
        let report = rec.finalize_due(true).expect("forced");
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "forward");
    }

    #[test]
    fn bundle_written_to_sink_is_self_contained() {
        let dir = std::env::temp_dir().join(format!(
            "maxk-recorder-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tel = Arc::new(Telemetry::new(TelemetryConfig::default()));
        tel.registry()
            .counter("maxk_serve_queries_total", &[], "answered")
            .add(7);
        let rec = FlightRecorder::new(
            RecorderConfig::default(),
            tel,
            "{\"workers\":2}".to_string(),
            Some(dir.clone()),
        );
        rec.record(EventKind::EpochSwap, 3, 11);
        assert!(rec.trigger("slo:staleness", "{\"fast_burn\":9.0}".to_string()));
        let report = rec.finalize_due(true).expect("forced");
        let path = report.path.expect("bundle written");
        let body = std::fs::read_to_string(&path).expect("bundle readable");
        assert!(body.contains("\"schema\":\"maxk-incident-v1\""));
        assert!(body.contains("\"reason\":\"slo:staleness\""));
        assert!(body.contains("\"kind\":\"epoch_swap\""));
        assert!(body.contains("\"fast_burn\":9.0"));
        assert!(body.contains("\"workers\":2"));
        assert!(body.contains("maxk_serve_queries_total"));
        assert!(body.contains("\"traceEvents\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
