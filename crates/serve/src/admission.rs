//! Admission control and backpressure: the bounded ingress between
//! clients and the micro-batcher.
//!
//! The serving stack's original ingress was an unbounded `mpsc` channel:
//! when offered load exceeds forward throughput, the queue grows without
//! bound, every query's latency grows with it, and p99 is a function of
//! how long the overload has lasted rather than of the system. This
//! module turns overload into a *measured, bounded regime*:
//!
//! * **Bounded queue** — at most [`AdmissionConfig::capacity`] queries
//!   wait for a batch slot; the depth (and its peak) are observable
//!   gauges.
//! * **Overload policy** ([`OverloadPolicy`]) — what happens when a query
//!   arrives and the queue is full: block the submitter (closed-loop
//!   backpressure), reject the newcomer, drop the oldest waiter, or shed
//!   deadline-blown work before it wastes a forward.
//! * **Per-client fairness** ([`FairnessConfig`]) — a token bucket per
//!   client caps any one client's admitted rate, so a hot client under
//!   Zipf traffic cannot monopolize the queue; when fairness is on, the
//!   `DropOldest`/`DeadlineShed` eviction victim is the *most-queued*
//!   client's oldest entry rather than the global oldest, which keeps a
//!   light client's only waiting query from being evicted by a flood
//!   (see [`AdmissionQueue::submit`] for the exact guarantee).
//! * **Exact accounting** — every submitted query ends in exactly one of
//!   *answered*, *rejected* or *shed* (plus *still queued* while the
//!   server runs): `submitted == popped + rejected + shed + depth` holds
//!   under the queue's lock at all times, so overload experiments can
//!   reconcile their books to the query.
//! * **Adaptive budgets** ([`AdaptiveController`]) — instead of
//!   hand-set capacity and deadline, the queue can derive both from a
//!   live EWMA of *observed* batch service time (fed by the serving
//!   workers after every forward, re-planned on engine epoch swap).
//!   The derived values replace [`AdmissionConfig::capacity`] /
//!   [`AdmissionConfig::default_deadline`] the moment the first
//!   measurement lands; until then the static values apply. The
//!   accounting identity is unaffected: a capacity shrink simply makes
//!   the full-queue policy machinery engage earlier, and every entry it
//!   removes is counted shed exactly as before.
//! * **Weighted classes** ([`ClassWeights`]) — service-coupled token
//!   buckets per traffic class (e.g. `paid`/`internal`/`batch`),
//!   layered over per-client fairness. Each *pop* (one unit of service)
//!   refills one credit split across classes in proportion to weight;
//!   credits are only charged when a submission hits a full queue, so
//!   shaping is work-conserving — under light load classes are
//!   indistinguishable, under sustained overload admitted throughput is
//!   proportional to weight and a class out of credits is rejected with
//!   [`RejectReason::ClassThrottled`]. Per-class books obey
//!   `submitted == popped + rejected + shed + queued` class by class.
//!
//! The queue is generic over its payload `T` so the policy/fairness
//! machinery is testable without spinning up a server (the proptest
//! suite drives it with integer payloads); `maxk_serve::server` feeds it
//! boxed requests.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{ClientStats, EvictedClientStats, LatencyHistogram, LatencySummary};
use crate::ServeError;

/// What the admission layer does with a query that arrives while the
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the submitting thread until space frees up — classic
    /// backpressure. Bounds memory but not client-observed latency; the
    /// baseline the shedding policies are measured against.
    Block,
    /// Turn the incoming query away with
    /// [`RejectReason::QueueFull`]. First-come-first-served: waiting
    /// work is never discarded.
    RejectNewest,
    /// Evict a waiting query (shed with [`ShedReason::Evicted`]) to
    /// admit the new one — freshest-work-wins. Without fairness the
    /// victim is the global oldest entry; with fairness it is the
    /// most-queued client's oldest entry.
    DropOldest,
    /// [`OverloadPolicy::DropOldest`] overflow behavior, plus
    /// deadline-aware shedding: entries whose latency budget has already
    /// elapsed are shed ([`ShedReason::DeadlineBlown`]) — at overflow to
    /// make room, and at dequeue so a blown query never costs a forward
    /// pass. Budgets come from the per-query deadline or
    /// [`AdmissionConfig::default_deadline`].
    DeadlineShed,
}

impl OverloadPolicy {
    /// Stable lower-case label — the single source of the policy names
    /// used by `serve_bench`'s `--admission-policies` flag and written
    /// into `BENCH_admission.json`.
    pub fn label(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::RejectNewest => "reject",
            OverloadPolicy::DropOldest => "drop",
            OverloadPolicy::DeadlineShed => "deadline",
        }
    }
}

/// Per-client token-bucket rate limiting.
///
/// Each client starts with `burst` tokens; a submission costs one token
/// and tokens refill continuously at `rate_per_s`. A client out of
/// tokens is rejected with [`RejectReason::RateLimited`] regardless of
/// queue depth, capping any single client's sustained admitted rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessConfig {
    /// Sustained admitted queries per second per client.
    pub rate_per_s: f64,
    /// Bucket size: how far a client may burst above the sustained rate.
    /// Must be at least 1 for the client to ever admit anything.
    pub burst: f64,
}

/// Tuning knobs for [`AdaptiveController`].
///
/// The controller maintains an exponentially-weighted moving average
/// (EWMA) of the batch service time the workers actually observe, and
/// derives from it the two budgets that were previously hand-set per
/// graph/batch-size combination:
///
/// * **deadline** — `deadline_multiplier x EWMA` (or the fixed
///   `latency_target` when one is given): a query may wait a few
///   batch-times, but not an unbounded multiple of one.
/// * **capacity** — the number of queries the worker pool can drain
///   within one deadline budget, `workers x max_batch x (deadline /
///   EWMA)`, clamped to `[min_capacity, max_capacity]`. Admitting more
///   than that merely manufactures deadline-blown work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// observation. Default `0.2`.
    pub alpha: f64,
    /// Deadline budget as a multiple of the EWMA batch service time
    /// (used when `latency_target` is `None`). Must be `>= 1`.
    ///
    /// Default `2.0`: the derived capacity then equals the work the
    /// pool drains in one budget, so a query admitted to a full queue
    /// just barely makes its deadline, and an answered query's p99
    /// lands near `(multiplier + 2) x EWMA` (queue wait up to one
    /// budget, then its own batch's channel hop and service). Raising
    /// the multiplier trades latency for fewer sheds under bursts.
    pub deadline_multiplier: f64,
    /// Fixed end-to-end latency target. When set, the derived deadline
    /// is this value and only the capacity adapts to the measured
    /// service time. Default `None`.
    pub latency_target: Option<Duration>,
    /// Lower clamp on the derived capacity. Keep this strictly above
    /// the expected number of active clients so the fairness
    /// non-starvation precondition (see [`AdmissionQueue::submit`])
    /// survives adaptation. Default `64`.
    pub min_capacity: usize,
    /// Upper clamp on the derived capacity. Default `1 << 20`.
    pub max_capacity: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            alpha: 0.2,
            deadline_multiplier: 2.0,
            latency_target: None,
            min_capacity: 64,
            max_capacity: 1 << 20,
        }
    }
}

/// Point-in-time view of an [`AdaptiveController`] (exported as the
/// `maxk_serve_admission_*` adaptive gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptiveSnapshot {
    /// EWMA of observed batch service time, microseconds (0 before the
    /// first observation).
    pub ewma_us: u64,
    /// Batches observed so far.
    pub samples: u64,
    /// Capacity currently derived from the EWMA (0 before the first
    /// observation).
    pub derived_capacity: u64,
    /// Deadline budget currently derived from the EWMA, microseconds
    /// (0 before the first observation).
    pub derived_deadline_us: u64,
    /// Times the average was restarted because the engine epoch
    /// changed (snapshot/graph swap).
    pub replans: u64,
    /// Deadline tighten factor in thousandths (1000 = no tightening;
    /// 500 = the SLO feedback halved the derived deadline).
    pub tighten_permille: u64,
}

/// Live batch-service-time measurement and the budgets derived from it.
///
/// One controller is shared (via `Arc`) between the serving workers —
/// which call [`AdaptiveController::observe_batch`] after every batch
/// forward — and the [`AdmissionQueue`], which reads
/// [`derived_capacity`](AdaptiveController::derived_capacity) /
/// [`derived_deadline`](AdaptiveController::derived_deadline) on every
/// submission. All state is atomics: observation never takes the
/// admission lock, and a reader sees either the pre- or post-update
/// value, both of which are valid budgets.
///
/// An observation carrying a new engine **epoch** (a [`DynamicEngine`]
/// mutation swapped the graph) *re-plans*: the average restarts at that
/// observation instead of dragging the stale graph's service time
/// along. `serve_bench` uses the same type for its startup capacity
/// measurement, so the bench and the server share one measurement path.
///
/// [`DynamicEngine`]: crate::mutation::DynamicEngine
#[derive(Debug)]
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
    max_batch: u64,
    workers: u64,
    ewma_us: AtomicU64,
    samples: AtomicU64,
    last_epoch: AtomicU64,
    replans: AtomicU64,
    /// Deadline tighten factor in thousandths (1000 = none). Set by the
    /// SLO feedback loop on breach, restored on recovery.
    tighten_permille: AtomicU64,
}

impl AdaptiveController {
    /// Creates a controller for a server draining batches of up to
    /// `max_batch` queries on `workers` parallel workers.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`, `deadline_multiplier <
    /// 1`, `max_batch == 0`, `workers == 0`, `min_capacity == 0`, or
    /// `min_capacity > max_capacity`.
    pub fn new(cfg: AdaptiveConfig, max_batch: usize, workers: usize) -> Self {
        assert!(
            cfg.alpha.is_finite() && cfg.alpha > 0.0 && cfg.alpha <= 1.0,
            "adaptive alpha must be in (0, 1] (got {})",
            cfg.alpha
        );
        assert!(
            cfg.deadline_multiplier.is_finite() && cfg.deadline_multiplier >= 1.0,
            "adaptive deadline multiplier must be >= 1 (got {})",
            cfg.deadline_multiplier
        );
        assert!(max_batch > 0, "adaptive max_batch must be nonzero");
        assert!(workers > 0, "adaptive worker count must be nonzero");
        assert!(
            0 < cfg.min_capacity && cfg.min_capacity <= cfg.max_capacity,
            "adaptive capacity clamp must satisfy 0 < min <= max (got {}..={})",
            cfg.min_capacity,
            cfg.max_capacity
        );
        AdaptiveController {
            cfg,
            max_batch: max_batch as u64,
            workers: workers as u64,
            ewma_us: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            tighten_permille: AtomicU64::new(1000),
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Feeds one observed batch service time (wall time of the batch's
    /// forward pass) measured against engine `epoch`.
    ///
    /// Sub-microsecond observations count as 1us so a cache-hot batch
    /// can never zero the average out. An epoch change restarts the
    /// average at this observation (re-plan).
    pub fn observe_batch(&self, service: Duration, epoch: u64) {
        let us = service.as_micros().clamp(1, u128::from(u64::MAX)) as u64;
        let prev_epoch = self.last_epoch.swap(epoch, Ordering::AcqRel);
        if prev_epoch != epoch && self.samples.load(Ordering::Acquire) > 0 {
            self.ewma_us.store(us, Ordering::Release);
            self.replans.fetch_add(1, Ordering::Relaxed);
        } else {
            let alpha = self.cfg.alpha;
            let _ = self
                .ewma_us
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |old| {
                    Some(if old == 0 {
                        us
                    } else {
                        ((old as f64) + alpha * (us as f64 - old as f64))
                            .round()
                            .max(1.0) as u64
                    })
                });
        }
        self.samples.fetch_add(1, Ordering::AcqRel);
    }

    /// Current EWMA of batch service time; `None` before the first
    /// observation.
    pub fn service_ewma(&self) -> Option<Duration> {
        let us = self.ewma_us.load(Ordering::Acquire);
        (us > 0).then(|| Duration::from_micros(us))
    }

    /// The deadline budget derived from the current EWMA, scaled by the
    /// current [tighten factor](AdaptiveController::set_deadline_tighten);
    /// `None` before the first observation (static config applies until
    /// then).
    pub fn derived_deadline(&self) -> Option<Duration> {
        let base = self.service_ewma().map(|t| match self.cfg.latency_target {
            Some(target) => target,
            None => Duration::from_micros(
                (t.as_micros() as f64 * self.cfg.deadline_multiplier).round() as u64,
            ),
        })?;
        let permille = self.tighten_permille.load(Ordering::Relaxed);
        if permille >= 1000 {
            return Some(base);
        }
        let scaled = (base.as_micros() as f64 * permille as f64 / 1000.0).round() as u64;
        Some(Duration::from_micros(scaled.max(1)))
    }

    /// Sets the SLO-feedback tighten factor: while a latency objective
    /// is breached the server scales the derived deadline by `factor`
    /// (in `(0, 1]`), shedding harder until the burn clears. `1.0`
    /// restores normal budgets. Values outside `(0, 1]` clamp.
    pub fn set_deadline_tighten(&self, factor: f64) {
        let permille = if factor.is_finite() {
            (factor * 1000.0).round().clamp(1.0, 1000.0) as u64
        } else {
            1000
        };
        self.tighten_permille.store(permille, Ordering::Relaxed);
    }

    /// The current tighten factor (1.0 when no feedback is applied).
    pub fn deadline_tighten(&self) -> f64 {
        self.tighten_permille.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The queue capacity derived from the current EWMA (queries the
    /// worker pool drains within one deadline budget, clamped); `None`
    /// before the first observation.
    pub fn derived_capacity(&self) -> Option<usize> {
        let t = self.ewma_us.load(Ordering::Acquire);
        if t == 0 {
            return None;
        }
        let budget_us = self.derived_deadline()?.as_micros() as f64;
        let drain = (self.workers * self.max_batch) as f64 * (budget_us / t as f64);
        Some((drain.round() as usize).clamp(self.cfg.min_capacity, self.cfg.max_capacity))
    }

    /// Batches observed so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Acquire)
    }

    /// Consistent-enough point-in-time view for gauges (individual
    /// fields are read independently; each is internally valid).
    pub fn snapshot(&self) -> AdaptiveSnapshot {
        AdaptiveSnapshot {
            ewma_us: self.ewma_us.load(Ordering::Acquire),
            samples: self.samples.load(Ordering::Acquire),
            derived_capacity: self.derived_capacity().unwrap_or(0) as u64,
            derived_deadline_us: self
                .derived_deadline()
                .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
            replans: self.replans.load(Ordering::Acquire),
            tighten_permille: self.tighten_permille.load(Ordering::Relaxed),
        }
    }
}

/// Maximum number of traffic classes a [`ClassWeights`] can hold.
///
/// Fixed so the whole configuration stays `Copy` (classes live in
/// [`AdmissionConfig`], which travels by value through builders).
pub const MAX_CLASSES: usize = 8;

/// Weighted traffic classes for service-coupled admission shaping.
///
/// Classes are indexed `0..len` in registration order; a query names
/// its class by index (class `0` is the default for untagged traffic).
/// See the [module docs](self) for the credit mechanics: one credit per
/// pop, split by weight, charged only at a full queue, per-class burst
/// cap.
///
/// # Examples
///
/// ```
/// use maxk_serve::admission::ClassWeights;
///
/// let classes = ClassWeights::new()
///     .with_class("paid", 6.0)
///     .with_class("internal", 3.0)
///     .with_class("batch", 1.0);
/// assert_eq!(classes.len(), 3);
/// assert_eq!(classes.name(0), "paid");
/// assert_eq!(classes.weight(2), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassWeights {
    weights: [f64; MAX_CLASSES],
    names: [&'static str; MAX_CLASSES],
    len: usize,
    burst: f64,
}

impl Default for ClassWeights {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassWeights {
    /// An empty class table (add classes with
    /// [`with_class`](ClassWeights::with_class)).
    pub fn new() -> Self {
        ClassWeights {
            weights: [0.0; MAX_CLASSES],
            names: [""; MAX_CLASSES],
            len: 0,
            burst: 16.0,
        }
    }

    /// Appends a class with the given display name and weight,
    /// returning its index implicitly (registration order).
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_CLASSES`] classes or when `weight` is not
    /// strictly positive and finite (a zero-weight class would never
    /// refill and starve, which the shaping is proven not to do).
    pub fn with_class(mut self, name: &'static str, weight: f64) -> Self {
        assert!(self.len < MAX_CLASSES, "at most {MAX_CLASSES} classes");
        assert!(
            weight.is_finite() && weight > 0.0,
            "class weight must be finite and > 0 (got {weight})"
        );
        self.weights[self.len] = weight;
        self.names[self.len] = name;
        self.len += 1;
        self
    }

    /// Sets the per-class credit cap (how far a class may burst at a
    /// full queue after a quiet spell). Must be `>= 1`. Default `16`.
    ///
    /// # Panics
    ///
    /// Panics when `burst` is below 1 or not finite.
    pub fn with_burst(mut self, burst: f64) -> Self {
        assert!(
            burst.is_finite() && burst >= 1.0,
            "class burst must be >= 1 (got {burst})"
        );
        self.burst = burst;
        self
    }

    /// Number of configured classes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Display name of class `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn name(&self, i: usize) -> &'static str {
        assert!(i < self.len, "class index {i} out of range");
        self.names[i]
    }

    /// Weight of class `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn weight(&self, i: usize) -> f64 {
        assert!(i < self.len, "class index {i} out of range");
        self.weights[i]
    }

    /// Per-class credit cap.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    fn total_weight(&self) -> f64 {
        self.weights[..self.len].iter().sum()
    }
}

/// Per-class admission accounting (one row per configured class; empty
/// when no [`ClassWeights`] are configured).
///
/// The identity `submitted == popped + rejected + shed + queued` holds
/// for every row, under the queue lock, at all times.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Class index (the tag queries carry).
    pub class: u32,
    /// Display name from [`ClassWeights`].
    pub name: &'static str,
    /// Configured weight.
    pub weight: f64,
    /// Queries submitted under this class.
    pub submitted: u64,
    /// Queries rejected at the door (rate-limited, queue-full, or
    /// class-throttled).
    pub rejected: u64,
    /// Admitted queries shed before a forward.
    pub shed: u64,
    /// Queries handed to the consumer.
    pub popped: u64,
    /// Currently queued.
    pub queued: u64,
}

/// Configuration of the admission layer.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum queued (admitted but not yet batched) queries. With an
    /// [`AdaptiveController`] attached this is only the pre-measurement
    /// fallback; the derived capacity governs once observations land.
    pub capacity: usize,
    /// What to do when the queue is full.
    pub policy: OverloadPolicy,
    /// Per-client token-bucket fairness; `None` disables rate limiting
    /// and fairness-aware victim selection.
    pub fairness: Option<FairnessConfig>,
    /// Latency budget applied to queries that do not carry their own
    /// deadline (only enforced under [`OverloadPolicy::DeadlineShed`]).
    /// With an [`AdaptiveController`] attached, the derived deadline
    /// takes precedence over this once observations land.
    pub default_deadline: Option<Duration>,
    /// Weighted traffic classes; `None` disables class shaping (all
    /// queries behave as one unshaped class).
    pub classes: Option<ClassWeights>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 1024,
            policy: OverloadPolicy::Block,
            fairness: None,
            default_deadline: None,
            classes: None,
        }
    }
}

/// Why a query was turned away at the door (never entered the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue was full under [`OverloadPolicy::RejectNewest`].
    QueueFull,
    /// The client's token bucket was empty ([`FairnessConfig`]).
    RateLimited,
    /// The queue was full and the query's traffic class was out of
    /// credits ([`ClassWeights`]) — the class is consuming more than
    /// its weighted share of service.
    ClassThrottled,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::RateLimited => write!(f, "client rate limited"),
            RejectReason::ClassThrottled => write!(f, "traffic class over weighted share"),
        }
    }
}

/// Why an *admitted* query was dropped before reaching a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Evicted to make room for a newer query
    /// ([`OverloadPolicy::DropOldest`] / overflow under
    /// [`OverloadPolicy::DeadlineShed`]).
    Evicted,
    /// Its latency budget elapsed before a batch slot opened
    /// ([`OverloadPolicy::DeadlineShed`]).
    DeadlineBlown,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::Evicted => write!(f, "evicted under overload"),
            ShedReason::DeadlineBlown => write!(f, "latency budget blown in queue"),
        }
    }
}

/// One admitted query waiting in (or popped from) the queue.
#[derive(Debug)]
pub struct Entry<T> {
    /// Submitting client's identity (fairness/accounting key).
    pub client: u64,
    /// Traffic class index ([`ClassWeights`]); 0 for untagged traffic.
    pub class: u32,
    /// When the entry entered the queue.
    pub enqueued: Instant,
    /// Absolute latency deadline, if any.
    pub deadline: Option<Instant>,
    /// Caller payload (the server boxes its request here).
    pub payload: T,
}

impl<T> Entry<T> {
    /// True when the entry's deadline (if any) has passed at `now`.
    fn blown(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Outcome of [`AdmissionQueue::submit`].
#[derive(Debug)]
pub enum Submission<T> {
    /// The query entered the queue. `shed` lists entries that were
    /// evicted (or found deadline-blown) to make room — the caller owns
    /// notifying their submitters.
    Admitted {
        /// Entries removed from the queue by this admission, tagged with
        /// why.
        shed: Vec<(Entry<T>, ShedReason)>,
    },
    /// The query was turned away; it never entered the queue.
    Rejected(RejectReason),
}

/// Result of one [`AdmissionQueue::pop`] call.
#[derive(Debug)]
pub struct Popped<T> {
    /// Deadline-blown entries removed while looking for a live one
    /// (always [`ShedReason::DeadlineBlown`]; the caller notifies them).
    pub shed: Vec<Entry<T>>,
    /// The next admitted query, if one arrived before the wait deadline.
    pub item: Option<Entry<T>>,
    /// True when the queue is closed *and* drained — the consumer should
    /// exit. While entries remain after [`AdmissionQueue::close`], pops
    /// keep returning them so already-admitted work is flushed.
    pub closed: bool,
}

/// The cumulative top-line admission books (see
/// [`AdmissionQueue::totals`]) — cheap enough to read on a monitor
/// tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionTotals {
    /// Queries ever submitted.
    pub submitted: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
    /// Queries shed after admission.
    pub shed: u64,
    /// Queries popped toward batches.
    pub popped: u64,
    /// Current queue depth.
    pub depth: u64,
}

/// Point-in-time admission accounting (global and per client).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdmissionSnapshot {
    /// Queries offered to [`AdmissionQueue::submit`] while open.
    pub submitted: u64,
    /// Queries turned away at the door (never queued).
    pub rejected: u64,
    /// Admitted queries dropped before a forward (evicted or
    /// deadline-blown).
    pub shed: u64,
    /// Of `shed`, those dropped because their deadline passed.
    pub deadline_shed: u64,
    /// Admitted queries handed to the consumer so far.
    pub popped: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Highest queue depth observed since construction.
    pub queue_depth_peak: u64,
    /// Per-client accounting ([`ClientStats`]: admission books plus the
    /// served-side answered count and latency histogram, recorded by the
    /// workers via [`AdmissionQueue::record_answered`] so both sides live
    /// in one map under one eviction policy), sorted by client id.
    pub clients: Vec<ClientStats>,
    /// Aggregate of per-client states evicted to honor
    /// [`MAX_TRACKED_CLIENTS`]. Each evicted `(client, epoch)` state is
    /// merged exactly once, so `Σ clients + evicted` reconciles with the
    /// global counters even under eviction churn.
    pub evicted: EvictedClientStats,
    /// Per-class accounting, one row per configured [`ClassWeights`]
    /// class (empty without class shaping).
    pub classes: Vec<ClassStats>,
    /// Adaptive-controller gauges, when one is attached.
    pub adaptive: Option<AdaptiveSnapshot>,
}

#[derive(Debug)]
struct ClientState {
    /// Accounting epoch, minted per tracking incarnation. Idle-candidate
    /// entries carry the epoch they were enqueued under and only match a
    /// state with the same epoch, so an id that was evicted and
    /// re-tracked is never confused with its previous incarnation — the
    /// dedup that keeps each state's histogram merged exactly once.
    epoch: u64,
    tokens: f64,
    last_refill: Instant,
    queued: usize,
    submitted: u64,
    answered: u64,
    rejected: u64,
    shed: u64,
    hist: LatencyHistogram,
}

/// Aggregate the evicted per-client states merge into (exactly once per
/// state, keyed by accounting epoch).
#[derive(Debug, Default)]
struct EvictedAggregate {
    clients: u64,
    submitted: u64,
    answered: u64,
    rejected: u64,
    shed: u64,
    hist: LatencyHistogram,
}

impl EvictedAggregate {
    fn merge(&mut self, state: &ClientState) {
        self.clients += 1;
        self.submitted += state.submitted;
        self.answered += state.answered;
        self.rejected += state.rejected;
        self.shed += state.shed;
        self.hist.merge(&state.hist);
    }
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<Entry<T>>,
    clients: HashMap<u64, ClientState>,
    /// `(id, epoch)` pairs whose queued count last dropped to 0 —
    /// amortized-O(1) eviction candidates for the
    /// [`MAX_TRACKED_CLIENTS`] bound (validated lazily at eviction time;
    /// bounded, with a linear-scan fallback when stale). The epoch pins
    /// the candidate to one tracking incarnation, so a stale candidate
    /// can never evict — and merge — a later incarnation of the same id.
    idle_candidates: VecDeque<(u64, u64)>,
    /// Epoch minted for the next fresh [`ClientState`].
    next_epoch: u64,
    /// Where evicted per-client states go; merged exactly once each.
    evicted: EvictedAggregate,
    closed: bool,
    submitted: u64,
    rejected: u64,
    shed: u64,
    deadline_shed: u64,
    popped: u64,
    depth_peak: u64,
    /// Class shaping state; `None` mirrors `cfg.classes` (kept inside
    /// `Inner` so `shed_at`/`pop` bookkeeping can reach it without
    /// re-borrowing the config).
    classes: Option<ClassWeights>,
    /// Spendable credits per class (refilled on pop, charged at a full
    /// queue).
    class_credits: [f64; MAX_CLASSES],
    class_submitted: [u64; MAX_CLASSES],
    class_rejected: [u64; MAX_CLASSES],
    class_shed: [u64; MAX_CLASSES],
    class_popped: [u64; MAX_CLASSES],
    class_queued: [usize; MAX_CLASSES],
}

/// Cap on tracked per-client states (token bucket + accounting +
/// latency histogram). Client ids are caller-supplied `u64`s: without a
/// bound, a server fed one fresh id per connection would grow its client
/// map — and the cost of every stats snapshot — without limit. Past the
/// cap, admitting a *new* client evicts an idle (nothing queued)
/// client's state: its counters and latency histogram merge — exactly
/// once, deduped by accounting epoch — into the
/// [`AdmissionSnapshot::evicted`] aggregate (so totals still reconcile),
/// its per-client breakdown entry disappears, and its token bucket
/// resets to a full burst if it returns. Clients with queued entries are
/// never evicted, and there are at most `capacity` of those.
pub const MAX_TRACKED_CLIENTS: usize = 8192;

impl<T> Inner<T> {
    /// Marks `(id, epoch)` as an eviction candidate (the state's queued
    /// count just hit 0). Duplicates are fine — candidates are validated
    /// against the live state's epoch at eviction — and the list is
    /// bounded so it cannot itself become a leak.
    fn mark_idle(&mut self, id: u64, epoch: u64) {
        if self.idle_candidates.len() < MAX_TRACKED_CLIENTS {
            self.idle_candidates.push_back((id, epoch));
        }
    }

    /// Removes `id`'s state and merges it into the evicted aggregate.
    fn evict(&mut self, id: u64) {
        let state = self.clients.remove(&id).expect("evicting a tracked id");
        self.evicted.merge(&state);
    }

    fn client(&mut self, id: u64, now: Instant, burst: f64) -> &mut ClientState {
        if !self.clients.contains_key(&id) {
            if self.clients.len() >= MAX_TRACKED_CLIENTS {
                // Amortized-O(1) path: pop candidates until one matches a
                // live idle state *of the same epoch*. Each stale
                // candidate is discarded for good, so total validation
                // work is bounded by total candidate pushes; the epoch
                // check keeps a candidate from an evicted incarnation
                // from touching a re-tracked one.
                let mut evicted = false;
                while let Some((idle, epoch)) = self.idle_candidates.pop_front() {
                    if self
                        .clients
                        .get(&idle)
                        .is_some_and(|s| s.epoch == epoch && s.queued == 0)
                    {
                        self.evict(idle);
                        evicted = true;
                        break;
                    }
                }
                if !evicted {
                    // Fallback (candidate list exhausted/stale): linear scan.
                    if let Some(&idle) = self
                        .clients
                        .iter()
                        .find(|(_, s)| s.queued == 0)
                        .map(|(id, _)| id)
                    {
                        self.evict(idle);
                    }
                }
            }
            let epoch = self.next_epoch;
            self.next_epoch += 1;
            self.clients.insert(
                id,
                ClientState {
                    epoch,
                    tokens: burst,
                    last_refill: now,
                    queued: 0,
                    submitted: 0,
                    answered: 0,
                    rejected: 0,
                    shed: 0,
                    hist: LatencyHistogram::new(),
                },
            );
        }
        self.clients.get_mut(&id).expect("present or just inserted")
    }

    /// Removes the entry at `idx`, updating shed accounting.
    fn shed_at(&mut self, idx: usize, deadline: bool) -> Entry<T> {
        let entry = self.queue.remove(idx).expect("index in bounds");
        self.shed += 1;
        if deadline {
            self.deadline_shed += 1;
        }
        if self.classes.is_some() {
            let ci = entry.class as usize;
            self.class_shed[ci] += 1;
            self.class_queued[ci] = self.class_queued[ci].saturating_sub(1);
        }
        if let Some(c) = self.clients.get_mut(&entry.client) {
            c.queued = c.queued.saturating_sub(1);
            c.shed += 1;
            let epoch = c.epoch;
            if c.queued == 0 {
                self.mark_idle(entry.client, epoch);
            }
        }
        entry
    }

    /// Sheds every deadline-blown entry (any position). Returns them in
    /// queue order.
    fn shed_blown(&mut self, now: Instant) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].blown(now) {
                out.push(self.shed_at(i, true));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Index of the eviction victim.
    ///
    /// With [`ClassWeights`] configured, class proportionality comes
    /// first: the victim is the oldest entry of the class holding the
    /// most queued entries *per unit weight* (ties: lowest class
    /// index). Otherwise, with fairness, it is the oldest entry of the
    /// client holding the most queued entries (ties: lowest client id);
    /// without either, the global oldest (front).
    fn victim_index(&self, fair: bool) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        if let Some(cw) = &self.classes {
            let victim_class =
                (0..cw.len())
                    .filter(|&i| self.class_queued[i] > 0)
                    .max_by(|&a, &b| {
                        let ra = self.class_queued[a] as f64 / cw.weight(a);
                        let rb = self.class_queued[b] as f64 / cw.weight(b);
                        ra.partial_cmp(&rb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.cmp(&a))
                    })?;
            return self
                .queue
                .iter()
                .position(|e| e.class as usize == victim_class);
        }
        if !fair {
            return Some(0);
        }
        let victim_client = self
            .clients
            .iter()
            .filter(|(_, s)| s.queued > 0)
            .max_by_key(|(id, s)| (s.queued, u64::MAX - *id))
            .map(|(id, _)| *id)?;
        self.queue.iter().position(|e| e.client == victim_client)
    }
}

/// A bounded, policy-governed, per-client-fair ingress queue.
///
/// Producers call [`AdmissionQueue::submit`]; a single consumer (the
/// server's batcher) calls [`AdmissionQueue::pop`]. All policy decisions
/// happen under one mutex, so the accounting invariant
/// `submitted == popped + rejected + shed + depth` is exact at every
/// instant.
///
/// # Examples
///
/// ```
/// use maxk_serve::admission::{
///     AdmissionConfig, AdmissionQueue, OverloadPolicy, RejectReason, Submission,
/// };
///
/// let q: AdmissionQueue<&str> = AdmissionQueue::new(AdmissionConfig {
///     capacity: 1,
///     policy: OverloadPolicy::RejectNewest,
///     ..AdmissionConfig::default()
/// });
/// assert!(matches!(q.submit(0, None, "first"), Ok(Submission::Admitted { .. })));
/// assert!(matches!(
///     q.submit(0, None, "second"),
///     Ok(Submission::Rejected(RejectReason::QueueFull))
/// ));
/// let popped = q.pop(Some(std::time::Instant::now()));
/// assert_eq!(popped.item.unwrap().payload, "first");
/// ```
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    cfg: AdmissionConfig,
    adaptive: Option<Arc<AdaptiveController>>,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// Creates an empty queue with static budgets.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` (nothing could ever be admitted), or
    /// when fairness is configured with `burst < 1` or a negative /
    /// non-finite refill rate (a sub-1 burst would silently reject every
    /// query from every client — a total serving outage is a
    /// misconfiguration, not a policy).
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self::with_controller(cfg, None)
    }

    /// Creates an empty queue, optionally governed by an
    /// [`AdaptiveController`]: once the controller has observations,
    /// its derived capacity replaces [`AdmissionConfig::capacity`] and
    /// its derived deadline slots between the per-query deadline and
    /// [`AdmissionConfig::default_deadline`] in precedence.
    ///
    /// # Panics
    ///
    /// As [`AdmissionQueue::new`].
    pub fn with_controller(
        cfg: AdmissionConfig,
        adaptive: Option<Arc<AdaptiveController>>,
    ) -> Self {
        assert!(cfg.capacity > 0, "admission capacity must be nonzero");
        if let Some(fair) = cfg.fairness {
            assert!(
                fair.burst.is_finite() && fair.burst >= 1.0,
                "fairness burst must be >= 1 (got {}); a sub-1 burst admits nothing",
                fair.burst
            );
            assert!(
                fair.rate_per_s.is_finite() && fair.rate_per_s >= 0.0,
                "fairness refill rate must be finite and >= 0 (got {})",
                fair.rate_per_s
            );
        }
        let mut class_credits = [0.0; MAX_CLASSES];
        if let Some(cw) = &cfg.classes {
            assert!(cw.len() > 0, "class shaping configured with no classes");
            // Every class starts with a full burst so shaping only
            // bites once a class has actually out-consumed its share.
            class_credits[..cw.len()].fill(cw.burst());
        }
        AdmissionQueue {
            cfg,
            adaptive,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                clients: HashMap::new(),
                idle_candidates: VecDeque::new(),
                next_epoch: 0,
                evicted: EvictedAggregate::default(),
                closed: false,
                submitted: 0,
                rejected: 0,
                shed: 0,
                deadline_shed: 0,
                popped: 0,
                depth_peak: 0,
                classes: cfg.classes,
                class_credits,
                class_submitted: [0; MAX_CLASSES],
                class_rejected: [0; MAX_CLASSES],
                class_shed: [0; MAX_CLASSES],
                class_popped: [0; MAX_CLASSES],
                class_queued: [0; MAX_CLASSES],
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configuration the queue was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// The adaptive controller governing this queue, if any.
    pub fn adaptive(&self) -> Option<&Arc<AdaptiveController>> {
        self.adaptive.as_ref()
    }

    /// The capacity currently in force: the adaptive controller's
    /// derived capacity once it has observations, the static
    /// [`AdmissionConfig::capacity`] before.
    pub fn effective_capacity(&self) -> usize {
        self.adaptive
            .as_ref()
            .and_then(|a| a.derived_capacity())
            .unwrap_or(self.cfg.capacity)
    }

    /// The default latency budget currently in force (per-query
    /// deadlines still take precedence).
    pub fn effective_deadline(&self) -> Option<Duration> {
        self.adaptive
            .as_ref()
            .and_then(|a| a.derived_deadline())
            .or(self.cfg.default_deadline)
    }

    /// Offers one query for admission.
    ///
    /// The effective deadline is `deadline`, falling back to
    /// [`AdmissionConfig::default_deadline`] (deadlines are only
    /// *enforced* under [`OverloadPolicy::DeadlineShed`], but always
    /// recorded so the server can count late answers as deadline
    /// misses). Under [`OverloadPolicy::Block`] this call blocks while
    /// the queue is full.
    ///
    /// **Non-starvation guarantee.** With fairness enabled, a policy of
    /// `DropOldest` (or `DeadlineShed`, absent deadlines) and
    /// `capacity` strictly greater than the number of active clients,
    /// an eviction victim always holds at least two queued entries: the
    /// queue is only full when some client has ≥ 2 queued (pigeonhole),
    /// and the most-queued client is the victim. So no client's *last*
    /// waiting query is ever evicted on another client's behalf — every
    /// client with nonzero demand keeps at least one query in flight
    /// until it is popped (the property the admission proptest checks).
    ///
    /// # Errors
    ///
    /// [`ServeError::ChannelClosed`] when the queue is closed (including
    /// while blocked under `Block`).
    pub fn submit(
        &self,
        client: u64,
        deadline: Option<Duration>,
        payload: T,
    ) -> Result<Submission<T>, ServeError> {
        self.submit_classed(client, 0, deadline, payload)
    }

    /// [`AdmissionQueue::submit`] with an explicit traffic class.
    ///
    /// With [`ClassWeights`] configured, a submission that hits a
    /// *full* queue first spends one of its class's credits; a class
    /// out of credits is rejected with
    /// [`RejectReason::ClassThrottled`] before any policy action.
    /// Credits refill one per pop, split across classes by weight, so
    /// under sustained overload each class's admitted throughput is
    /// proportional to its weight — and since every positive-weight
    /// class receives credit on every pop, no class starves (the
    /// class-level analogue of the per-client guarantee above; when
    /// classes and fairness are both configured, eviction victims are
    /// chosen class-first). Below capacity no credit is charged:
    /// shaping is work-conserving.
    ///
    /// # Panics
    ///
    /// Panics when [`ClassWeights`] are configured and `class` is not
    /// a configured index (a misconfigured caller, not traffic).
    /// Without class shaping, `class` is recorded on the entry but has
    /// no effect.
    ///
    /// # Errors
    ///
    /// [`ServeError::ChannelClosed`] when the queue is closed (including
    /// while blocked under `Block`).
    pub fn submit_classed(
        &self,
        client: u64,
        class: u32,
        deadline: Option<Duration>,
        payload: T,
    ) -> Result<Submission<T>, ServeError> {
        let ci = class as usize;
        let shaped = self.cfg.classes.is_some();
        if let Some(cw) = &self.cfg.classes {
            assert!(
                ci < cw.len(),
                "traffic class {class} out of range ({} classes configured)",
                cw.len()
            );
        }
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        if inner.closed {
            return Err(ServeError::ChannelClosed);
        }
        inner.submitted += 1;
        if shaped {
            inner.class_submitted[ci] += 1;
        }
        // Token bucket first: rate limiting applies regardless of depth.
        if let Some(fair) = self.cfg.fairness {
            let state = inner.client(client, now, fair.burst);
            let elapsed = now.duration_since(state.last_refill).as_secs_f64();
            state.tokens = (state.tokens + elapsed * fair.rate_per_s).min(fair.burst);
            state.last_refill = now;
            if state.tokens < 1.0 {
                state.submitted += 1;
                state.rejected += 1;
                inner.rejected += 1;
                if shaped {
                    inner.class_rejected[ci] += 1;
                }
                return Ok(Submission::Rejected(RejectReason::RateLimited));
            }
            state.tokens -= 1.0;
        }
        inner.client(client, now, 0.0).submitted += 1;

        let mut shed = Vec::new();
        let mut charged = false;
        while inner.queue.len() >= self.effective_capacity() {
            // Class shaping gates the full-queue path: one credit per
            // submission that contends for a slot, charged once even if
            // the policy loop runs multiple rounds.
            if shaped && !charged {
                if inner.class_credits[ci] < 1.0 {
                    inner.rejected += 1;
                    inner.class_rejected[ci] += 1;
                    if let Some(c) = inner.clients.get_mut(&client) {
                        c.rejected += 1;
                    }
                    return Ok(Submission::Rejected(RejectReason::ClassThrottled));
                }
                inner.class_credits[ci] -= 1.0;
                charged = true;
            }
            match self.cfg.policy {
                OverloadPolicy::Block => {
                    inner = self.not_full.wait(inner).expect("admission lock poisoned");
                    if inner.closed {
                        // The submission was counted; un-count it so the
                        // books stay exact for accepted traffic. The
                        // client entry may have been evicted (and even
                        // recreated) while this submitter was blocked,
                        // so the per-client decrement must saturate
                        // rather than underflow.
                        inner.submitted -= 1;
                        if shaped {
                            inner.class_submitted[ci] -= 1;
                            if charged {
                                // The slot was never consumed; return
                                // the credit (cap is irrelevant on the
                                // shutdown path).
                                inner.class_credits[ci] += 1.0;
                            }
                        }
                        if let Some(c) = inner.clients.get_mut(&client) {
                            c.submitted = c.submitted.saturating_sub(1);
                        }
                        return Err(ServeError::ChannelClosed);
                    }
                }
                OverloadPolicy::RejectNewest => {
                    inner.rejected += 1;
                    if shaped {
                        inner.class_rejected[ci] += 1;
                    }
                    if let Some(c) = inner.clients.get_mut(&client) {
                        c.rejected += 1;
                    }
                    return Ok(Submission::Rejected(RejectReason::QueueFull));
                }
                OverloadPolicy::DropOldest => {
                    let idx = inner
                        .victim_index(self.cfg.fairness.is_some())
                        .expect("full queue has a victim");
                    shed.push((inner.shed_at(idx, false), ShedReason::Evicted));
                }
                OverloadPolicy::DeadlineShed => {
                    let blown = inner.shed_blown(Instant::now());
                    if blown.is_empty() {
                        let idx = inner
                            .victim_index(self.cfg.fairness.is_some())
                            .expect("full queue has a victim");
                        shed.push((inner.shed_at(idx, false), ShedReason::Evicted));
                    } else {
                        shed.extend(blown.into_iter().map(|e| (e, ShedReason::DeadlineBlown)));
                    }
                }
            }
        }

        let deadline = deadline
            .or_else(|| self.effective_deadline())
            .map(|budget| now + budget);
        inner.queue.push_back(Entry {
            client,
            class,
            enqueued: now,
            deadline,
            payload,
        });
        if shaped {
            inner.class_queued[ci] += 1;
        }
        if let Some(c) = inner.clients.get_mut(&client) {
            c.queued += 1;
        }
        inner.depth_peak = inner.depth_peak.max(inner.queue.len() as u64);
        drop(inner);
        self.not_empty.notify_one();
        Ok(Submission::Admitted { shed })
    }

    /// Takes the next admitted query, waiting until `wait_until` (or
    /// indefinitely when `None`) for one to arrive.
    ///
    /// Under [`OverloadPolicy::DeadlineShed`], deadline-blown entries
    /// are shed (returned in [`Popped::shed`]) rather than handed out,
    /// so a blown query never costs forward work; when only shed entries
    /// turn up, the call returns early (item `None`) so the caller can
    /// notify their submitters instead of holding them hostage for the
    /// rest of the wait. After [`AdmissionQueue::close`], remaining
    /// entries are still handed out; [`Popped::closed`] turns true once
    /// the queue is both closed and drained.
    pub fn pop(&self, wait_until: Option<Instant>) -> Popped<T> {
        let mut shed = Vec::new();
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        let (item, closed) = loop {
            if self.cfg.policy == OverloadPolicy::DeadlineShed {
                shed.extend(inner.shed_blown(Instant::now()));
            }
            if let Some(entry) = inner.queue.pop_front() {
                inner.popped += 1;
                if let Some(cw) = inner.classes {
                    let ci = entry.class as usize;
                    inner.class_popped[ci] += 1;
                    inner.class_queued[ci] = inner.class_queued[ci].saturating_sub(1);
                    // Service-coupled refill: one pop is one unit of
                    // service, split across classes by weight and
                    // capped at the burst. Admissions at a full queue
                    // cost one credit each, so under sustained overload
                    // each class admits at most its weighted share of
                    // the pop rate.
                    let total = cw.total_weight();
                    for i in 0..cw.len() {
                        inner.class_credits[i] =
                            (inner.class_credits[i] + cw.weight(i) / total).min(cw.burst());
                    }
                }
                let now_idle = match inner.clients.get_mut(&entry.client) {
                    Some(c) => {
                        c.queued = c.queued.saturating_sub(1);
                        (c.queued == 0).then_some(c.epoch)
                    }
                    None => None,
                };
                if let Some(epoch) = now_idle {
                    inner.mark_idle(entry.client, epoch);
                }
                break (Some(entry), false);
            }
            if inner.closed {
                break (None, true);
            }
            if !shed.is_empty() {
                // Yield so the caller can notify the shed submitters.
                break (None, false);
            }
            let now = Instant::now();
            match wait_until {
                Some(until) if now >= until => break (None, false),
                Some(until) => {
                    let (guard, _) = self
                        .not_empty
                        .wait_timeout(inner, until - now)
                        .expect("admission lock poisoned");
                    inner = guard;
                }
                None => {
                    inner = self.not_empty.wait(inner).expect("admission lock poisoned");
                }
            }
        };
        drop(inner);
        // Every removal (popped item or shed entry) frees a slot for
        // blocked submitters.
        let freed = usize::from(item.is_some()) + shed.len();
        if freed == 1 {
            self.not_full.notify_one();
        } else if freed > 1 {
            self.not_full.notify_all();
        }
        Popped { shed, item, closed }
    }

    /// Closes the queue: subsequent submits fail with
    /// [`ServeError::ChannelClosed`], blocked submitters wake with the
    /// same error, and pops drain the remaining entries before reporting
    /// [`Popped::closed`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`AdmissionQueue::close`] has been called (the
    /// `/healthz` ingress check).
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("admission lock poisoned").closed
    }

    /// Records served outcomes: for each `(client, latency_us)` pair,
    /// bumps the client's answered counter and latency histogram. Called
    /// by the serving workers once per batch (single lock acquisition),
    /// so the admission and serving sides of the per-client books live
    /// in **one** map under one eviction policy and cannot diverge. A
    /// client whose state was evicted while its query was in flight gets
    /// a fresh entry (a new accounting epoch); its pre-eviction
    /// observations live on in [`AdmissionSnapshot::evicted`], merged
    /// exactly once, so totals reconcile even past
    /// [`MAX_TRACKED_CLIENTS`].
    pub fn record_answered(&self, outcomes: impl IntoIterator<Item = (u64, u64)>) {
        let now = Instant::now();
        let burst = self.cfg.fairness.map_or(0.0, |f| f.burst);
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        for (client, us) in outcomes {
            let state = inner.client(client, now, burst);
            state.answered += 1;
            state.hist.record(us);
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("admission lock poisoned")
            .queue
            .len()
    }

    /// The cumulative top-line books in one cheap lock acquisition — the
    /// SLO monitor diffs these every tick, so this deliberately skips
    /// the per-client and per-class maps that make
    /// [`AdmissionQueue::snapshot`] expensive.
    pub fn totals(&self) -> AdmissionTotals {
        let inner = self.inner.lock().expect("admission lock poisoned");
        AdmissionTotals {
            submitted: inner.submitted,
            rejected: inner.rejected,
            shed: inner.shed,
            popped: inner.popped,
            depth: inner.queue.len() as u64,
        }
    }

    /// Consistent snapshot of every admission counter.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let inner = self.inner.lock().expect("admission lock poisoned");
        let mut clients: Vec<ClientStats> = inner
            .clients
            .iter()
            .map(|(&client, s)| ClientStats {
                client,
                submitted: s.submitted,
                answered: s.answered,
                rejected: s.rejected,
                shed: s.shed,
                queued: s.queued as u64,
                latency: LatencySummary::of(&s.hist),
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        let classes = inner
            .classes
            .map(|cw| {
                (0..cw.len())
                    .map(|i| ClassStats {
                        class: i as u32,
                        name: cw.name(i),
                        weight: cw.weight(i),
                        submitted: inner.class_submitted[i],
                        rejected: inner.class_rejected[i],
                        shed: inner.class_shed[i],
                        popped: inner.class_popped[i],
                        queued: inner.class_queued[i] as u64,
                    })
                    .collect()
            })
            .unwrap_or_default();
        AdmissionSnapshot {
            submitted: inner.submitted,
            rejected: inner.rejected,
            shed: inner.shed,
            deadline_shed: inner.deadline_shed,
            popped: inner.popped,
            queue_depth: inner.queue.len() as u64,
            queue_depth_peak: inner.depth_peak,
            clients,
            evicted: EvictedClientStats {
                clients: inner.evicted.clients,
                submitted: inner.evicted.submitted,
                answered: inner.evicted.answered,
                rejected: inner.evicted.rejected,
                shed: inner.evicted.shed,
                latency: LatencySummary::of(&inner.evicted.hist),
            },
            classes,
            adaptive: self.adaptive.as_ref().map(|a| a.snapshot()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, StdThreadExecutor};

    fn cfg(capacity: usize, policy: OverloadPolicy) -> AdmissionConfig {
        AdmissionConfig {
            capacity,
            policy,
            ..AdmissionConfig::default()
        }
    }

    fn admit<T>(q: &AdmissionQueue<T>, client: u64, payload: T) -> Vec<(Entry<T>, ShedReason)> {
        match q.submit(client, None, payload).expect("queue open") {
            Submission::Admitted { shed } => shed,
            Submission::Rejected(r) => panic!("unexpected rejection: {r}"),
        }
    }

    fn pop_now<T>(q: &AdmissionQueue<T>) -> Popped<T> {
        q.pop(Some(Instant::now()))
    }

    #[test]
    fn fifo_order_and_depth_gauges() {
        let q = AdmissionQueue::new(cfg(8, OverloadPolicy::RejectNewest));
        for i in 0..5u32 {
            assert!(admit(&q, 0, i).is_empty());
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5u32 {
            assert_eq!(pop_now(&q).item.unwrap().payload, i);
        }
        let snap = q.snapshot();
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.popped, 5);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.queue_depth_peak, 5);
        assert_eq!(snap.rejected + snap.shed, 0);
    }

    #[test]
    fn reject_newest_turns_away_at_capacity() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::RejectNewest));
        admit(&q, 1, "a");
        admit(&q, 1, "b");
        match q.submit(2, None, "c").unwrap() {
            Submission::Rejected(RejectReason::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let snap = q.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 2);
        let c2 = snap.clients.iter().find(|c| c.client == 2).unwrap();
        assert_eq!((c2.submitted, c2.rejected), (1, 1));
    }

    #[test]
    fn drop_oldest_evicts_the_front() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::DropOldest));
        admit(&q, 0, "a");
        admit(&q, 0, "b");
        let shed = admit(&q, 0, "c");
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.payload, "a");
        assert_eq!(shed[0].1, ShedReason::Evicted);
        assert_eq!(pop_now(&q).item.unwrap().payload, "b");
        assert_eq!(pop_now(&q).item.unwrap().payload, "c");
        let snap = q.snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.popped, 2);
    }

    #[test]
    fn fair_drop_oldest_targets_the_hoarder() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 4,
            policy: OverloadPolicy::DropOldest,
            fairness: Some(FairnessConfig {
                rate_per_s: 0.0,
                burst: 16.0,
            }),
            ..AdmissionConfig::default()
        });
        // Client 7 floods; client 1 parks a single query first.
        admit(&q, 1, 100u32);
        for v in 0..3 {
            admit(&q, 7, v);
        }
        // Queue full; the next flood submission evicts 7's own oldest,
        // not client 1's only entry.
        let shed = admit(&q, 7, 3);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.client, 7);
        assert_eq!(shed[0].0.payload, 0);
        let first = pop_now(&q).item.unwrap();
        assert_eq!((first.client, first.payload), (1, 100));
    }

    #[test]
    fn token_bucket_rate_limits_per_client() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 64,
            policy: OverloadPolicy::RejectNewest,
            fairness: Some(FairnessConfig {
                rate_per_s: 0.0,
                burst: 2.0,
            }),
            ..AdmissionConfig::default()
        });
        admit(&q, 3, ());
        admit(&q, 3, ());
        match q.submit(3, None, ()).unwrap() {
            Submission::Rejected(RejectReason::RateLimited) => {}
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // A different client still has its full burst.
        admit(&q, 4, ());
        let snap = q.snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 3);
    }

    #[test]
    fn deadline_shed_drops_blown_entries_at_pop() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 8,
            policy: OverloadPolicy::DeadlineShed,
            default_deadline: Some(Duration::ZERO),
            ..AdmissionConfig::default()
        });
        admit(&q, 0, "blown");
        let popped = pop_now(&q);
        assert!(popped.item.is_none());
        assert_eq!(popped.shed.len(), 1);
        assert_eq!(popped.shed[0].payload, "blown");
        let snap = q.snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.deadline_shed, 1);
    }

    #[test]
    fn deadline_shed_overflow_prefers_blown_then_evicts() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::DeadlineShed));
        // One blown entry, one live one.
        match q.submit(0, Some(Duration::ZERO), "blown").unwrap() {
            Submission::Admitted { shed } => assert!(shed.is_empty()),
            other => panic!("{other:?}"),
        }
        admit(&q, 0, "live");
        let shed = admit(&q, 0, "new");
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.payload, "blown");
        assert_eq!(shed[0].1, ShedReason::DeadlineBlown);
        // No blown entries left: a further overflow evicts the oldest.
        let shed = admit(&q, 0, "newer");
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.payload, "live");
        assert_eq!(shed[0].1, ShedReason::Evicted);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = AdmissionQueue::new(cfg(4, OverloadPolicy::Block));
        admit(&q, 0, 1u32);
        admit(&q, 0, 2u32);
        q.close();
        assert!(matches!(
            q.submit(0, None, 3u32),
            Err(ServeError::ChannelClosed)
        ));
        let p = pop_now(&q);
        assert_eq!(p.item.unwrap().payload, 1);
        assert!(!p.closed);
        assert_eq!(pop_now(&q).item.unwrap().payload, 2);
        let last = pop_now(&q);
        assert!(last.item.is_none());
        assert!(last.closed);
    }

    #[test]
    fn block_policy_blocks_until_pop_frees_space() {
        let q = std::sync::Arc::new(AdmissionQueue::new(cfg(1, OverloadPolicy::Block)));
        admit(&q, 0, 0u32);
        let q2 = std::sync::Arc::clone(&q);
        let submitter = StdThreadExecutor.spawn_worker("test-submitter", move || {
            // Blocks until the consumer pops.
            q2.submit(0, None, 1u32).expect("open")
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "submitter must be blocked, not queued");
        assert_eq!(q.pop(None).item.unwrap().payload, 0);
        match submitter.join().expect("submitter thread") {
            Submission::Admitted { shed } => assert!(shed.is_empty()),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.pop(None).item.unwrap().payload, 1);
    }

    #[test]
    fn blocked_submitter_wakes_on_close() {
        let q = std::sync::Arc::new(AdmissionQueue::new(cfg(1, OverloadPolicy::Block)));
        admit(&q, 0, ());
        let q2 = std::sync::Arc::clone(&q);
        let submitter =
            StdThreadExecutor.spawn_worker("test-submitter", move || q2.submit(0, None, ()));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(
            submitter.join().expect("submitter thread"),
            Err(ServeError::ChannelClosed)
        ));
        // The blocked-then-refused submission must not be counted.
        let snap = q.snapshot();
        assert_eq!(snap.submitted, 1);
    }

    #[test]
    #[should_panic(expected = "burst must be >= 1")]
    fn sub_one_burst_is_a_misconfiguration() {
        let _: AdmissionQueue<()> = AdmissionQueue::new(AdmissionConfig {
            capacity: 4,
            policy: OverloadPolicy::RejectNewest,
            fairness: Some(FairnessConfig {
                rate_per_s: 100.0,
                burst: 0.5,
            }),
            ..AdmissionConfig::default()
        });
    }

    #[test]
    fn tracked_client_state_is_bounded() {
        let q = AdmissionQueue::new(cfg(4, OverloadPolicy::DropOldest));
        for id in 0..(MAX_TRACKED_CLIENTS as u64 + 100) {
            let _ = q.submit(id, None, ());
        }
        let snap = q.snapshot();
        assert!(
            snap.clients.len() <= MAX_TRACKED_CLIENTS,
            "client map grew to {}",
            snap.clients.len()
        );
        // Global books stay exact even though idle per-client entries
        // were evicted from the breakdown.
        assert_eq!(
            snap.submitted,
            snap.popped + snap.rejected + snap.shed + snap.queue_depth
        );
    }

    #[test]
    fn eviction_churn_merges_each_state_exactly_once() {
        // Evict → re-track → evict churn within one snapshot window: the
        // per-client books (tracked + evicted aggregate) must reconcile
        // with the global counters, with no observation counted twice
        // and none lost. Before the epoch-deduped merge, evicted state
        // was silently discarded (and a stale idle candidate could hit a
        // re-tracked incarnation), so these sums drifted under churn.
        let q = AdmissionQueue::new(cfg(4, OverloadPolicy::DropOldest));
        let mut answered_recorded = 0u64;
        // Three churn rounds: flood past the tracking bound, answering a
        // few along the way so evicted histograms are non-empty; the
        // repeating low ids are evicted and re-tracked each round.
        for round in 0..3u64 {
            for i in 0..(MAX_TRACKED_CLIENTS as u64 / 2 + 50) {
                // Hot ids 0..5 recur every round (evicted idle, then
                // re-tracked under a fresh epoch); cold ids are fresh
                // each round, so round 2 onward pushes past the bound.
                let id = if i < 5 { i } else { round * 1_000_000 + i };
                let _ = q.submit(id, None, ());
                if id < 5 {
                    // Drain and answer the hot ids' queries immediately,
                    // touching their histograms in every incarnation.
                    while pop_now(&q).item.is_some() {}
                    q.record_answered([(id, 10 * (round + 1))]);
                    answered_recorded += 1;
                }
            }
        }
        let snap = q.snapshot();
        assert!(snap.clients.len() <= MAX_TRACKED_CLIENTS);
        assert!(snap.evicted.clients > 0, "churn must evict");
        // Conservation: tracked + evicted == global, per counter.
        let tracked_submitted: u64 = snap.clients.iter().map(|c| c.submitted).sum();
        assert_eq!(tracked_submitted + snap.evicted.submitted, snap.submitted);
        let tracked_shed: u64 = snap.clients.iter().map(|c| c.shed).sum();
        assert_eq!(tracked_shed + snap.evicted.shed, snap.shed);
        let tracked_rejected: u64 = snap.clients.iter().map(|c| c.rejected).sum();
        assert_eq!(tracked_rejected + snap.evicted.rejected, snap.rejected);
        // Histogram conservation: every recorded answer is in exactly
        // one histogram (the double-count this test guards against).
        let tracked_answers: u64 = snap.clients.iter().map(|c| c.latency.count).sum();
        assert_eq!(
            tracked_answers + snap.evicted.latency.count,
            answered_recorded
        );
        let tracked_answered: u64 = snap.clients.iter().map(|c| c.answered).sum();
        assert_eq!(tracked_answered + snap.evicted.answered, answered_recorded);
    }

    #[test]
    fn accounting_identity_holds() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::DropOldest));
        for i in 0..10u32 {
            let _ = q.submit(u64::from(i % 3), None, i);
        }
        let _ = pop_now(&q);
        let snap = q.snapshot();
        assert_eq!(
            snap.submitted,
            snap.popped + snap.rejected + snap.shed + snap.queue_depth
        );
    }

    fn classed_cfg(capacity: usize, burst: f64) -> AdmissionConfig {
        AdmissionConfig {
            capacity,
            policy: OverloadPolicy::DropOldest,
            classes: Some(
                ClassWeights::new()
                    .with_class("paid", 3.0)
                    .with_class("batch", 1.0)
                    .with_burst(burst),
            ),
            ..AdmissionConfig::default()
        }
    }

    fn per_class_identity(snap: &AdmissionSnapshot) {
        for c in &snap.classes {
            assert_eq!(
                c.submitted,
                c.popped + c.rejected + c.shed + c.queued,
                "class {} books must balance",
                c.name
            );
        }
    }

    #[test]
    fn classes_are_work_conserving_below_capacity() {
        // Below capacity no credit is charged: a zero-credit class
        // still admits freely while slots are open.
        let q = AdmissionQueue::new(classed_cfg(8, 1.0));
        for i in 0..6u32 {
            match q.submit_classed(0, 1, None, i).unwrap() {
                Submission::Admitted { shed } => assert!(shed.is_empty()),
                other => panic!("{other:?}"),
            }
        }
        let snap = q.snapshot();
        assert_eq!(snap.classes[1].submitted, 6);
        assert_eq!(snap.classes[1].queued, 6);
        assert_eq!(snap.classes[1].rejected, 0);
        per_class_identity(&snap);
    }

    #[test]
    fn class_out_of_credits_is_throttled_at_full_queue() {
        let q = AdmissionQueue::new(classed_cfg(2, 1.0));
        // Fill below-capacity (uncharged), then contend twice: the
        // first full-queue submission spends the class's only credit,
        // the second is throttled.
        let _ = q.submit_classed(0, 1, None, 0u32);
        let _ = q.submit_classed(0, 1, None, 1u32);
        match q.submit_classed(0, 1, None, 2u32).unwrap() {
            Submission::Admitted { shed } => assert_eq!(shed.len(), 1),
            other => panic!("{other:?}"),
        }
        match q.submit_classed(0, 1, None, 3u32).unwrap() {
            Submission::Rejected(RejectReason::ClassThrottled) => {}
            other => panic!("expected ClassThrottled, got {other:?}"),
        }
        per_class_identity(&q.snapshot());
    }

    #[test]
    fn class_credit_refills_on_pop_split_by_weight() {
        let q = AdmissionQueue::new(classed_cfg(2, 1.0));
        let _ = q.submit_classed(0, 0, None, 0u32);
        let _ = q.submit_classed(0, 0, None, 1u32);
        // Drain both classes' initial credits at the full queue.
        let _ = q.submit_classed(0, 0, None, 2u32);
        let _ = q.submit_classed(0, 1, None, 3u32);
        // One pop refills paid by 0.75 and batch by 0.25: neither
        // reaches a full credit, so both are still throttled...
        assert!(pop_now(&q).item.is_some());
        let _ = q.submit_classed(0, 0, None, 4u32); // refills the slot uncharged
        match q.submit_classed(0, 0, None, 5u32).unwrap() {
            Submission::Rejected(RejectReason::ClassThrottled) => {}
            other => panic!("expected paid throttled at 0.75 credits, got {other:?}"),
        }
        // ...a second pop takes paid to 1.5 -> capped charge works again.
        assert!(pop_now(&q).item.is_some());
        let _ = q.submit_classed(0, 0, None, 6u32); // uncharged (slot open)
        match q.submit_classed(0, 0, None, 7u32).unwrap() {
            Submission::Admitted { shed } => assert_eq!(shed.len(), 1),
            other => panic!("{other:?}"),
        }
        per_class_identity(&q.snapshot());
    }

    #[test]
    fn class_victim_is_most_queued_per_weight() {
        // Queue of 3 batch entries + 1 paid: batch is far over its
        // weighted share, so a contending paid submission evicts batch,
        // never paid's only entry.
        let q = AdmissionQueue::new(classed_cfg(4, 16.0));
        for i in 0..3u32 {
            let _ = q.submit_classed(0, 1, None, i);
        }
        let _ = q.submit_classed(0, 0, None, 100u32);
        match q.submit_classed(0, 0, None, 101u32).unwrap() {
            Submission::Admitted { shed } => {
                assert_eq!(shed.len(), 1);
                assert_eq!(shed[0].0.class, 1, "victim must be the batch class");
                assert_eq!(shed[0].0.payload, 0, "oldest batch entry first");
            }
            other => panic!("{other:?}"),
        }
        per_class_identity(&q.snapshot());
    }

    #[test]
    fn class_throughput_tracks_weight_under_sustained_overload() {
        // Deterministic 2x-overload loop: every round offers one paid
        // and one batch query against one pop of service. Popped
        // (served) counts must track the 3:1 weights.
        let q = AdmissionQueue::new(classed_cfg(4, 1.0));
        for i in 0..2u32 {
            let _ = q.submit_classed(0, 0, None, i);
            let _ = q.submit_classed(0, 1, None, i);
        }
        let rounds = 400u32;
        for i in 0..rounds {
            let _ = q.submit_classed(0, 0, None, i);
            let _ = q.submit_classed(0, 1, None, i);
            let _ = pop_now(&q);
        }
        let snap = q.snapshot();
        per_class_identity(&snap);
        let paid = snap.classes[0].popped as f64;
        let batch = snap.classes[1].popped as f64;
        let share = paid / (paid + batch);
        assert!(
            (share - 0.75).abs() < 0.1,
            "paid service share {share} should approximate its 0.75 weight share \
             (paid {paid}, batch {batch})"
        );
        assert!(
            snap.classes[1].popped > 0,
            "the light class must not starve"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_index_out_of_range_panics() {
        let q = AdmissionQueue::new(classed_cfg(4, 1.0));
        let _ = q.submit_classed(0, 7, None, 0u32);
    }

    #[test]
    fn adaptive_controller_converges_to_steady_service_time() {
        let ctrl = AdaptiveController::new(AdaptiveConfig::default(), 64, 2);
        assert!(ctrl.service_ewma().is_none());
        assert!(ctrl.derived_capacity().is_none());
        for _ in 0..50 {
            ctrl.observe_batch(Duration::from_micros(500), 0);
        }
        let ewma = ctrl.service_ewma().unwrap();
        assert_eq!(ewma, Duration::from_micros(500));
        // deadline = multiplier x EWMA; capacity = workers x max_batch
        // x multiplier, inside the clamp.
        assert_eq!(
            ctrl.derived_deadline().unwrap(),
            Duration::from_micros(1000)
        );
        assert_eq!(ctrl.derived_capacity().unwrap(), 256);
        let snap = ctrl.snapshot();
        assert_eq!(snap.ewma_us, 500);
        assert_eq!(snap.samples, 50);
        assert_eq!(snap.derived_deadline_us, 1000);
        assert_eq!(snap.derived_capacity, 256);
    }

    #[test]
    fn adaptive_replans_on_epoch_swap() {
        let ctrl = AdaptiveController::new(AdaptiveConfig::default(), 8, 1);
        for _ in 0..100 {
            ctrl.observe_batch(Duration::from_micros(10_000), 0);
        }
        assert_eq!(ctrl.service_ewma().unwrap(), Duration::from_micros(10_000));
        // A graph mutation swaps the epoch and the service time drops;
        // the average restarts instead of dragging the old regime.
        ctrl.observe_batch(Duration::from_micros(100), 1);
        assert_eq!(ctrl.service_ewma().unwrap(), Duration::from_micros(100));
        assert_eq!(ctrl.snapshot().replans, 1);
    }

    #[test]
    fn adaptive_deadline_tightens_under_slo_feedback() {
        let ctrl = AdaptiveController::new(AdaptiveConfig::default(), 64, 2);
        for _ in 0..50 {
            ctrl.observe_batch(Duration::from_micros(500), 0);
        }
        assert_eq!(
            ctrl.derived_deadline().unwrap(),
            Duration::from_micros(1000)
        );
        assert_eq!(ctrl.deadline_tighten(), 1.0);
        // Breach feedback halves the budget...
        ctrl.set_deadline_tighten(0.5);
        assert_eq!(ctrl.derived_deadline().unwrap(), Duration::from_micros(500));
        assert_eq!(ctrl.snapshot().tighten_permille, 500);
        // ...and recovery restores it. Out-of-range values clamp.
        ctrl.set_deadline_tighten(1.0);
        assert_eq!(
            ctrl.derived_deadline().unwrap(),
            Duration::from_micros(1000)
        );
        ctrl.set_deadline_tighten(7.0);
        assert_eq!(ctrl.deadline_tighten(), 1.0);
        ctrl.set_deadline_tighten(0.0);
        assert_eq!(ctrl.snapshot().tighten_permille, 1);
    }

    #[test]
    fn totals_match_snapshot_books() {
        let queue: AdmissionQueue<()> = AdmissionQueue::new(AdmissionConfig {
            capacity: 4,
            policy: OverloadPolicy::RejectNewest,
            ..AdmissionConfig::default()
        });
        for i in 0..6u64 {
            let _ = queue.submit(i, None, ());
        }
        let totals = queue.totals();
        let snap = queue.snapshot();
        assert_eq!(totals.submitted, snap.submitted);
        assert_eq!(totals.rejected, snap.rejected);
        assert_eq!(totals.shed, snap.shed);
        assert_eq!(totals.popped, snap.popped);
        assert_eq!(totals.depth, snap.queue_depth);
        assert_eq!(totals.submitted, 6);
        assert_eq!(totals.rejected, 2);
    }

    #[test]
    fn adaptive_capacity_respects_clamp() {
        let cfg = AdaptiveConfig {
            min_capacity: 10,
            max_capacity: 20,
            ..AdaptiveConfig::default()
        };
        let ctrl = AdaptiveController::new(cfg, 1, 1);
        ctrl.observe_batch(Duration::from_micros(100), 0);
        // Unclamped derivation would be 1 x 1 x 8 = 8.
        assert_eq!(ctrl.derived_capacity().unwrap(), 10);
        let big = AdaptiveController::new(cfg, 1 << 16, 4);
        big.observe_batch(Duration::from_micros(100), 0);
        assert_eq!(big.derived_capacity().unwrap(), 20);
    }

    #[test]
    fn adaptive_queue_switches_from_static_to_derived_capacity() {
        let ctrl = Arc::new(AdaptiveController::new(
            AdaptiveConfig {
                min_capacity: 4,
                max_capacity: 4,
                ..AdaptiveConfig::default()
            },
            1,
            1,
        ));
        let q: AdmissionQueue<u32> = AdmissionQueue::with_controller(
            cfg(1, OverloadPolicy::RejectNewest),
            Some(Arc::clone(&ctrl)),
        );
        // Pre-measurement: the static capacity (1) governs.
        assert_eq!(q.effective_capacity(), 1);
        let _ = q.submit(0, None, 0);
        assert!(matches!(
            q.submit(0, None, 1).unwrap(),
            Submission::Rejected(RejectReason::QueueFull)
        ));
        // First observation lands: derived capacity (clamped to 4)
        // takes over and the queue stretches.
        ctrl.observe_batch(Duration::from_millis(1), 0);
        assert_eq!(q.effective_capacity(), 4);
        for v in 2..5u32 {
            match q.submit(0, None, v).unwrap() {
                Submission::Admitted { shed } => assert!(shed.is_empty()),
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(
            q.submit(0, None, 9).unwrap(),
            Submission::Rejected(RejectReason::QueueFull)
        ));
        let snap = q.snapshot();
        assert_eq!(snap.queue_depth, 4);
        assert_eq!(snap.adaptive.unwrap().derived_capacity, 4);
        assert_eq!(
            snap.submitted,
            snap.popped + snap.rejected + snap.shed + snap.queue_depth
        );
    }

    #[test]
    fn adaptive_deadline_applies_to_untagged_queries() {
        let ctrl = Arc::new(AdaptiveController::new(AdaptiveConfig::default(), 8, 1));
        let q: AdmissionQueue<u32> = AdmissionQueue::with_controller(
            cfg(8, OverloadPolicy::DeadlineShed),
            Some(Arc::clone(&ctrl)),
        );
        // EWMA 1us -> derived budget 8us: a parked query blows it.
        ctrl.observe_batch(Duration::from_micros(1), 0);
        let _ = q.submit(0, None, 7);
        std::thread::sleep(Duration::from_millis(2));
        let popped = pop_now(&q);
        assert!(popped.item.is_none());
        assert_eq!(popped.shed.len(), 1);
        assert_eq!(q.snapshot().deadline_shed, 1);
    }
}
