//! Admission control and backpressure: the bounded ingress between
//! clients and the micro-batcher.
//!
//! The serving stack's original ingress was an unbounded `mpsc` channel:
//! when offered load exceeds forward throughput, the queue grows without
//! bound, every query's latency grows with it, and p99 is a function of
//! how long the overload has lasted rather than of the system. This
//! module turns overload into a *measured, bounded regime*:
//!
//! * **Bounded queue** — at most [`AdmissionConfig::capacity`] queries
//!   wait for a batch slot; the depth (and its peak) are observable
//!   gauges.
//! * **Overload policy** ([`OverloadPolicy`]) — what happens when a query
//!   arrives and the queue is full: block the submitter (closed-loop
//!   backpressure), reject the newcomer, drop the oldest waiter, or shed
//!   deadline-blown work before it wastes a forward.
//! * **Per-client fairness** ([`FairnessConfig`]) — a token bucket per
//!   client caps any one client's admitted rate, so a hot client under
//!   Zipf traffic cannot monopolize the queue; when fairness is on, the
//!   `DropOldest`/`DeadlineShed` eviction victim is the *most-queued*
//!   client's oldest entry rather than the global oldest, which keeps a
//!   light client's only waiting query from being evicted by a flood
//!   (see [`AdmissionQueue::submit`] for the exact guarantee).
//! * **Exact accounting** — every submitted query ends in exactly one of
//!   *answered*, *rejected* or *shed* (plus *still queued* while the
//!   server runs): `submitted == popped + rejected + shed + depth` holds
//!   under the queue's lock at all times, so overload experiments can
//!   reconcile their books to the query.
//!
//! The queue is generic over its payload `T` so the policy/fairness
//! machinery is testable without spinning up a server (the proptest
//! suite drives it with integer payloads); `maxk_serve::server` feeds it
//! boxed requests.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{ClientStats, EvictedClientStats, LatencyHistogram, LatencySummary};
use crate::ServeError;

/// What the admission layer does with a query that arrives while the
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the submitting thread until space frees up — classic
    /// backpressure. Bounds memory but not client-observed latency; the
    /// baseline the shedding policies are measured against.
    Block,
    /// Turn the incoming query away with
    /// [`RejectReason::QueueFull`]. First-come-first-served: waiting
    /// work is never discarded.
    RejectNewest,
    /// Evict a waiting query (shed with [`ShedReason::Evicted`]) to
    /// admit the new one — freshest-work-wins. Without fairness the
    /// victim is the global oldest entry; with fairness it is the
    /// most-queued client's oldest entry.
    DropOldest,
    /// [`OverloadPolicy::DropOldest`] overflow behavior, plus
    /// deadline-aware shedding: entries whose latency budget has already
    /// elapsed are shed ([`ShedReason::DeadlineBlown`]) — at overflow to
    /// make room, and at dequeue so a blown query never costs a forward
    /// pass. Budgets come from the per-query deadline or
    /// [`AdmissionConfig::default_deadline`].
    DeadlineShed,
}

impl OverloadPolicy {
    /// Stable lower-case label — the single source of the policy names
    /// used by `serve_bench`'s `--admission-policies` flag and written
    /// into `BENCH_admission.json`.
    pub fn label(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::RejectNewest => "reject",
            OverloadPolicy::DropOldest => "drop",
            OverloadPolicy::DeadlineShed => "deadline",
        }
    }
}

/// Per-client token-bucket rate limiting.
///
/// Each client starts with `burst` tokens; a submission costs one token
/// and tokens refill continuously at `rate_per_s`. A client out of
/// tokens is rejected with [`RejectReason::RateLimited`] regardless of
/// queue depth, capping any single client's sustained admitted rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessConfig {
    /// Sustained admitted queries per second per client.
    pub rate_per_s: f64,
    /// Bucket size: how far a client may burst above the sustained rate.
    /// Must be at least 1 for the client to ever admit anything.
    pub burst: f64,
}

/// Configuration of the admission layer.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum queued (admitted but not yet batched) queries.
    pub capacity: usize,
    /// What to do when the queue is full.
    pub policy: OverloadPolicy,
    /// Per-client token-bucket fairness; `None` disables rate limiting
    /// and fairness-aware victim selection.
    pub fairness: Option<FairnessConfig>,
    /// Latency budget applied to queries that do not carry their own
    /// deadline (only enforced under [`OverloadPolicy::DeadlineShed`]).
    pub default_deadline: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 1024,
            policy: OverloadPolicy::Block,
            fairness: None,
            default_deadline: None,
        }
    }
}

/// Why a query was turned away at the door (never entered the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue was full under [`OverloadPolicy::RejectNewest`].
    QueueFull,
    /// The client's token bucket was empty ([`FairnessConfig`]).
    RateLimited,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::RateLimited => write!(f, "client rate limited"),
        }
    }
}

/// Why an *admitted* query was dropped before reaching a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Evicted to make room for a newer query
    /// ([`OverloadPolicy::DropOldest`] / overflow under
    /// [`OverloadPolicy::DeadlineShed`]).
    Evicted,
    /// Its latency budget elapsed before a batch slot opened
    /// ([`OverloadPolicy::DeadlineShed`]).
    DeadlineBlown,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::Evicted => write!(f, "evicted under overload"),
            ShedReason::DeadlineBlown => write!(f, "latency budget blown in queue"),
        }
    }
}

/// One admitted query waiting in (or popped from) the queue.
#[derive(Debug)]
pub struct Entry<T> {
    /// Submitting client's identity (fairness/accounting key).
    pub client: u64,
    /// When the entry entered the queue.
    pub enqueued: Instant,
    /// Absolute latency deadline, if any.
    pub deadline: Option<Instant>,
    /// Caller payload (the server boxes its request here).
    pub payload: T,
}

impl<T> Entry<T> {
    /// True when the entry's deadline (if any) has passed at `now`.
    fn blown(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Outcome of [`AdmissionQueue::submit`].
#[derive(Debug)]
pub enum Submission<T> {
    /// The query entered the queue. `shed` lists entries that were
    /// evicted (or found deadline-blown) to make room — the caller owns
    /// notifying their submitters.
    Admitted {
        /// Entries removed from the queue by this admission, tagged with
        /// why.
        shed: Vec<(Entry<T>, ShedReason)>,
    },
    /// The query was turned away; it never entered the queue.
    Rejected(RejectReason),
}

/// Result of one [`AdmissionQueue::pop`] call.
#[derive(Debug)]
pub struct Popped<T> {
    /// Deadline-blown entries removed while looking for a live one
    /// (always [`ShedReason::DeadlineBlown`]; the caller notifies them).
    pub shed: Vec<Entry<T>>,
    /// The next admitted query, if one arrived before the wait deadline.
    pub item: Option<Entry<T>>,
    /// True when the queue is closed *and* drained — the consumer should
    /// exit. While entries remain after [`AdmissionQueue::close`], pops
    /// keep returning them so already-admitted work is flushed.
    pub closed: bool,
}

/// Point-in-time admission accounting (global and per client).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdmissionSnapshot {
    /// Queries offered to [`AdmissionQueue::submit`] while open.
    pub submitted: u64,
    /// Queries turned away at the door (never queued).
    pub rejected: u64,
    /// Admitted queries dropped before a forward (evicted or
    /// deadline-blown).
    pub shed: u64,
    /// Of `shed`, those dropped because their deadline passed.
    pub deadline_shed: u64,
    /// Admitted queries handed to the consumer so far.
    pub popped: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Highest queue depth observed since construction.
    pub queue_depth_peak: u64,
    /// Per-client accounting ([`ClientStats`]: admission books plus the
    /// served-side answered count and latency histogram, recorded by the
    /// workers via [`AdmissionQueue::record_answered`] so both sides live
    /// in one map under one eviction policy), sorted by client id.
    pub clients: Vec<ClientStats>,
    /// Aggregate of per-client states evicted to honor
    /// [`MAX_TRACKED_CLIENTS`]. Each evicted `(client, epoch)` state is
    /// merged exactly once, so `Σ clients + evicted` reconciles with the
    /// global counters even under eviction churn.
    pub evicted: EvictedClientStats,
}

#[derive(Debug)]
struct ClientState {
    /// Accounting epoch, minted per tracking incarnation. Idle-candidate
    /// entries carry the epoch they were enqueued under and only match a
    /// state with the same epoch, so an id that was evicted and
    /// re-tracked is never confused with its previous incarnation — the
    /// dedup that keeps each state's histogram merged exactly once.
    epoch: u64,
    tokens: f64,
    last_refill: Instant,
    queued: usize,
    submitted: u64,
    answered: u64,
    rejected: u64,
    shed: u64,
    hist: LatencyHistogram,
}

/// Aggregate the evicted per-client states merge into (exactly once per
/// state, keyed by accounting epoch).
#[derive(Debug, Default)]
struct EvictedAggregate {
    clients: u64,
    submitted: u64,
    answered: u64,
    rejected: u64,
    shed: u64,
    hist: LatencyHistogram,
}

impl EvictedAggregate {
    fn merge(&mut self, state: &ClientState) {
        self.clients += 1;
        self.submitted += state.submitted;
        self.answered += state.answered;
        self.rejected += state.rejected;
        self.shed += state.shed;
        self.hist.merge(&state.hist);
    }
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<Entry<T>>,
    clients: HashMap<u64, ClientState>,
    /// `(id, epoch)` pairs whose queued count last dropped to 0 —
    /// amortized-O(1) eviction candidates for the
    /// [`MAX_TRACKED_CLIENTS`] bound (validated lazily at eviction time;
    /// bounded, with a linear-scan fallback when stale). The epoch pins
    /// the candidate to one tracking incarnation, so a stale candidate
    /// can never evict — and merge — a later incarnation of the same id.
    idle_candidates: VecDeque<(u64, u64)>,
    /// Epoch minted for the next fresh [`ClientState`].
    next_epoch: u64,
    /// Where evicted per-client states go; merged exactly once each.
    evicted: EvictedAggregate,
    closed: bool,
    submitted: u64,
    rejected: u64,
    shed: u64,
    deadline_shed: u64,
    popped: u64,
    depth_peak: u64,
}

/// Cap on tracked per-client states (token bucket + accounting +
/// latency histogram). Client ids are caller-supplied `u64`s: without a
/// bound, a server fed one fresh id per connection would grow its client
/// map — and the cost of every stats snapshot — without limit. Past the
/// cap, admitting a *new* client evicts an idle (nothing queued)
/// client's state: its counters and latency histogram merge — exactly
/// once, deduped by accounting epoch — into the
/// [`AdmissionSnapshot::evicted`] aggregate (so totals still reconcile),
/// its per-client breakdown entry disappears, and its token bucket
/// resets to a full burst if it returns. Clients with queued entries are
/// never evicted, and there are at most `capacity` of those.
pub const MAX_TRACKED_CLIENTS: usize = 8192;

impl<T> Inner<T> {
    /// Marks `(id, epoch)` as an eviction candidate (the state's queued
    /// count just hit 0). Duplicates are fine — candidates are validated
    /// against the live state's epoch at eviction — and the list is
    /// bounded so it cannot itself become a leak.
    fn mark_idle(&mut self, id: u64, epoch: u64) {
        if self.idle_candidates.len() < MAX_TRACKED_CLIENTS {
            self.idle_candidates.push_back((id, epoch));
        }
    }

    /// Removes `id`'s state and merges it into the evicted aggregate.
    fn evict(&mut self, id: u64) {
        let state = self.clients.remove(&id).expect("evicting a tracked id");
        self.evicted.merge(&state);
    }

    fn client(&mut self, id: u64, now: Instant, burst: f64) -> &mut ClientState {
        if !self.clients.contains_key(&id) {
            if self.clients.len() >= MAX_TRACKED_CLIENTS {
                // Amortized-O(1) path: pop candidates until one matches a
                // live idle state *of the same epoch*. Each stale
                // candidate is discarded for good, so total validation
                // work is bounded by total candidate pushes; the epoch
                // check keeps a candidate from an evicted incarnation
                // from touching a re-tracked one.
                let mut evicted = false;
                while let Some((idle, epoch)) = self.idle_candidates.pop_front() {
                    if self
                        .clients
                        .get(&idle)
                        .is_some_and(|s| s.epoch == epoch && s.queued == 0)
                    {
                        self.evict(idle);
                        evicted = true;
                        break;
                    }
                }
                if !evicted {
                    // Fallback (candidate list exhausted/stale): linear scan.
                    if let Some(&idle) = self
                        .clients
                        .iter()
                        .find(|(_, s)| s.queued == 0)
                        .map(|(id, _)| id)
                    {
                        self.evict(idle);
                    }
                }
            }
            let epoch = self.next_epoch;
            self.next_epoch += 1;
            self.clients.insert(
                id,
                ClientState {
                    epoch,
                    tokens: burst,
                    last_refill: now,
                    queued: 0,
                    submitted: 0,
                    answered: 0,
                    rejected: 0,
                    shed: 0,
                    hist: LatencyHistogram::new(),
                },
            );
        }
        self.clients.get_mut(&id).expect("present or just inserted")
    }

    /// Removes the entry at `idx`, updating shed accounting.
    fn shed_at(&mut self, idx: usize, deadline: bool) -> Entry<T> {
        let entry = self.queue.remove(idx).expect("index in bounds");
        self.shed += 1;
        if deadline {
            self.deadline_shed += 1;
        }
        if let Some(c) = self.clients.get_mut(&entry.client) {
            c.queued = c.queued.saturating_sub(1);
            c.shed += 1;
            let epoch = c.epoch;
            if c.queued == 0 {
                self.mark_idle(entry.client, epoch);
            }
        }
        entry
    }

    /// Sheds every deadline-blown entry (any position). Returns them in
    /// queue order.
    fn shed_blown(&mut self, now: Instant) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].blown(now) {
                out.push(self.shed_at(i, true));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Index of the eviction victim: with fairness, the oldest entry of
    /// the client holding the most queued entries (ties: lowest client
    /// id); without, the global oldest (front).
    fn victim_index(&self, fair: bool) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        if !fair {
            return Some(0);
        }
        let victim_client = self
            .clients
            .iter()
            .filter(|(_, s)| s.queued > 0)
            .max_by_key(|(id, s)| (s.queued, u64::MAX - *id))
            .map(|(id, _)| *id)?;
        self.queue.iter().position(|e| e.client == victim_client)
    }
}

/// A bounded, policy-governed, per-client-fair ingress queue.
///
/// Producers call [`AdmissionQueue::submit`]; a single consumer (the
/// server's batcher) calls [`AdmissionQueue::pop`]. All policy decisions
/// happen under one mutex, so the accounting invariant
/// `submitted == popped + rejected + shed + depth` is exact at every
/// instant.
///
/// # Examples
///
/// ```
/// use maxk_serve::admission::{
///     AdmissionConfig, AdmissionQueue, OverloadPolicy, RejectReason, Submission,
/// };
///
/// let q: AdmissionQueue<&str> = AdmissionQueue::new(AdmissionConfig {
///     capacity: 1,
///     policy: OverloadPolicy::RejectNewest,
///     ..AdmissionConfig::default()
/// });
/// assert!(matches!(q.submit(0, None, "first"), Ok(Submission::Admitted { .. })));
/// assert!(matches!(
///     q.submit(0, None, "second"),
///     Ok(Submission::Rejected(RejectReason::QueueFull))
/// ));
/// let popped = q.pop(Some(std::time::Instant::now()));
/// assert_eq!(popped.item.unwrap().payload, "first");
/// ```
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    cfg: AdmissionConfig,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` (nothing could ever be admitted), or
    /// when fairness is configured with `burst < 1` or a negative /
    /// non-finite refill rate (a sub-1 burst would silently reject every
    /// query from every client — a total serving outage is a
    /// misconfiguration, not a policy).
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.capacity > 0, "admission capacity must be nonzero");
        if let Some(fair) = cfg.fairness {
            assert!(
                fair.burst.is_finite() && fair.burst >= 1.0,
                "fairness burst must be >= 1 (got {}); a sub-1 burst admits nothing",
                fair.burst
            );
            assert!(
                fair.rate_per_s.is_finite() && fair.rate_per_s >= 0.0,
                "fairness refill rate must be finite and >= 0 (got {})",
                fair.rate_per_s
            );
        }
        AdmissionQueue {
            cfg,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                clients: HashMap::new(),
                idle_candidates: VecDeque::new(),
                next_epoch: 0,
                evicted: EvictedAggregate::default(),
                closed: false,
                submitted: 0,
                rejected: 0,
                shed: 0,
                deadline_shed: 0,
                popped: 0,
                depth_peak: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configuration the queue was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Offers one query for admission.
    ///
    /// The effective deadline is `deadline`, falling back to
    /// [`AdmissionConfig::default_deadline`] (deadlines are only
    /// *enforced* under [`OverloadPolicy::DeadlineShed`], but always
    /// recorded so the server can count late answers as deadline
    /// misses). Under [`OverloadPolicy::Block`] this call blocks while
    /// the queue is full.
    ///
    /// **Non-starvation guarantee.** With fairness enabled, a policy of
    /// `DropOldest` (or `DeadlineShed`, absent deadlines) and
    /// `capacity` strictly greater than the number of active clients,
    /// an eviction victim always holds at least two queued entries: the
    /// queue is only full when some client has ≥ 2 queued (pigeonhole),
    /// and the most-queued client is the victim. So no client's *last*
    /// waiting query is ever evicted on another client's behalf — every
    /// client with nonzero demand keeps at least one query in flight
    /// until it is popped (the property the admission proptest checks).
    ///
    /// # Errors
    ///
    /// [`ServeError::ChannelClosed`] when the queue is closed (including
    /// while blocked under `Block`).
    pub fn submit(
        &self,
        client: u64,
        deadline: Option<Duration>,
        payload: T,
    ) -> Result<Submission<T>, ServeError> {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        if inner.closed {
            return Err(ServeError::ChannelClosed);
        }
        inner.submitted += 1;
        // Token bucket first: rate limiting applies regardless of depth.
        if let Some(fair) = self.cfg.fairness {
            let state = inner.client(client, now, fair.burst);
            let elapsed = now.duration_since(state.last_refill).as_secs_f64();
            state.tokens = (state.tokens + elapsed * fair.rate_per_s).min(fair.burst);
            state.last_refill = now;
            if state.tokens < 1.0 {
                state.submitted += 1;
                state.rejected += 1;
                inner.rejected += 1;
                return Ok(Submission::Rejected(RejectReason::RateLimited));
            }
            state.tokens -= 1.0;
        }
        inner.client(client, now, 0.0).submitted += 1;

        let mut shed = Vec::new();
        while inner.queue.len() >= self.cfg.capacity {
            match self.cfg.policy {
                OverloadPolicy::Block => {
                    inner = self.not_full.wait(inner).expect("admission lock poisoned");
                    if inner.closed {
                        // The submission was counted; un-count it so the
                        // books stay exact for accepted traffic. The
                        // client entry may have been evicted (and even
                        // recreated) while this submitter was blocked,
                        // so the per-client decrement must saturate
                        // rather than underflow.
                        inner.submitted -= 1;
                        if let Some(c) = inner.clients.get_mut(&client) {
                            c.submitted = c.submitted.saturating_sub(1);
                        }
                        return Err(ServeError::ChannelClosed);
                    }
                }
                OverloadPolicy::RejectNewest => {
                    inner.rejected += 1;
                    if let Some(c) = inner.clients.get_mut(&client) {
                        c.rejected += 1;
                    }
                    return Ok(Submission::Rejected(RejectReason::QueueFull));
                }
                OverloadPolicy::DropOldest => {
                    let idx = inner
                        .victim_index(self.cfg.fairness.is_some())
                        .expect("full queue has a victim");
                    shed.push((inner.shed_at(idx, false), ShedReason::Evicted));
                }
                OverloadPolicy::DeadlineShed => {
                    let blown = inner.shed_blown(Instant::now());
                    if blown.is_empty() {
                        let idx = inner
                            .victim_index(self.cfg.fairness.is_some())
                            .expect("full queue has a victim");
                        shed.push((inner.shed_at(idx, false), ShedReason::Evicted));
                    } else {
                        shed.extend(blown.into_iter().map(|e| (e, ShedReason::DeadlineBlown)));
                    }
                }
            }
        }

        let deadline = deadline
            .or(self.cfg.default_deadline)
            .map(|budget| now + budget);
        inner.queue.push_back(Entry {
            client,
            enqueued: now,
            deadline,
            payload,
        });
        if let Some(c) = inner.clients.get_mut(&client) {
            c.queued += 1;
        }
        inner.depth_peak = inner.depth_peak.max(inner.queue.len() as u64);
        drop(inner);
        self.not_empty.notify_one();
        Ok(Submission::Admitted { shed })
    }

    /// Takes the next admitted query, waiting until `wait_until` (or
    /// indefinitely when `None`) for one to arrive.
    ///
    /// Under [`OverloadPolicy::DeadlineShed`], deadline-blown entries
    /// are shed (returned in [`Popped::shed`]) rather than handed out,
    /// so a blown query never costs forward work; when only shed entries
    /// turn up, the call returns early (item `None`) so the caller can
    /// notify their submitters instead of holding them hostage for the
    /// rest of the wait. After [`AdmissionQueue::close`], remaining
    /// entries are still handed out; [`Popped::closed`] turns true once
    /// the queue is both closed and drained.
    pub fn pop(&self, wait_until: Option<Instant>) -> Popped<T> {
        let mut shed = Vec::new();
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        let (item, closed) = loop {
            if self.cfg.policy == OverloadPolicy::DeadlineShed {
                shed.extend(inner.shed_blown(Instant::now()));
            }
            if let Some(entry) = inner.queue.pop_front() {
                inner.popped += 1;
                let now_idle = match inner.clients.get_mut(&entry.client) {
                    Some(c) => {
                        c.queued = c.queued.saturating_sub(1);
                        (c.queued == 0).then_some(c.epoch)
                    }
                    None => None,
                };
                if let Some(epoch) = now_idle {
                    inner.mark_idle(entry.client, epoch);
                }
                break (Some(entry), false);
            }
            if inner.closed {
                break (None, true);
            }
            if !shed.is_empty() {
                // Yield so the caller can notify the shed submitters.
                break (None, false);
            }
            let now = Instant::now();
            match wait_until {
                Some(until) if now >= until => break (None, false),
                Some(until) => {
                    let (guard, _) = self
                        .not_empty
                        .wait_timeout(inner, until - now)
                        .expect("admission lock poisoned");
                    inner = guard;
                }
                None => {
                    inner = self.not_empty.wait(inner).expect("admission lock poisoned");
                }
            }
        };
        drop(inner);
        // Every removal (popped item or shed entry) frees a slot for
        // blocked submitters.
        let freed = usize::from(item.is_some()) + shed.len();
        if freed == 1 {
            self.not_full.notify_one();
        } else if freed > 1 {
            self.not_full.notify_all();
        }
        Popped { shed, item, closed }
    }

    /// Closes the queue: subsequent submits fail with
    /// [`ServeError::ChannelClosed`], blocked submitters wake with the
    /// same error, and pops drain the remaining entries before reporting
    /// [`Popped::closed`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Records served outcomes: for each `(client, latency_us)` pair,
    /// bumps the client's answered counter and latency histogram. Called
    /// by the serving workers once per batch (single lock acquisition),
    /// so the admission and serving sides of the per-client books live
    /// in **one** map under one eviction policy and cannot diverge. A
    /// client whose state was evicted while its query was in flight gets
    /// a fresh entry (a new accounting epoch); its pre-eviction
    /// observations live on in [`AdmissionSnapshot::evicted`], merged
    /// exactly once, so totals reconcile even past
    /// [`MAX_TRACKED_CLIENTS`].
    pub fn record_answered(&self, outcomes: impl IntoIterator<Item = (u64, u64)>) {
        let now = Instant::now();
        let burst = self.cfg.fairness.map_or(0.0, |f| f.burst);
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        for (client, us) in outcomes {
            let state = inner.client(client, now, burst);
            state.answered += 1;
            state.hist.record(us);
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("admission lock poisoned")
            .queue
            .len()
    }

    /// Consistent snapshot of every admission counter.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let inner = self.inner.lock().expect("admission lock poisoned");
        let mut clients: Vec<ClientStats> = inner
            .clients
            .iter()
            .map(|(&client, s)| ClientStats {
                client,
                submitted: s.submitted,
                answered: s.answered,
                rejected: s.rejected,
                shed: s.shed,
                queued: s.queued as u64,
                latency: LatencySummary::of(&s.hist),
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        AdmissionSnapshot {
            submitted: inner.submitted,
            rejected: inner.rejected,
            shed: inner.shed,
            deadline_shed: inner.deadline_shed,
            popped: inner.popped,
            queue_depth: inner.queue.len() as u64,
            queue_depth_peak: inner.depth_peak,
            clients,
            evicted: EvictedClientStats {
                clients: inner.evicted.clients,
                submitted: inner.evicted.submitted,
                answered: inner.evicted.answered,
                rejected: inner.evicted.rejected,
                shed: inner.evicted.shed,
                latency: LatencySummary::of(&inner.evicted.hist),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, policy: OverloadPolicy) -> AdmissionConfig {
        AdmissionConfig {
            capacity,
            policy,
            fairness: None,
            default_deadline: None,
        }
    }

    fn admit<T>(q: &AdmissionQueue<T>, client: u64, payload: T) -> Vec<(Entry<T>, ShedReason)> {
        match q.submit(client, None, payload).expect("queue open") {
            Submission::Admitted { shed } => shed,
            Submission::Rejected(r) => panic!("unexpected rejection: {r}"),
        }
    }

    fn pop_now<T>(q: &AdmissionQueue<T>) -> Popped<T> {
        q.pop(Some(Instant::now()))
    }

    #[test]
    fn fifo_order_and_depth_gauges() {
        let q = AdmissionQueue::new(cfg(8, OverloadPolicy::RejectNewest));
        for i in 0..5u32 {
            assert!(admit(&q, 0, i).is_empty());
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5u32 {
            assert_eq!(pop_now(&q).item.unwrap().payload, i);
        }
        let snap = q.snapshot();
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.popped, 5);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.queue_depth_peak, 5);
        assert_eq!(snap.rejected + snap.shed, 0);
    }

    #[test]
    fn reject_newest_turns_away_at_capacity() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::RejectNewest));
        admit(&q, 1, "a");
        admit(&q, 1, "b");
        match q.submit(2, None, "c").unwrap() {
            Submission::Rejected(RejectReason::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let snap = q.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 2);
        let c2 = snap.clients.iter().find(|c| c.client == 2).unwrap();
        assert_eq!((c2.submitted, c2.rejected), (1, 1));
    }

    #[test]
    fn drop_oldest_evicts_the_front() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::DropOldest));
        admit(&q, 0, "a");
        admit(&q, 0, "b");
        let shed = admit(&q, 0, "c");
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.payload, "a");
        assert_eq!(shed[0].1, ShedReason::Evicted);
        assert_eq!(pop_now(&q).item.unwrap().payload, "b");
        assert_eq!(pop_now(&q).item.unwrap().payload, "c");
        let snap = q.snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.popped, 2);
    }

    #[test]
    fn fair_drop_oldest_targets_the_hoarder() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 4,
            policy: OverloadPolicy::DropOldest,
            fairness: Some(FairnessConfig {
                rate_per_s: 0.0,
                burst: 16.0,
            }),
            default_deadline: None,
        });
        // Client 7 floods; client 1 parks a single query first.
        admit(&q, 1, 100u32);
        for v in 0..3 {
            admit(&q, 7, v);
        }
        // Queue full; the next flood submission evicts 7's own oldest,
        // not client 1's only entry.
        let shed = admit(&q, 7, 3);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.client, 7);
        assert_eq!(shed[0].0.payload, 0);
        let first = pop_now(&q).item.unwrap();
        assert_eq!((first.client, first.payload), (1, 100));
    }

    #[test]
    fn token_bucket_rate_limits_per_client() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 64,
            policy: OverloadPolicy::RejectNewest,
            fairness: Some(FairnessConfig {
                rate_per_s: 0.0,
                burst: 2.0,
            }),
            default_deadline: None,
        });
        admit(&q, 3, ());
        admit(&q, 3, ());
        match q.submit(3, None, ()).unwrap() {
            Submission::Rejected(RejectReason::RateLimited) => {}
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // A different client still has its full burst.
        admit(&q, 4, ());
        let snap = q.snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 3);
    }

    #[test]
    fn deadline_shed_drops_blown_entries_at_pop() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 8,
            policy: OverloadPolicy::DeadlineShed,
            fairness: None,
            default_deadline: Some(Duration::ZERO),
        });
        admit(&q, 0, "blown");
        let popped = pop_now(&q);
        assert!(popped.item.is_none());
        assert_eq!(popped.shed.len(), 1);
        assert_eq!(popped.shed[0].payload, "blown");
        let snap = q.snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.deadline_shed, 1);
    }

    #[test]
    fn deadline_shed_overflow_prefers_blown_then_evicts() {
        let q = AdmissionQueue::new(AdmissionConfig {
            capacity: 2,
            policy: OverloadPolicy::DeadlineShed,
            fairness: None,
            default_deadline: None,
        });
        // One blown entry, one live one.
        match q.submit(0, Some(Duration::ZERO), "blown").unwrap() {
            Submission::Admitted { shed } => assert!(shed.is_empty()),
            other => panic!("{other:?}"),
        }
        admit(&q, 0, "live");
        let shed = admit(&q, 0, "new");
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.payload, "blown");
        assert_eq!(shed[0].1, ShedReason::DeadlineBlown);
        // No blown entries left: a further overflow evicts the oldest.
        let shed = admit(&q, 0, "newer");
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.payload, "live");
        assert_eq!(shed[0].1, ShedReason::Evicted);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = AdmissionQueue::new(cfg(4, OverloadPolicy::Block));
        admit(&q, 0, 1u32);
        admit(&q, 0, 2u32);
        q.close();
        assert!(matches!(
            q.submit(0, None, 3u32),
            Err(ServeError::ChannelClosed)
        ));
        let p = pop_now(&q);
        assert_eq!(p.item.unwrap().payload, 1);
        assert!(!p.closed);
        assert_eq!(pop_now(&q).item.unwrap().payload, 2);
        let last = pop_now(&q);
        assert!(last.item.is_none());
        assert!(last.closed);
    }

    #[test]
    fn block_policy_blocks_until_pop_frees_space() {
        let q = std::sync::Arc::new(AdmissionQueue::new(cfg(1, OverloadPolicy::Block)));
        admit(&q, 0, 0u32);
        let q2 = std::sync::Arc::clone(&q);
        let submitter = std::thread::spawn(move || {
            // Blocks until the consumer pops.
            q2.submit(0, None, 1u32).expect("open")
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "submitter must be blocked, not queued");
        assert_eq!(q.pop(None).item.unwrap().payload, 0);
        match submitter.join().expect("submitter thread") {
            Submission::Admitted { shed } => assert!(shed.is_empty()),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.pop(None).item.unwrap().payload, 1);
    }

    #[test]
    fn blocked_submitter_wakes_on_close() {
        let q = std::sync::Arc::new(AdmissionQueue::new(cfg(1, OverloadPolicy::Block)));
        admit(&q, 0, ());
        let q2 = std::sync::Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.submit(0, None, ()));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(
            submitter.join().expect("submitter thread"),
            Err(ServeError::ChannelClosed)
        ));
        // The blocked-then-refused submission must not be counted.
        let snap = q.snapshot();
        assert_eq!(snap.submitted, 1);
    }

    #[test]
    #[should_panic(expected = "burst must be >= 1")]
    fn sub_one_burst_is_a_misconfiguration() {
        let _: AdmissionQueue<()> = AdmissionQueue::new(AdmissionConfig {
            capacity: 4,
            policy: OverloadPolicy::RejectNewest,
            fairness: Some(FairnessConfig {
                rate_per_s: 100.0,
                burst: 0.5,
            }),
            default_deadline: None,
        });
    }

    #[test]
    fn tracked_client_state_is_bounded() {
        let q = AdmissionQueue::new(cfg(4, OverloadPolicy::DropOldest));
        for id in 0..(MAX_TRACKED_CLIENTS as u64 + 100) {
            let _ = q.submit(id, None, ());
        }
        let snap = q.snapshot();
        assert!(
            snap.clients.len() <= MAX_TRACKED_CLIENTS,
            "client map grew to {}",
            snap.clients.len()
        );
        // Global books stay exact even though idle per-client entries
        // were evicted from the breakdown.
        assert_eq!(
            snap.submitted,
            snap.popped + snap.rejected + snap.shed + snap.queue_depth
        );
    }

    #[test]
    fn eviction_churn_merges_each_state_exactly_once() {
        // Evict → re-track → evict churn within one snapshot window: the
        // per-client books (tracked + evicted aggregate) must reconcile
        // with the global counters, with no observation counted twice
        // and none lost. Before the epoch-deduped merge, evicted state
        // was silently discarded (and a stale idle candidate could hit a
        // re-tracked incarnation), so these sums drifted under churn.
        let q = AdmissionQueue::new(cfg(4, OverloadPolicy::DropOldest));
        let mut answered_recorded = 0u64;
        // Three churn rounds: flood past the tracking bound, answering a
        // few along the way so evicted histograms are non-empty; the
        // repeating low ids are evicted and re-tracked each round.
        for round in 0..3u64 {
            for i in 0..(MAX_TRACKED_CLIENTS as u64 / 2 + 50) {
                // Hot ids 0..5 recur every round (evicted idle, then
                // re-tracked under a fresh epoch); cold ids are fresh
                // each round, so round 2 onward pushes past the bound.
                let id = if i < 5 { i } else { round * 1_000_000 + i };
                let _ = q.submit(id, None, ());
                if id < 5 {
                    // Drain and answer the hot ids' queries immediately,
                    // touching their histograms in every incarnation.
                    while pop_now(&q).item.is_some() {}
                    q.record_answered([(id, 10 * (round + 1))]);
                    answered_recorded += 1;
                }
            }
        }
        let snap = q.snapshot();
        assert!(snap.clients.len() <= MAX_TRACKED_CLIENTS);
        assert!(snap.evicted.clients > 0, "churn must evict");
        // Conservation: tracked + evicted == global, per counter.
        let tracked_submitted: u64 = snap.clients.iter().map(|c| c.submitted).sum();
        assert_eq!(tracked_submitted + snap.evicted.submitted, snap.submitted);
        let tracked_shed: u64 = snap.clients.iter().map(|c| c.shed).sum();
        assert_eq!(tracked_shed + snap.evicted.shed, snap.shed);
        let tracked_rejected: u64 = snap.clients.iter().map(|c| c.rejected).sum();
        assert_eq!(tracked_rejected + snap.evicted.rejected, snap.rejected);
        // Histogram conservation: every recorded answer is in exactly
        // one histogram (the double-count this test guards against).
        let tracked_answers: u64 = snap.clients.iter().map(|c| c.latency.count).sum();
        assert_eq!(
            tracked_answers + snap.evicted.latency.count,
            answered_recorded
        );
        let tracked_answered: u64 = snap.clients.iter().map(|c| c.answered).sum();
        assert_eq!(tracked_answered + snap.evicted.answered, answered_recorded);
    }

    #[test]
    fn accounting_identity_holds() {
        let q = AdmissionQueue::new(cfg(2, OverloadPolicy::DropOldest));
        for i in 0..10u32 {
            let _ = q.submit(u64::from(i % 3), None, i);
        }
        let _ = pop_now(&q);
        let snap = q.snapshot();
        assert_eq!(
            snap.submitted,
            snap.popped + snap.rejected + snap.shed + snap.queue_depth
        );
    }
}
