//! Closed-loop load generation with Zipf-distributed seed popularity.
//!
//! Real serving traffic is heavily skewed — a small set of hot nodes
//! (popular products, large communities) absorbs most queries. The
//! generator reproduces that with a Zipf(`s`) distribution over node ids:
//! node rank `r` (0-based) is drawn with probability ∝ `1/(r+1)^s`.
//!
//! Clients are *closed-loop*: each issues its next query only after the
//! previous one is answered, so offered load adapts to what the server
//! sustains and throughput is measured honestly (no coordinated-omission
//! inflation of the latency numbers beyond what the batching window
//! itself adds).

use crate::metrics::{LatencyHistogram, LatencySummary};
use crate::server::ServerHandle;
use crate::ServeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Instant;

/// Precomputed-CDF Zipf sampler over `0..n`.
///
/// # Example
///
/// ```
/// use maxk_serve::ZipfSampler;
/// use rand::SeedableRng;
///
/// let z = ZipfSampler::new(100, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let id = z.sample(&mut rng);
/// assert!(id < 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` is more skewed).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one item id in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Load-replay configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Seeds per query (1 = single-node queries).
    pub seeds_per_query: usize,
    /// Zipf exponent of the node-popularity distribution.
    pub zipf_exponent: f64,
    /// Base RNG seed (client `i` uses `seed + i`), so a replay is
    /// deterministic in the queries it issues.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            queries_per_client: 250,
            seeds_per_query: 1,
            zipf_exponent: 1.1,
            seed: 0,
        }
    }
}

/// What a load replay measured, client-side.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Total queries answered.
    pub queries: u64,
    /// Wall-clock of the whole replay, seconds.
    pub wall_s: f64,
    /// Aggregate answered queries per second.
    pub throughput_qps: f64,
    /// Client-observed latency distribution (includes batching wait).
    pub latency: LatencySummary,
}

/// Replays Zipf-distributed traffic against `handle` and reports
/// aggregate throughput plus the client-observed latency distribution.
///
/// # Errors
///
/// Propagates the first [`ServeError`] any client hits (e.g. the server
/// shut down mid-replay).
///
/// # Panics
///
/// Panics when `clients`, `queries_per_client` or `seeds_per_query` is 0.
pub fn replay(handle: &ServerHandle, cfg: &LoadConfig) -> Result<LoadReport, ServeError> {
    assert!(cfg.clients > 0, "need at least one client");
    assert!(cfg.queries_per_client > 0, "need at least one query");
    assert!(cfg.seeds_per_query > 0, "need at least one seed per query");
    let zipf = ZipfSampler::new(handle.num_nodes(), cfg.zipf_exponent);
    let hist = Mutex::new(LatencyHistogram::new());
    let first_error: Mutex<Option<ServeError>> = Mutex::new(None);

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..cfg.clients {
            let handle = handle.clone();
            let zipf = &zipf;
            let hist = &hist;
            let first_error = &first_error;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(client as u64));
                let mut local = LatencyHistogram::new();
                for _ in 0..cfg.queries_per_client {
                    let seeds: Vec<u32> = (0..cfg.seeds_per_query)
                        .map(|_| zipf.sample(&mut rng) as u32)
                        .collect();
                    let issued = Instant::now();
                    match handle.query(&seeds) {
                        Ok(_) => {
                            let us = issued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                            local.record(us);
                        }
                        Err(e) => {
                            let mut slot = first_error.lock().expect("error slot poisoned");
                            slot.get_or_insert(e);
                            break;
                        }
                    }
                }
                hist.lock().expect("histogram poisoned").merge(&local);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let hist = hist.into_inner().expect("histogram poisoned");
    let queries = hist.count();
    Ok(LoadReport {
        queries,
        wall_s,
        throughput_qps: if wall_s > 0.0 {
            queries as f64 / wall_s
        } else {
            0.0
        },
        latency: LatencySummary::of(&hist),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InferenceEngine;
    use crate::server::{ServeConfig, Server};
    use maxk_graph::generate;
    use maxk_nn::snapshot::ModelSnapshot;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use maxk_tensor::Matrix;
    use rand::rngs::StdRng;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0u32;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-1% of ranks should take far more than 1% of traffic.
        assert!(head > draws / 10, "only {head}/{draws} draws hit the head");
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((600..1400).contains(&c), "uniform draw count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_rejects_empty_domain() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn replay_reports_all_queries() {
        let graph = generate::chung_lu_power_law(50, 4.0, 2.3, 9)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(2), 4, 2);
        cfg.hidden_dim = 8;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(6);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(50, 4, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        let engine = Arc::new(InferenceEngine::from_snapshot(&snap, &graph, x).unwrap());
        let server = Server::start(
            engine,
            ServeConfig {
                batch_window: Duration::from_millis(1),
                max_batch: 16,
                workers: 1,
            },
        );
        let report = replay(
            &server.handle(),
            &LoadConfig {
                clients: 4,
                queries_per_client: 25,
                seeds_per_query: 2,
                zipf_exponent: 1.0,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(report.queries, 100);
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency.p99_us.is_finite());
        assert_eq!(report.latency.count, 100);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 100);
    }

    #[test]
    fn replay_surfaces_server_shutdown() {
        let graph = generate::chung_lu_power_law(30, 4.0, 2.3, 10)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::Relu, 4, 2);
        cfg.hidden_dim = 8;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(7);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(30, 4, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        let engine = Arc::new(InferenceEngine::from_snapshot(&snap, &graph, x).unwrap());
        let server = Server::start(engine, ServeConfig::default());
        let handle = server.handle();
        let _ = server.shutdown();
        let result = replay(&handle, &LoadConfig::default());
        assert!(matches!(result, Err(ServeError::ChannelClosed)));
    }
}
