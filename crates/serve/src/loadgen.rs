//! Load generation with Zipf-distributed seed popularity: closed-loop
//! replay and an open-loop Poisson generator.
//!
//! Real serving traffic is heavily skewed — a small set of hot nodes
//! (popular products, large communities) absorbs most queries. Both
//! generators reproduce that with a Zipf(`s`) distribution over node
//! ids: node rank `r` (0-based) is drawn with probability ∝ `1/(r+1)^s`.
//!
//! Two loop disciplines, for two different questions:
//!
//! * [`replay`] is **closed-loop**: each client issues its next query
//!   only after the previous one is answered, so offered load adapts to
//!   what the server sustains. That measures *sustainable throughput*
//!   honestly, but by construction it can never overload the server —
//!   the arrival rate collapses to the service rate.
//! * [`open_loop`] is **open-loop**: arrivals follow a Poisson process
//!   at a configured offered rate, independent of how fast answers come
//!   back. Only this discipline can push offered load past capacity and
//!   measure how the admission layer behaves there — bounded p99 and a
//!   goodput plateau with shedding, versus queueing collapse without.
//!
//! Every client's query sequence is a pure function of
//! `(seed, client index)` — per-client RNG streams are derived with a
//! SplitMix64 mix and never shared across threads ([`QueryStream`]) — so
//! a `BENCH_*` run's offered traffic is reproducible regardless of how
//! the OS interleaves client threads.

use crate::exec::{Executor, StdThreadExecutor};
use crate::metrics::{LatencyHistogram, LatencySummary};
use crate::server::{QueryOptions, QueryResponse, ServerHandle};
use crate::ServeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Precomputed-CDF Zipf sampler over `0..n`.
///
/// # Example
///
/// ```
/// use maxk_serve::ZipfSampler;
/// use rand::SeedableRng;
///
/// let z = ZipfSampler::new(100, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let id = z.sample(&mut rng);
/// assert!(id < 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` is more skewed).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one item id in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// SplitMix64 finalizer: decorrelates per-client RNG streams so that
/// `(seed, client)` and `(seed + 1, client - 1)` do not collide the way
/// plain `seed + client` derivation would.
fn mix_seed(base: u64, client: u64) -> u64 {
    let mut z = base ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One client's deterministic query stream: the sequence of seed sets a
/// load-generator client issues, as a pure function of
/// `(base seed, client index)`.
///
/// Both [`replay`] and [`open_loop`] drive one `QueryStream` per client
/// thread, so the *offered* traffic of a `BENCH_*` run is bit-identical
/// across runs and thread interleavings (what the server makes of it —
/// batching, shedding — still depends on timing).
///
/// # Example
///
/// ```
/// use maxk_serve::QueryStream;
///
/// let mut a = QueryStream::new(100, 1.1, 2, 42, 7);
/// let mut b = QueryStream::new(100, 1.1, 2, 42, 7);
/// assert_eq!(a.next_query(), b.next_query()); // same stream, same queries
/// ```
#[derive(Debug, Clone)]
pub struct QueryStream {
    zipf: ZipfSampler,
    rng: StdRng,
    seeds_per_query: usize,
}

impl QueryStream {
    /// Builds client `client`'s stream over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes == 0`, `seeds_per_query == 0` or the Zipf
    /// exponent is invalid.
    pub fn new(
        num_nodes: usize,
        zipf_exponent: f64,
        seeds_per_query: usize,
        base_seed: u64,
        client: u64,
    ) -> Self {
        assert!(seeds_per_query > 0, "need at least one seed per query");
        QueryStream {
            zipf: ZipfSampler::new(num_nodes, zipf_exponent),
            rng: StdRng::seed_from_u64(mix_seed(base_seed, client)),
            seeds_per_query,
        }
    }

    /// The next query's seed set.
    pub fn next_query(&mut self) -> Vec<u32> {
        (0..self.seeds_per_query)
            .map(|_| self.zipf.sample(&mut self.rng) as u32)
            .collect()
    }
}

/// Closed-loop load-replay configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Seeds per query (1 = single-node queries).
    pub seeds_per_query: usize,
    /// Zipf exponent of the node-popularity distribution.
    pub zipf_exponent: f64,
    /// Base RNG seed. Client `i`'s stream is derived via a SplitMix64
    /// mix of `(seed, i)` ([`QueryStream`]), so the replayed traffic is
    /// deterministic across runs and thread interleavings.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            queries_per_client: 250,
            seeds_per_query: 1,
            zipf_exponent: 1.1,
            seed: 0,
        }
    }
}

/// What a closed-loop load replay measured, client-side.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Total queries answered with logits.
    pub queries: u64,
    /// Queries the admission layer rejected at the door (only nonzero
    /// when the server runs a non-default admission config).
    pub rejected: u64,
    /// Admitted queries the admission layer shed before a forward.
    pub shed: u64,
    /// Wall-clock of the whole replay, seconds.
    pub wall_s: f64,
    /// Aggregate answered queries per second.
    pub throughput_qps: f64,
    /// Client-observed latency distribution of answered queries
    /// (includes batching wait).
    pub latency: LatencySummary,
}

/// Replays Zipf-distributed traffic against `handle` (closed-loop: each
/// client waits for its answer before issuing the next query) and
/// reports aggregate throughput plus the client-observed latency
/// distribution. Client `i` submits as [`QueryOptions::client`] `i`, so
/// per-client server stats line up with generator clients.
///
/// # Errors
///
/// Propagates the first [`ServeError`] any client hits (e.g. the server
/// shut down mid-replay).
///
/// # Panics
///
/// Panics when `clients`, `queries_per_client` or `seeds_per_query` is 0.
pub fn replay(handle: &ServerHandle, cfg: &LoadConfig) -> Result<LoadReport, ServeError> {
    assert!(cfg.clients > 0, "need at least one client");
    assert!(cfg.queries_per_client > 0, "need at least one query");
    assert!(cfg.seeds_per_query > 0, "need at least one seed per query");
    let hist = Mutex::new(LatencyHistogram::new());
    let rejected = Mutex::new(0u64);
    let shed = Mutex::new(0u64);
    let first_error: Mutex<Option<ServeError>> = Mutex::new(None);

    let t0 = Instant::now();
    StdThreadExecutor.scope(|s| {
        for client in 0..cfg.clients {
            let handle = handle.clone();
            let hist = &hist;
            let rejected = &rejected;
            let shed = &shed;
            let first_error = &first_error;
            s.spawn(move || {
                let mut stream = QueryStream::new(
                    handle.num_nodes(),
                    cfg.zipf_exponent,
                    cfg.seeds_per_query,
                    cfg.seed,
                    client as u64,
                );
                let opts = QueryOptions::new().for_client(client as u64);
                let mut local = LatencyHistogram::new();
                let mut local_rejected = 0u64;
                let mut local_shed = 0u64;
                for _ in 0..cfg.queries_per_client {
                    let seeds = stream.next_query();
                    let issued = Instant::now();
                    match handle.request(&seeds, opts).and_then(|p| p.wait()) {
                        Ok(QueryResponse::Answered(_)) => {
                            let us = issued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                            local.record(us);
                        }
                        Ok(QueryResponse::Rejected(_)) => local_rejected += 1,
                        Ok(QueryResponse::Shed(_)) => local_shed += 1,
                        Err(e) => {
                            let mut slot = first_error.lock().expect("error slot poisoned");
                            slot.get_or_insert(e);
                            break;
                        }
                    }
                }
                hist.lock().expect("histogram poisoned").merge(&local);
                *rejected.lock().expect("counter poisoned") += local_rejected;
                *shed.lock().expect("counter poisoned") += local_shed;
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let hist = hist.into_inner().expect("histogram poisoned");
    let queries = hist.count();
    Ok(LoadReport {
        queries,
        rejected: rejected.into_inner().expect("counter poisoned"),
        shed: shed.into_inner().expect("counter poisoned"),
        wall_s,
        throughput_qps: if wall_s > 0.0 {
            queries as f64 / wall_s
        } else {
            0.0
        },
        latency: LatencySummary::of(&hist),
    })
}

/// Open-loop (Poisson-arrival) load configuration.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Generator threads; the aggregate offered rate is split evenly
    /// across them (each is an independent Poisson process, and a
    /// superposition of Poisson processes is Poisson).
    pub clients: usize,
    /// Aggregate offered arrival rate, queries per second.
    pub offered_qps: f64,
    /// How long arrivals keep coming. The run then drains outstanding
    /// queries, so wall-clock exceeds this under overload.
    pub duration: Duration,
    /// Seeds per query (1 = single-node queries).
    pub seeds_per_query: usize,
    /// Zipf exponent of the node-popularity distribution.
    pub zipf_exponent: f64,
    /// Base RNG seed; per-client streams derive from it as in
    /// [`LoadConfig::seed`] (arrival times use an independent derived
    /// stream, so query *content* matches a [`replay`] with the same
    /// seed).
    pub seed: u64,
    /// Per-query latency budget submitted with each query; answers
    /// later than this don't count toward goodput.
    pub deadline: Option<Duration>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            clients: 4,
            offered_qps: 500.0,
            duration: Duration::from_secs(1),
            seeds_per_query: 1,
            zipf_exponent: 1.1,
            seed: 0,
            deadline: None,
        }
    }
}

/// What an open-loop run measured, client-side.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Configured aggregate offered rate (q/s).
    pub offered_qps: f64,
    /// Queries actually submitted (≈ `offered_qps × duration`).
    pub submitted: u64,
    /// Queries answered with logits.
    pub answered: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
    /// Admitted queries shed before a forward.
    pub shed: u64,
    /// Answered queries that still missed their deadline (client-side
    /// check against [`OpenLoopConfig::deadline`]).
    pub late: u64,
    /// Wall-clock including the post-arrival drain, seconds.
    pub wall_s: f64,
    /// *Goodput*: answers that met their deadline (all answers when no
    /// deadline is set) per second of wall-clock. The number that should
    /// plateau — rather than collapse — past saturation.
    pub goodput_qps: f64,
    /// Client-observed latency distribution of answered queries
    /// (submit → reply collected).
    pub latency: LatencySummary,
}

/// Drives an open-loop Poisson arrival process against `handle`.
///
/// Each client thread fires queries at exponentially-distributed
/// inter-arrival times *without waiting for replies* (a paired collector
/// thread gathers outcomes in submission order), so the offered rate
/// stays fixed as the server saturates — the regime where admission
/// control earns its keep. A closed-loop generator cannot create this
/// regime by construction: its arrival rate collapses to the service
/// rate, which is why [`replay`] alone cannot measure overload behavior.
///
/// Under [`crate::admission::OverloadPolicy::Block`] the submit itself
/// blocks when the queue fills; arrivals then fall behind schedule and
/// the measured latency includes that blocked time, which is exactly the
/// unbounded-latency failure mode the policy exhibits under overload.
///
/// # Errors
///
/// Propagates the first [`ServeError`] any client hits (e.g. the server
/// shut down mid-run).
///
/// # Panics
///
/// Panics when `clients`, `seeds_per_query`, `offered_qps` or `duration`
/// is zero/non-positive.
pub fn open_loop(
    handle: &ServerHandle,
    cfg: &OpenLoopConfig,
) -> Result<OpenLoopReport, ServeError> {
    assert!(cfg.clients > 0, "need at least one client");
    assert!(cfg.seeds_per_query > 0, "need at least one seed per query");
    assert!(
        cfg.offered_qps.is_finite() && cfg.offered_qps > 0.0,
        "offered rate must be positive"
    );
    assert!(!cfg.duration.is_zero(), "duration must be nonzero");
    let per_client_rate = cfg.offered_qps / cfg.clients as f64;

    #[derive(Default)]
    struct Tally {
        submitted: u64,
        answered: u64,
        rejected: u64,
        shed: u64,
        late: u64,
        hist: LatencyHistogram,
    }
    let tally = Mutex::new(Tally::default());
    let first_error: Mutex<Option<ServeError>> = Mutex::new(None);

    let t0 = Instant::now();
    StdThreadExecutor.scope(|s| {
        for client in 0..cfg.clients {
            let handle = handle.clone();
            let tally = &tally;
            let first_error = &first_error;
            s.spawn(move || {
                let mut stream = QueryStream::new(
                    handle.num_nodes(),
                    cfg.zipf_exponent,
                    cfg.seeds_per_query,
                    cfg.seed,
                    client as u64,
                );
                // Independent derived stream for arrival times, so the
                // query content stream matches a same-seed replay().
                let mut clock_rng = StdRng::seed_from_u64(mix_seed(
                    cfg.seed ^ 0xA5A5_5A5A_F00D_CAFE,
                    client as u64,
                ));
                let opts = {
                    let o = QueryOptions::new().for_client(client as u64);
                    match cfg.deadline {
                        Some(d) => o.with_deadline(d),
                        None => o,
                    }
                };

                // Collector: waits on pending queries in submission
                // order while the submitter keeps to its schedule.
                let deadline = cfg.deadline;
                let (pending_tx, pending_rx) = StdThreadExecutor.unbounded();
                let collector = StdThreadExecutor.spawn_worker("maxk-collector", move || {
                    let mut local = Tally::default();
                    let mut error = None;
                    while let Ok((pending, issued)) = pending_rx.recv() {
                        let pending: crate::server::PendingQuery = pending;
                        let issued: Instant = issued;
                        match pending.wait() {
                            Ok(QueryResponse::Answered(_)) => {
                                let lat = issued.elapsed();
                                let us = lat.as_micros().min(u128::from(u64::MAX)) as u64;
                                local.answered += 1;
                                local.hist.record(us);
                                if deadline.is_some_and(|d| lat > d) {
                                    local.late += 1;
                                }
                            }
                            Ok(QueryResponse::Rejected(_)) => local.rejected += 1,
                            Ok(QueryResponse::Shed(_)) => local.shed += 1,
                            Err(e) => {
                                error.get_or_insert(e);
                                break;
                            }
                        }
                    }
                    (local, error)
                });

                let start = Instant::now();
                let mut next_arrival = Duration::ZERO;
                let mut submitted = 0u64;
                loop {
                    // Exponential inter-arrival: -ln(1 - u) / rate.
                    let u: f64 = clock_rng.gen_range(0.0..1.0);
                    next_arrival += Duration::from_secs_f64((-(1.0 - u).ln()) / per_client_rate);
                    if next_arrival >= cfg.duration {
                        break;
                    }
                    let now = start.elapsed();
                    if next_arrival > now {
                        std::thread::sleep(next_arrival - now);
                    }
                    let seeds = stream.next_query();
                    let issued = Instant::now();
                    match handle.request(&seeds, opts) {
                        Ok(pending) => {
                            submitted += 1;
                            if pending_tx.send((pending, issued)).is_err() {
                                break; // collector bailed on an error
                            }
                        }
                        Err(e) => {
                            let mut slot = first_error.lock().expect("error slot poisoned");
                            slot.get_or_insert(e);
                            break;
                        }
                    }
                }
                drop(pending_tx);
                let (mut local, error) = collector.join().expect("collector thread");
                local.submitted = submitted;
                if let Some(e) = error {
                    let mut slot = first_error.lock().expect("error slot poisoned");
                    slot.get_or_insert(e);
                }
                let mut t = tally.lock().expect("tally poisoned");
                t.submitted += local.submitted;
                t.answered += local.answered;
                t.rejected += local.rejected;
                t.shed += local.shed;
                t.late += local.late;
                t.hist.merge(&local.hist);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let t = tally.into_inner().expect("tally poisoned");
    let good = t.answered - t.late;
    Ok(OpenLoopReport {
        offered_qps: cfg.offered_qps,
        submitted: t.submitted,
        answered: t.answered,
        rejected: t.rejected,
        shed: t.shed,
        late: t.late,
        wall_s,
        goodput_qps: if wall_s > 0.0 {
            good as f64 / wall_s
        } else {
            0.0
        },
        latency: LatencySummary::of(&t.hist),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionConfig, OverloadPolicy};
    use crate::engine::InferenceEngine;
    use crate::server::Server;
    use maxk_graph::generate;
    use maxk_nn::snapshot::ModelSnapshot;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use maxk_tensor::Matrix;
    use rand::rngs::StdRng;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0u32;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-1% of ranks should take far more than 1% of traffic.
        assert!(head > draws / 10, "only {head}/{draws} draws hit the head");
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((600..1400).contains(&c), "uniform draw count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_rejects_empty_domain() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn query_streams_are_deterministic_and_per_client() {
        // Same (seed, client) -> identical sequence; this is what makes
        // replay()/open_loop() traffic reproducible across thread
        // interleavings (each thread owns exactly one stream).
        let take = |client: u64, seed: u64| -> Vec<Vec<u32>> {
            let mut s = QueryStream::new(500, 1.1, 3, seed, client);
            (0..50).map(|_| s.next_query()).collect()
        };
        assert_eq!(take(0, 42), take(0, 42));
        assert_eq!(take(3, 42), take(3, 42));
        // Different clients (or base seeds) get different streams.
        assert_ne!(take(0, 42), take(1, 42));
        assert_ne!(take(0, 42), take(0, 43));
        // The SplitMix64 derivation decorrelates (seed+1, client-1)
        // from (seed, client) — plain additive derivation would not.
        assert_ne!(take(1, 42), take(0, 43));
    }

    fn test_server(window_ms: u64, max_batch: usize, admission: AdmissionConfig) -> Server {
        let graph = generate::chung_lu_power_law(50, 4.0, 2.3, 9)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(2), 4, 2);
        cfg.hidden_dim = 8;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(6);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(50, 4, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        let engine = Arc::new(InferenceEngine::from_snapshot(&snap, &graph, x).unwrap());
        Server::builder()
            .batch_window(Duration::from_millis(window_ms))
            .max_batch(max_batch)
            .workers(1)
            .admission(admission)
            .start(engine)
    }

    #[test]
    fn replay_reports_all_queries() {
        let server = test_server(1, 16, AdmissionConfig::default());
        let report = replay(
            &server.handle(),
            &LoadConfig {
                clients: 4,
                queries_per_client: 25,
                seeds_per_query: 2,
                zipf_exponent: 1.0,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(report.queries, 100);
        assert_eq!(report.rejected + report.shed, 0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency.p99_us.is_finite());
        assert_eq!(report.latency.count, 100);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 100);
        assert_eq!(stats.submitted, 100);
    }

    #[test]
    fn replay_surfaces_server_shutdown() {
        let server = test_server(2, 64, AdmissionConfig::default());
        let handle = server.handle();
        let _ = server.shutdown();
        let result = replay(&handle, &LoadConfig::default());
        assert!(matches!(result, Err(ServeError::ChannelClosed)));
    }

    #[test]
    fn open_loop_books_balance() {
        let server = test_server(1, 16, AdmissionConfig::default());
        let report = open_loop(
            &server.handle(),
            &OpenLoopConfig {
                clients: 2,
                offered_qps: 400.0,
                duration: Duration::from_millis(300),
                seeds_per_query: 1,
                zipf_exponent: 1.1,
                seed: 11,
                deadline: None,
            },
        )
        .unwrap();
        assert!(report.submitted > 0, "open loop submitted nothing");
        assert_eq!(
            report.submitted,
            report.answered + report.rejected + report.shed,
            "every submitted query must resolve exactly once"
        );
        let stats = server.shutdown();
        assert_eq!(stats.queries, report.answered);
        assert_eq!(stats.submitted, report.submitted);
    }

    #[test]
    fn open_loop_sheds_under_deadline_overload() {
        // Tiny queue + zero budget: every admitted query is blown by the
        // time the batcher sees it, so everything is rejected or shed and
        // no forwards run.
        let server = test_server(
            0,
            4,
            AdmissionConfig {
                capacity: 4,
                policy: OverloadPolicy::DeadlineShed,
                ..AdmissionConfig::default()
            },
        );
        let report = open_loop(
            &server.handle(),
            &OpenLoopConfig {
                clients: 2,
                offered_qps: 500.0,
                duration: Duration::from_millis(200),
                seeds_per_query: 1,
                zipf_exponent: 1.1,
                seed: 5,
                deadline: Some(Duration::ZERO),
            },
        )
        .unwrap();
        assert!(report.submitted > 0);
        assert_eq!(report.answered, 0, "zero budget must shed everything");
        assert_eq!(report.shed, report.submitted);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0, "blown queries must not cost forwards");
        assert_eq!(stats.shed, report.shed);
        assert_eq!(stats.deadline_misses, report.shed);
    }
}
