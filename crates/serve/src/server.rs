//! The micro-batching request queue.
//!
//! Architecture (all `std::thread` + `std::sync::mpsc`, no external
//! crates):
//!
//! ```text
//! clients ──ServerHandle::query──▶ ingress channel
//!                                      │
//!                                  batcher thread
//!                 (coalesce queries arriving within `batch_window`,
//!                  up to `max_batch` per batch)
//!                                      │
//!                                 batch channel
//!                                      │
//!                        worker pool (`workers` threads)
//!               (one shared forward per batch — full-graph or
//!                seed-restricted per the cost heuristic — gather
//!                seed rows, reply per query, record latency)
//! ```
//!
//! Each batch costs **one** engine forward regardless of how many queries
//! it carries, so coalescing multiplies throughput by the mean batch
//! occupancy — the serving-side analogue of the paper's full-batch
//! aggregation amortization. Setting `max_batch = 1` (window 0) degrades
//! to the one-query-per-forward baseline that `serve_bench` compares
//! against.
//!
//! Per batch, the worker hands the batch's **seed union** to the engine
//! ([`BatchEngine::forward_union`]). The single
//! [`crate::InferenceEngine`] plans full vs. seed-restricted over the
//! union (partial when the union's reverse L-hop frontier is small); the
//! sharded [`crate::ShardedEngine`] scatters the union to owner shards,
//! each planning independently. [`StatsSnapshot::partial_batches`] and
//! the per-shard [`StatsSnapshot::shard_batches`] /
//! [`StatsSnapshot::shard_partial_batches`] counters report how often
//! each path won and how batches spread over shards.

use crate::engine::{check_seeds, BatchEngine};
use crate::metrics::{LatencyHistogram, LatencySummary};
use crate::ServeError;
use maxk_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// How long the batcher keeps a batch open after its first query,
    /// waiting for more to coalesce. Zero disables coalescing waits.
    pub batch_window: Duration,
    /// Hard cap on queries per batch (1 = unbatched baseline).
    pub max_batch: usize,
    /// Forward-executor threads. Batches are handed out one at a time, so
    /// extra workers overlap independent batch forwards.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 64,
            workers: 2,
        }
    }
}

/// Answer to one query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Logit rows for the requested seeds, in request order
    /// (`seeds.len() × out_dim`).
    pub logits: Matrix,
    /// How many queries shared this forward pass.
    pub batch_size: usize,
    /// Queue + compute latency observed by the server.
    pub latency: Duration,
    /// Whether at least one shard serving this batch ran the
    /// seed-restricted partial forward (for an unsharded engine: whether
    /// the batch's one forward was partial).
    pub partial: bool,
}

struct Request {
    seeds: Vec<u32>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<QueryResponse, ServeError>>,
}

/// Ingress protocol. An explicit `Shutdown` marker (rather than relying
/// on every sender clone being dropped) lets [`Server::shutdown`] stop
/// the batcher even while client [`ServerHandle`]s are still alive.
enum Msg {
    Query(Box<Request>),
    Shutdown,
}

/// Aggregate serving counters, shared between workers and observers.
#[derive(Debug)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    partial_batches: AtomicU64,
    /// Batches each shard participated in (length = engine shard count).
    shard_batches: Vec<AtomicU64>,
    /// Of those, how many the shard served via the partial path.
    shard_partial_batches: Vec<AtomicU64>,
}

impl Counters {
    fn new(num_shards: usize) -> Self {
        Counters {
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            partial_batches: AtomicU64::new(0),
            shard_batches: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            shard_partial_batches: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Point-in-time statistics read-out of a running [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Queries answered so far.
    pub queries: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Batches where at least one participating shard ran the
    /// seed-restricted partial forward (for an unsharded engine this is
    /// exactly the partial-batch count).
    pub partial_batches: u64,
    /// Per shard: batches the shard participated in (one entry per shard;
    /// a single unsharded engine reports one entry equal to `batches`).
    pub shard_batches: Vec<u64>,
    /// Per shard: batches the shard served via the partial path.
    pub shard_partial_batches: Vec<u64>,
    /// Mean queries per batch (1.0 means batching bought nothing).
    pub mean_batch: f64,
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Served queries per second since start.
    pub throughput_qps: f64,
    /// Server-side latency distribution (enqueue → reply).
    pub latency: LatencySummary,
}

/// A running micro-batched inference server.
///
/// Dropping (or [`Server::shutdown`]) closes the ingress, flushes
/// in-flight batches and joins every thread.
///
/// # Examples
///
/// ```
/// use maxk_serve::{InferenceEngine, ServeConfig, Server};
/// use maxk_nn::snapshot::ModelSnapshot;
/// use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
/// use maxk_graph::generate;
/// use maxk_tensor::Matrix;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let graph = generate::chung_lu_power_law(40, 5.0, 2.3, 1).to_csr().unwrap();
/// let mut cfg = ModelConfig::new(Arch::Gcn, Activation::Relu, 6, 2);
/// cfg.hidden_dim = 8;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = GnnModel::new(cfg, &graph, &mut rng);
/// let engine = Arc::new(
///     InferenceEngine::from_snapshot(
///         &ModelSnapshot::capture(&model),
///         &graph,
///         Matrix::xavier(40, 6, &mut rng),
///     )
///     .unwrap(),
/// );
///
/// let server = Server::start(engine, ServeConfig::default());
/// let response = server.handle().query(&[0, 5]).unwrap();
/// assert_eq!(response.logits.shape(), (2, 2));
/// let stats = server.shutdown();
/// assert_eq!(stats.queries, 1);
/// ```
pub struct Server {
    ingress: Option<mpsc::Sender<Msg>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    hist: Arc<Mutex<LatencyHistogram>>,
    started: Instant,
    num_nodes: usize,
}

impl Server {
    /// Starts the batcher and worker threads over `engine` — the single
    /// [`crate::InferenceEngine`] or the sharded [`crate::ShardedEngine`]
    /// router, anything implementing [`BatchEngine`].
    pub fn start<E: BatchEngine + 'static>(engine: Arc<E>, cfg: ServeConfig) -> Server {
        let num_nodes = engine.num_nodes();
        let counters = Arc::new(Counters::new(engine.num_shards()));
        let hist = Arc::new(Mutex::new(LatencyHistogram::new()));
        let (ingress_tx, ingress_rx) = mpsc::channel::<Msg>();
        let (batch_tx, batch_rx) = mpsc::channel::<Vec<Box<Request>>>();
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let max_batch = cfg.max_batch.max(1);
        let window = cfg.batch_window;
        let batcher = std::thread::spawn(move || {
            loop {
                // Block for the batch's first query; leave on shutdown or
                // when every sender is gone.
                let first = match ingress_rx.recv() {
                    Ok(Msg::Query(r)) => r,
                    Ok(Msg::Shutdown) | Err(_) => break,
                };
                let mut batch = vec![first];
                let mut stop = false;
                let deadline = Instant::now() + window;
                while batch.len() < max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match ingress_rx.recv_timeout(deadline - now) {
                        Ok(Msg::Query(r)) => batch.push(r),
                        Ok(Msg::Shutdown) => {
                            stop = true;
                            break;
                        }
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            break
                        }
                    }
                }
                // Flush the in-flight batch even when shutting down.
                if batch_tx.send(batch).is_err() || stop {
                    break;
                }
            }
        });

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            let batch_rx = Arc::clone(&batch_rx);
            let counters = Arc::clone(&counters);
            let hist = Arc::clone(&hist);
            workers.push(std::thread::spawn(move || {
                loop {
                    // The guard is held across the blocking recv: waiting
                    // workers queue on the mutex, so batches are handed
                    // out one at a time while compute overlaps.
                    let batch = match batch_rx.lock().expect("batch queue poisoned").recv() {
                        Ok(b) => b,
                        Err(_) => break,
                    };
                    let size = batch.len();
                    // One shared forward pass for the whole batch over
                    // its seed union: the engine plans full vs.
                    // seed-restricted per shard (a single engine is one
                    // shard) and returns union-covering logits.
                    let mut union: Vec<u32> =
                        batch.iter().flat_map(|r| r.seeds.iter().copied()).collect();
                    union.sort_unstable();
                    union.dedup();
                    let outcome = engine.forward_union(&union);
                    let partial = outcome.any_partial();
                    let logits = outcome.logits;
                    counters.batches.fetch_add(1, Ordering::Relaxed);
                    if partial {
                        counters.partial_batches.fetch_add(1, Ordering::Relaxed);
                    }
                    for &(s, shard_partial) in &outcome.shards {
                        counters.shard_batches[s].fetch_add(1, Ordering::Relaxed);
                        if shard_partial {
                            counters.shard_partial_batches[s].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    counters.queries.fetch_add(size as u64, Ordering::Relaxed);
                    let mut latencies = Vec::with_capacity(size);
                    for req in batch {
                        let latency = req.enqueued.elapsed();
                        latencies.push(latency.as_micros().min(u128::from(u64::MAX)) as u64);
                        let response = QueryResponse {
                            logits: logits.gather(&req.seeds),
                            batch_size: size,
                            latency,
                            partial,
                        };
                        // A client that gave up is not an error.
                        let _ = req.reply.send(Ok(response));
                    }
                    // Take the shared lock only after every client has
                    // its reply, and only for the cheap counter bumps —
                    // a concurrent worker or stats() reader never waits
                    // on this batch's row gathering.
                    let mut hist = hist.lock().expect("histogram poisoned");
                    for us in latencies {
                        hist.record(us);
                    }
                }
            }));
        }

        Server {
            ingress: Some(ingress_tx),
            batcher: Some(batcher),
            workers,
            counters,
            hist,
            started: Instant::now(),
            num_nodes,
        }
    }

    /// A cloneable client handle for submitting queries.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            tx: self.ingress.as_ref().expect("server running").clone(),
            num_nodes: self.num_nodes,
        }
    }

    /// Current counters and latency distribution.
    pub fn stats(&self) -> StatsSnapshot {
        let queries = self.counters.queries.load(Ordering::Relaxed);
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let partial_batches = self.counters.partial_batches.load(Ordering::Relaxed);
        let uptime_s = self.started.elapsed().as_secs_f64();
        StatsSnapshot {
            queries,
            batches,
            partial_batches,
            shard_batches: self
                .counters
                .shard_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shard_partial_batches: self
                .counters
                .shard_partial_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            // Every served query belongs to exactly one batch, so the
            // mean occupancy is just the ratio of the two counters.
            mean_batch: if batches == 0 {
                0.0
            } else {
                queries as f64 / batches as f64
            },
            uptime_s,
            throughput_qps: if uptime_s > 0.0 {
                queries as f64 / uptime_s
            } else {
                0.0
            },
            latency: LatencySummary::of(&self.hist.lock().expect("histogram poisoned")),
        }
    }

    /// Stops accepting queries, drains in-flight batches, joins every
    /// thread and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.join_threads();
        self.stats()
    }

    fn join_threads(&mut self) {
        // The explicit marker stops the batcher even while client handle
        // clones keep the ingress channel alive; the batcher exiting
        // drops its batch sender, which unblocks the workers.
        if let Some(tx) = self.ingress.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// Cheap cloneable client endpoint of a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    tx: mpsc::Sender<Msg>,
    num_nodes: usize,
}

impl ServerHandle {
    /// Submits a seed-set query and blocks until its batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyQuery`] / [`ServeError::SeedOutOfRange`] on bad
    /// input (validated before enqueueing, so invalid queries never cost a
    /// forward); [`ServeError::ChannelClosed`] when the server has shut
    /// down.
    pub fn query(&self, seeds: &[u32]) -> Result<QueryResponse, ServeError> {
        check_seeds(seeds, self.num_nodes)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Box::new(Request {
            seeds: seeds.to_vec(),
            enqueued: Instant::now(),
            reply: reply_tx,
        });
        self.tx
            .send(Msg::Query(request))
            .map_err(|_| ServeError::ChannelClosed)?;
        reply_rx.recv().map_err(|_| ServeError::ChannelClosed)?
    }

    /// Nodes served (valid seeds are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InferenceEngine;
    use maxk_graph::generate;
    use maxk_nn::snapshot::ModelSnapshot;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> Arc<InferenceEngine> {
        let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 3)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(60, 6, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        Arc::new(InferenceEngine::from_snapshot(&snap, &graph, x).unwrap())
    }

    #[test]
    fn serves_correct_logits() {
        let engine = engine();
        let expected = engine.forward_all();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        let handle = server.handle();
        let resp = handle.query(&[3, 59]).unwrap();
        assert_eq!(resp.logits.shape(), (2, 3));
        assert_eq!(resp.logits.row(0), expected.row(3));
        assert_eq!(resp.logits.row(1), expected.row(59));
        assert!(resp.batch_size >= 1);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn concurrent_queries_coalesce() {
        let engine = engine();
        let server = Server::start(
            engine,
            ServeConfig {
                batch_window: Duration::from_millis(20),
                max_batch: 64,
                workers: 1,
            },
        );
        let handle = server.handle();
        let clients = 8;
        std::thread::scope(|s| {
            for c in 0..clients {
                let h = handle.clone();
                s.spawn(move || {
                    let resp = h.query(&[c as u32]).unwrap();
                    assert_eq!(resp.logits.shape(), (1, 3));
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.queries, clients as u64);
        // With a 20ms window and instant concurrent arrivals, at least one
        // batch must carry more than one query.
        assert!(
            stats.batches < clients as u64,
            "expected coalescing, got {} batches",
            stats.batches
        );
        assert!(stats.mean_batch > 1.0);
        assert!(stats.latency.p99_us.is_finite());
    }

    #[test]
    fn unbatched_config_serves_one_query_per_forward() {
        let engine = engine();
        let server = Server::start(
            engine,
            ServeConfig {
                batch_window: Duration::ZERO,
                max_batch: 1,
                workers: 1,
            },
        );
        let handle = server.handle();
        for i in 0..5u32 {
            let resp = handle.query(&[i]).unwrap();
            assert_eq!(resp.batch_size, 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.batches, 5);
        assert!((stats.mean_batch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_batches_counted_and_flagged() {
        use maxk_nn::PlanConfig;
        let force = |seed_frac_cutoff: f64, work_ratio: f64| {
            let e = Arc::try_unwrap(engine())
                .expect("sole owner")
                .with_plan_config(PlanConfig {
                    seed_frac_cutoff,
                    work_ratio,
                });
            Arc::new(e)
        };
        // Always-partial heuristic: the response and counters must say so.
        let server = Server::start(force(1.0, f64::INFINITY), ServeConfig::default());
        let expected = {
            let h = server.handle();
            let resp = h.query(&[7]).unwrap();
            assert!(resp.partial);
            resp.logits
        };
        let stats = server.shutdown();
        assert_eq!(stats.partial_batches, 1);
        // Always-full heuristic: same logits bitwise, no partial batches.
        let server = Server::start(force(0.0, 0.0), ServeConfig::default());
        let resp = server.handle().query(&[7]).unwrap();
        assert!(!resp.partial);
        assert_eq!(resp.logits, expected);
        let stats = server.shutdown();
        assert_eq!(stats.partial_batches, 0);
    }

    #[test]
    fn sharded_engine_serves_through_the_same_api() {
        use crate::{ShardConfig, ShardedEngine};
        let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 3)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(60, 6, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        let single = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
        let expected = single.forward_all();
        let sharded = ShardedEngine::from_snapshot(
            &snap,
            &graph,
            &x,
            ShardConfig {
                num_shards: 2,
                strategy: maxk_graph::shard::ShardStrategy::Contiguous,
            },
        )
        .unwrap();
        let server = Server::start(Arc::new(sharded), ServeConfig::default());
        let handle = server.handle();
        // A query spanning both shards (contiguous: low ids shard 0,
        // high ids shard 1) must return the unsharded rows.
        let resp = handle.query(&[0, 59, 30]).unwrap();
        assert_eq!(resp.logits.row(0), expected.row(0));
        assert_eq!(resp.logits.row(1), expected.row(59));
        assert_eq!(resp.logits.row(2), expected.row(30));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.shard_batches.len(), 2);
        assert_eq!(stats.shard_partial_batches.len(), 2);
        // Both shards saw the one batch.
        assert_eq!(stats.shard_batches, vec![1, 1]);
    }

    #[test]
    fn single_engine_reports_one_shard_counter() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let _ = server.handle().query(&[1]).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.shard_batches, vec![stats.batches]);
        assert_eq!(stats.shard_partial_batches, vec![stats.partial_batches]);
    }

    #[test]
    fn bad_queries_rejected_without_reaching_workers() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let handle = server.handle();
        assert!(matches!(handle.query(&[]), Err(ServeError::EmptyQuery)));
        assert!(matches!(
            handle.query(&[1000]),
            Err(ServeError::SeedOutOfRange { .. })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn query_after_shutdown_fails_cleanly() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let handle = server.handle();
        let _ = server.shutdown();
        assert!(matches!(handle.query(&[0]), Err(ServeError::ChannelClosed)));
    }
}
