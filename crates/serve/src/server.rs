//! The micro-batching request queue behind the admission layer.
//!
//! Architecture (all `std::thread` + `std::sync` primitives, no external
//! crates):
//!
//! ```text
//! clients ──ServerHandle::submit/query──▶ admission layer
//!              (bounded queue + overload policy + per-client
//!               token buckets; Rejected/Shed outcomes surface
//!               here instead of queueing without bound)
//!                                      │
//!                                  batcher thread
//!                 (coalesce queries arriving within `batch_window`,
//!                  up to `max_batch` per batch; deadline-blown
//!                  entries are shed before costing a forward)
//!                                      │
//!                                 batch channel
//!                                      │
//!                        worker pool (`workers` threads)
//!               (one shared forward per batch — full-graph or
//!                seed-restricted per the cost heuristic — gather
//!                seed rows, reply per query, record latency)
//! ```
//!
//! Each batch costs **one** engine forward regardless of how many queries
//! it carries, so coalescing multiplies throughput by the mean batch
//! occupancy — the serving-side analogue of the paper's full-batch
//! aggregation amortization. Setting `max_batch = 1` (window 0) degrades
//! to the one-query-per-forward baseline that `serve_bench` compares
//! against.
//!
//! The admission layer ([`crate::admission`]) bounds what reaches the
//! batcher: when offered load exceeds forward throughput, queries are
//! rejected or shed (per [`AdmissionConfig::policy`]) instead of growing
//! an unbounded queue, so p99 latency stays a property of the system
//! rather than of how long the overload has lasted. Callers see the
//! outcome as [`QueryResponse::Rejected`] / [`QueryResponse::Shed`]
//! rather than a hang, and [`StatsSnapshot`] reconciles every submitted
//! query into answered/rejected/shed exactly (plus, while loaded, the
//! queued and mid-flight queries still working their way through the
//! batcher and workers).
//!
//! Per batch, the worker hands the batch's **seed union** to the engine
//! ([`BatchEngine::forward_union`]). The single
//! [`crate::InferenceEngine`] plans full vs. seed-restricted over the
//! union (partial when the union's reverse L-hop frontier is small); the
//! sharded [`crate::ShardedEngine`] scatters the union to owner shards,
//! each planning independently. [`StatsSnapshot::partial_batches`] and
//! the per-shard [`StatsSnapshot::shard_batches`] /
//! [`StatsSnapshot::shard_partial_batches`] counters report how often
//! each path won and how batches spread over shards.

use crate::admission::{
    AdmissionConfig, AdmissionQueue, Entry, RejectReason, ShedReason, Submission,
};
use crate::engine::{check_seeds, BatchEngine};
use crate::metrics::{ClientStats, LatencyHistogram, LatencySummary};
use crate::ServeError;
use maxk_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// How long the batcher keeps a batch open after its first query,
    /// waiting for more to coalesce. Zero disables coalescing waits.
    pub batch_window: Duration,
    /// Hard cap on queries per batch (1 = unbatched baseline).
    pub max_batch: usize,
    /// Forward-executor threads. Batches are handed out one at a time, so
    /// extra workers overlap independent batch forwards.
    pub workers: usize,
    /// Ingress admission control: queue bound, overload policy,
    /// per-client fairness, default latency budget.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 64,
            workers: 2,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Per-query submission options: who is asking and how long the answer
/// is worth waiting for.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Client identity for fairness and per-client accounting
    /// ([`StatsSnapshot::clients`]). Defaults to 0.
    pub client: u64,
    /// Latency budget for this query; overrides
    /// [`AdmissionConfig::default_deadline`]. Only *enforced* (blown
    /// queries shed pre-forward) under
    /// [`crate::admission::OverloadPolicy::DeadlineShed`], but always
    /// counted toward [`StatsSnapshot::deadline_misses`].
    pub deadline: Option<Duration>,
}

/// The logits-bearing payload of an answered query.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Logit rows for the requested seeds, in request order
    /// (`seeds.len() × out_dim`).
    pub logits: Matrix,
    /// How many queries shared this forward pass.
    pub batch_size: usize,
    /// Queue + compute latency observed by the server.
    pub latency: Duration,
    /// Whether at least one shard serving this batch ran the
    /// seed-restricted partial forward (for an unsharded engine: whether
    /// the batch's one forward was partial).
    pub partial: bool,
}

/// What happened to one submitted query: answered with logits, or turned
/// away by the admission layer. Overload is an *outcome*, not an error —
/// callers always learn which, instead of hanging on an unbounded queue.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// The query was admitted, batched and answered.
    Answered(QueryAnswer),
    /// The admission layer turned the query away at the door (it never
    /// occupied queue space).
    Rejected(RejectReason),
    /// The query was admitted but dropped before a forward pass —
    /// evicted under overload or its deadline blew in queue.
    Shed(ShedReason),
}

impl QueryResponse {
    /// The answer, if the query was served.
    pub fn answer(&self) -> Option<&QueryAnswer> {
        match self {
            QueryResponse::Answered(a) => Some(a),
            _ => None,
        }
    }

    /// Consumes the response, yielding the answer if served.
    pub fn into_answer(self) -> Option<QueryAnswer> {
        match self {
            QueryResponse::Answered(a) => Some(a),
            _ => None,
        }
    }

    /// True when the query was answered with logits.
    pub fn is_answered(&self) -> bool {
        matches!(self, QueryResponse::Answered(_))
    }
}

struct Request {
    seeds: Vec<u32>,
    reply: mpsc::Sender<Result<QueryResponse, ServeError>>,
}

/// Sends the shed notification for entries the admission layer dropped.
fn notify_shed(entries: impl IntoIterator<Item = (Entry<Request>, ShedReason)>) {
    for (entry, reason) in entries {
        // A client that gave up is not an error.
        let _ = entry.payload.reply.send(Ok(QueryResponse::Shed(reason)));
    }
}

/// Aggregate serving counters, shared between workers and observers.
#[derive(Debug)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    partial_batches: AtomicU64,
    /// Queries answered *after* their deadline had already passed (the
    /// shed-side misses are counted by the admission queue).
    late_answers: AtomicU64,
    /// Batches each shard participated in (length = engine shard count).
    shard_batches: Vec<AtomicU64>,
    /// Of those, how many the shard served via the partial path.
    shard_partial_batches: Vec<AtomicU64>,
}

impl Counters {
    fn new(num_shards: usize) -> Self {
        Counters {
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            partial_batches: AtomicU64::new(0),
            late_answers: AtomicU64::new(0),
            shard_batches: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            shard_partial_batches: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Point-in-time statistics read-out of a running [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Queries answered so far.
    pub queries: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Batches where at least one participating shard ran the
    /// seed-restricted partial forward (for an unsharded engine this is
    /// exactly the partial-batch count).
    pub partial_batches: u64,
    /// Queries offered to admission (excluding invalid ones rejected
    /// client-side before submission).
    pub submitted: u64,
    /// Queries that entered (and stayed in) the admitted pipeline:
    /// `submitted - rejected - shed` — answered, still queued, or
    /// mid-flight (popped into the batcher's open batch, the bounded
    /// batch channel, or a worker's in-progress forward; up to
    /// `max_batch x (workers + 2)` queries sit there on a loaded
    /// server). The identity `admitted == queries + queue_depth` only
    /// holds once that pipeline has drained.
    pub admitted: u64,
    /// Queries turned away at the door (queue full / rate limited).
    pub rejected: u64,
    /// Admitted queries dropped before a forward (evicted or
    /// deadline-blown).
    pub shed: u64,
    /// Queries that missed their latency budget: shed with a blown
    /// deadline, plus answered after the deadline had passed.
    pub deadline_misses: u64,
    /// Current ingress queue depth.
    pub queue_depth: u64,
    /// Peak ingress queue depth since the server started.
    pub queue_depth_peak: u64,
    /// Per-client accounting (admission + serving), sorted by client id.
    pub clients: Vec<ClientStats>,
    /// Per shard: batches the shard participated in (one entry per shard;
    /// a single unsharded engine reports one entry equal to `batches`).
    pub shard_batches: Vec<u64>,
    /// Per shard: batches the shard served via the partial path.
    pub shard_partial_batches: Vec<u64>,
    /// Mean queries per batch (1.0 means batching bought nothing).
    pub mean_batch: f64,
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Served queries per second since start.
    pub throughput_qps: f64,
    /// Server-side latency distribution (enqueue → reply).
    pub latency: LatencySummary,
}

/// A running micro-batched inference server.
///
/// Dropping (or [`Server::shutdown`]) closes the ingress, flushes
/// in-flight batches and joins every thread.
///
/// # Examples
///
/// ```
/// use maxk_serve::{InferenceEngine, ServeConfig, Server};
/// use maxk_nn::snapshot::ModelSnapshot;
/// use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
/// use maxk_graph::generate;
/// use maxk_tensor::Matrix;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let graph = generate::chung_lu_power_law(40, 5.0, 2.3, 1).to_csr().unwrap();
/// let mut cfg = ModelConfig::new(Arch::Gcn, Activation::Relu, 6, 2);
/// cfg.hidden_dim = 8;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = GnnModel::new(cfg, &graph, &mut rng);
/// let engine = Arc::new(
///     InferenceEngine::from_snapshot(
///         &ModelSnapshot::capture(&model),
///         &graph,
///         Matrix::xavier(40, 6, &mut rng),
///     )
///     .unwrap(),
/// );
///
/// let server = Server::start(engine, ServeConfig::default());
/// let answer = server.handle().query(&[0, 5]).unwrap().into_answer().unwrap();
/// assert_eq!(answer.logits.shape(), (2, 2));
/// let stats = server.shutdown();
/// assert_eq!(stats.queries, 1);
/// ```
pub struct Server {
    queue: Arc<AdmissionQueue<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    hist: Arc<Mutex<LatencyHistogram>>,
    started: Instant,
    num_nodes: usize,
}

impl Server {
    /// Starts the batcher and worker threads over `engine` — the single
    /// [`crate::InferenceEngine`] or the sharded [`crate::ShardedEngine`]
    /// router, anything implementing [`BatchEngine`].
    pub fn start<E: BatchEngine + 'static>(engine: Arc<E>, cfg: ServeConfig) -> Server {
        let num_nodes = engine.num_nodes();
        let counters = Arc::new(Counters::new(engine.num_shards()));
        let hist = Arc::new(Mutex::new(LatencyHistogram::new()));
        let queue = Arc::new(AdmissionQueue::<Request>::new(cfg.admission));
        // The batch channel is bounded (one ready batch beyond what the
        // workers hold): otherwise the batcher would eagerly drain the
        // bounded admission queue into an unbounded backlog here, and
        // overload would hide downstream where no policy can act on it.
        // With the bound, busy workers stall the batcher, the admission
        // queue fills, and rejection/shedding happen where they belong.
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Vec<Entry<Request>>>(1);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let max_batch = cfg.max_batch.max(1);
        let window = cfg.batch_window;
        let ingress = Arc::clone(&queue);
        let batcher = std::thread::spawn(move || {
            loop {
                // Block for the batch's first query; deadline-blown
                // entries encountered on the way are shed (they never
                // cost a forward).
                let popped = ingress.pop(None);
                notify_shed(
                    popped
                        .shed
                        .into_iter()
                        .map(|e| (e, ShedReason::DeadlineBlown)),
                );
                let Some(first) = popped.item else {
                    if popped.closed {
                        break;
                    }
                    continue;
                };
                let mut batch = vec![first];
                let mut stop = false;
                let deadline = Instant::now() + window;
                while batch.len() < max_batch {
                    let popped = ingress.pop(Some(deadline));
                    notify_shed(
                        popped
                            .shed
                            .into_iter()
                            .map(|e| (e, ShedReason::DeadlineBlown)),
                    );
                    match popped.item {
                        Some(entry) => batch.push(entry),
                        None if popped.closed => {
                            stop = true;
                            break;
                        }
                        // `pop` also returns item-less early when it only
                        // found deadline-blown entries to shed — that is
                        // not window expiry, so keep collecting (exactly
                        // under shedding overload is when batches must
                        // not collapse to singletons).
                        None if Instant::now() >= deadline => break,
                        None => {}
                    }
                }
                // Flush the in-flight batch even when shutting down.
                if batch_tx.send(batch).is_err() || stop {
                    break;
                }
            }
        });

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            let batch_rx = Arc::clone(&batch_rx);
            let counters = Arc::clone(&counters);
            let hist = Arc::clone(&hist);
            let queue = Arc::clone(&queue);
            workers.push(std::thread::spawn(move || {
                loop {
                    // The guard is held across the blocking recv: waiting
                    // workers queue on the mutex, so batches are handed
                    // out one at a time while compute overlaps.
                    let batch = match batch_rx.lock().expect("batch queue poisoned").recv() {
                        Ok(b) => b,
                        Err(_) => break,
                    };
                    let size = batch.len();
                    // One shared forward pass for the whole batch over
                    // its seed union: the engine plans full vs.
                    // seed-restricted per shard (a single engine is one
                    // shard) and returns union-covering logits.
                    let mut union: Vec<u32> = batch
                        .iter()
                        .flat_map(|e| e.payload.seeds.iter().copied())
                        .collect();
                    union.sort_unstable();
                    union.dedup();
                    let outcome = engine.forward_union(&union);
                    let partial = outcome.any_partial();
                    let logits = outcome.logits;
                    counters.batches.fetch_add(1, Ordering::Relaxed);
                    if partial {
                        counters.partial_batches.fetch_add(1, Ordering::Relaxed);
                    }
                    for &(s, shard_partial) in &outcome.shards {
                        counters.shard_batches[s].fetch_add(1, Ordering::Relaxed);
                        if shard_partial {
                            counters.shard_partial_batches[s].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    counters.queries.fetch_add(size as u64, Ordering::Relaxed);
                    // Gather every reply first (the expensive row copies
                    // happen without holding any shared lock), then
                    // record the books *before* sending: once a client
                    // holds its answer, the counters already include it.
                    let now = Instant::now();
                    let mut replies = Vec::with_capacity(size);
                    for entry in batch {
                        let latency = now.saturating_duration_since(entry.enqueued);
                        if entry.deadline.is_some_and(|d| now >= d) {
                            counters.late_answers.fetch_add(1, Ordering::Relaxed);
                        }
                        let answer = QueryAnswer {
                            logits: logits.gather(&entry.payload.seeds),
                            batch_size: size,
                            latency,
                            partial,
                        };
                        replies.push((entry.client, entry.payload.reply, answer));
                    }
                    let outcomes: Vec<(u64, u64)> = replies
                        .iter()
                        .map(|(client, _, answer)| {
                            (
                                *client,
                                answer.latency.as_micros().min(u128::from(u64::MAX)) as u64,
                            )
                        })
                        .collect();
                    {
                        let mut hist = hist.lock().expect("histogram poisoned");
                        for &(_, us) in &outcomes {
                            hist.record(us);
                        }
                    }
                    // Per-client answered counts + histograms live in the
                    // admission queue's one client map (one eviction
                    // policy, so the books cannot diverge); one lock per
                    // batch.
                    queue.record_answered(outcomes);
                    for (_, reply, answer) in replies {
                        // A client that gave up is not an error.
                        let _ = reply.send(Ok(QueryResponse::Answered(answer)));
                    }
                }
            }));
        }

        Server {
            queue,
            batcher: Some(batcher),
            workers,
            counters,
            hist,
            started: Instant::now(),
            num_nodes,
        }
    }

    /// A cloneable client handle for submitting queries.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            queue: Arc::clone(&self.queue),
            num_nodes: self.num_nodes,
        }
    }

    /// Current counters and latency distribution.
    pub fn stats(&self) -> StatsSnapshot {
        let queries = self.counters.queries.load(Ordering::Relaxed);
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let partial_batches = self.counters.partial_batches.load(Ordering::Relaxed);
        let late_answers = self.counters.late_answers.load(Ordering::Relaxed);
        let uptime_s = self.started.elapsed().as_secs_f64();
        let admission = self.queue.snapshot();
        let clients = admission.clients.clone();
        StatsSnapshot {
            queries,
            batches,
            partial_batches,
            submitted: admission.submitted,
            admitted: admission.submitted - admission.rejected - admission.shed,
            rejected: admission.rejected,
            shed: admission.shed,
            deadline_misses: admission.deadline_shed + late_answers,
            queue_depth: admission.queue_depth,
            queue_depth_peak: admission.queue_depth_peak,
            clients,
            shard_batches: self
                .counters
                .shard_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shard_partial_batches: self
                .counters
                .shard_partial_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            // Every served query belongs to exactly one batch, so the
            // mean occupancy is just the ratio of the two counters.
            mean_batch: if batches == 0 {
                0.0
            } else {
                queries as f64 / batches as f64
            },
            uptime_s,
            throughput_qps: if uptime_s > 0.0 {
                queries as f64 / uptime_s
            } else {
                0.0
            },
            latency: LatencySummary::of(&self.hist.lock().expect("histogram poisoned")),
        }
    }

    /// Stops accepting queries, drains in-flight batches, joins every
    /// thread and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.join_threads();
        self.stats()
    }

    fn join_threads(&mut self) {
        // Closing the admission queue stops new submissions and wakes
        // blocked submitters; the batcher drains what was already
        // admitted, then exits, dropping its batch sender, which
        // unblocks the workers.
        self.queue.close();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// A query submitted but not yet resolved: the receipt half of
/// [`ServerHandle::submit`]. Lets open-loop clients fire queries on a
/// schedule without blocking on each reply.
#[derive(Debug)]
pub struct PendingQuery {
    inner: Pending,
}

#[derive(Debug)]
enum Pending {
    /// Resolved synchronously at admission (a rejection).
    Immediate(QueryResponse),
    /// Waiting on the serving pipeline.
    Waiting(mpsc::Receiver<Result<QueryResponse, ServeError>>),
}

impl PendingQuery {
    /// Blocks until the query resolves.
    ///
    /// # Errors
    ///
    /// [`ServeError::ChannelClosed`] when the server shut down before
    /// resolving the query.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        match self.inner {
            Pending::Immediate(r) => Ok(r),
            Pending::Waiting(rx) => rx.recv().map_err(|_| ServeError::ChannelClosed)?,
        }
    }
}

/// Cheap cloneable client endpoint of a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    queue: Arc<AdmissionQueue<Request>>,
    num_nodes: usize,
}

impl ServerHandle {
    /// Submits a seed-set query without waiting for the outcome.
    ///
    /// Admission happens synchronously: a rejected query resolves
    /// immediately (its [`PendingQuery::wait`] returns
    /// [`QueryResponse::Rejected`] without a channel round-trip), an
    /// admitted one resolves when its batch completes or the admission
    /// layer sheds it. Under
    /// [`crate::admission::OverloadPolicy::Block`] this call blocks
    /// while the ingress queue is full — that is the policy's
    /// backpressure.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyQuery`] / [`ServeError::SeedOutOfRange`] on bad
    /// input (validated before admission, so invalid queries never count
    /// against a client's budget); [`ServeError::ChannelClosed`] when the
    /// server has shut down.
    pub fn submit(&self, seeds: &[u32], opts: QueryOptions) -> Result<PendingQuery, ServeError> {
        check_seeds(seeds, self.num_nodes)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            seeds: seeds.to_vec(),
            reply: reply_tx,
        };
        match self.queue.submit(opts.client, opts.deadline, request)? {
            Submission::Admitted { shed } => {
                notify_shed(shed);
                Ok(PendingQuery {
                    inner: Pending::Waiting(reply_rx),
                })
            }
            Submission::Rejected(reason) => Ok(PendingQuery {
                inner: Pending::Immediate(QueryResponse::Rejected(reason)),
            }),
        }
    }

    /// Submits a query with options and blocks until it resolves.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServerHandle::submit`].
    pub fn query_with(
        &self,
        seeds: &[u32],
        opts: QueryOptions,
    ) -> Result<QueryResponse, ServeError> {
        self.submit(seeds, opts)?.wait()
    }

    /// Submits a seed-set query with default options (client 0, no
    /// per-query deadline) and blocks until it resolves.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServerHandle::submit`].
    pub fn query(&self, seeds: &[u32]) -> Result<QueryResponse, ServeError> {
        self.query_with(seeds, QueryOptions::default())
    }

    /// Nodes served (valid seeds are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::OverloadPolicy;
    use crate::InferenceEngine;
    use maxk_graph::generate;
    use maxk_nn::snapshot::ModelSnapshot;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> Arc<InferenceEngine> {
        let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 3)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(60, 6, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        Arc::new(InferenceEngine::from_snapshot(&snap, &graph, x).unwrap())
    }

    fn answer(resp: Result<QueryResponse, ServeError>) -> QueryAnswer {
        resp.expect("server running")
            .into_answer()
            .expect("query answered")
    }

    #[test]
    fn serves_correct_logits() {
        let engine = engine();
        let expected = engine.forward_all();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        let handle = server.handle();
        let resp = answer(handle.query(&[3, 59]));
        assert_eq!(resp.logits.shape(), (2, 3));
        assert_eq!(resp.logits.row(0), expected.row(3));
        assert_eq!(resp.logits.row(1), expected.row(59));
        assert!(resp.batch_size >= 1);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected + stats.shed, 0);
    }

    #[test]
    fn concurrent_queries_coalesce() {
        let engine = engine();
        let server = Server::start(
            engine,
            ServeConfig {
                batch_window: Duration::from_millis(20),
                max_batch: 64,
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let handle = server.handle();
        let clients = 8;
        std::thread::scope(|s| {
            for c in 0..clients {
                let h = handle.clone();
                s.spawn(move || {
                    let resp = answer(h.query_with(
                        &[c as u32],
                        QueryOptions {
                            client: c as u64,
                            deadline: None,
                        },
                    ));
                    assert_eq!(resp.logits.shape(), (1, 3));
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.queries, clients as u64);
        // With a 20ms window and instant concurrent arrivals, at least one
        // batch must carry more than one query.
        assert!(
            stats.batches < clients as u64,
            "expected coalescing, got {} batches",
            stats.batches
        );
        assert!(stats.mean_batch > 1.0);
        assert!(stats.latency.p99_us.is_finite());
        // Per-client books: every client answered exactly once.
        assert_eq!(stats.clients.len(), clients);
        for c in &stats.clients {
            assert_eq!(c.submitted, 1);
            assert_eq!(c.answered, 1);
            assert_eq!(c.rejected + c.shed, 0);
            assert_eq!(c.latency.count, 1);
        }
    }

    #[test]
    fn unbatched_config_serves_one_query_per_forward() {
        let engine = engine();
        let server = Server::start(
            engine,
            ServeConfig {
                batch_window: Duration::ZERO,
                max_batch: 1,
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let handle = server.handle();
        for i in 0..5u32 {
            let resp = answer(handle.query(&[i]));
            assert_eq!(resp.batch_size, 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.batches, 5);
        assert!((stats.mean_batch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_batches_counted_and_flagged() {
        use maxk_nn::PlanConfig;
        let force = |seed_frac_cutoff: f64, work_ratio: f64| {
            let e = Arc::try_unwrap(engine())
                .expect("sole owner")
                .with_plan_config(PlanConfig {
                    seed_frac_cutoff,
                    work_ratio,
                });
            Arc::new(e)
        };
        // Always-partial heuristic: the response and counters must say so.
        let server = Server::start(force(1.0, f64::INFINITY), ServeConfig::default());
        let expected = {
            let h = server.handle();
            let resp = answer(h.query(&[7]));
            assert!(resp.partial);
            resp.logits
        };
        let stats = server.shutdown();
        assert_eq!(stats.partial_batches, 1);
        // Always-full heuristic: same logits bitwise, no partial batches.
        let server = Server::start(force(0.0, 0.0), ServeConfig::default());
        let resp = answer(server.handle().query(&[7]));
        assert!(!resp.partial);
        assert_eq!(resp.logits, expected);
        let stats = server.shutdown();
        assert_eq!(stats.partial_batches, 0);
    }

    #[test]
    fn sharded_engine_serves_through_the_same_api() {
        use crate::{ShardConfig, ShardedEngine};
        let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 3)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(60, 6, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        let single = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
        let expected = single.forward_all();
        let sharded = ShardedEngine::from_snapshot(
            &snap,
            &graph,
            &x,
            ShardConfig {
                num_shards: 2,
                strategy: maxk_graph::shard::ShardStrategy::Contiguous,
            },
        )
        .unwrap();
        let server = Server::start(Arc::new(sharded), ServeConfig::default());
        let handle = server.handle();
        // A query spanning both shards (contiguous: low ids shard 0,
        // high ids shard 1) must return the unsharded rows.
        let resp = answer(handle.query(&[0, 59, 30]));
        assert_eq!(resp.logits.row(0), expected.row(0));
        assert_eq!(resp.logits.row(1), expected.row(59));
        assert_eq!(resp.logits.row(2), expected.row(30));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.shard_batches.len(), 2);
        assert_eq!(stats.shard_partial_batches.len(), 2);
        // Both shards saw the one batch.
        assert_eq!(stats.shard_batches, vec![1, 1]);
    }

    #[test]
    fn single_engine_reports_one_shard_counter() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let _ = answer(server.handle().query(&[1]));
        let stats = server.shutdown();
        assert_eq!(stats.shard_batches, vec![stats.batches]);
        assert_eq!(stats.shard_partial_batches, vec![stats.partial_batches]);
    }

    #[test]
    fn bad_queries_rejected_without_reaching_admission() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let handle = server.handle();
        assert!(matches!(handle.query(&[]), Err(ServeError::EmptyQuery)));
        assert!(matches!(
            handle.query(&[1000]),
            Err(ServeError::SeedOutOfRange { .. })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.batches, 0);
        // Invalid queries never reach admission accounting.
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn query_after_shutdown_fails_cleanly() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let handle = server.handle();
        let _ = server.shutdown();
        assert!(matches!(handle.query(&[0]), Err(ServeError::ChannelClosed)));
    }

    #[test]
    fn deadline_zero_sheds_instead_of_answering() {
        let engine = engine();
        let server = Server::start(
            engine,
            ServeConfig {
                admission: AdmissionConfig {
                    policy: OverloadPolicy::DeadlineShed,
                    ..AdmissionConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let resp = server
            .handle()
            .query_with(
                &[1],
                QueryOptions {
                    client: 9,
                    deadline: Some(Duration::ZERO),
                },
            )
            .unwrap();
        assert!(
            matches!(resp, QueryResponse::Shed(ShedReason::DeadlineBlown)),
            "expected a deadline shed, got {resp:?}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0, "a blown query must not cost a forward");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn stats_books_balance_mid_flight() {
        let engine = engine();
        let server = Server::start(engine, ServeConfig::default());
        let handle = server.handle();
        for i in 0..7u32 {
            let _ = answer(handle.query(&[i]));
        }
        let stats = server.stats();
        assert_eq!(
            stats.submitted,
            stats.queries + stats.rejected + stats.shed + stats.queue_depth
        );
        let _ = server.shutdown();
    }
}
