//! The micro-batching request queue behind the admission layer.
//!
//! Architecture (every thread and channel below is spawned and built
//! through [`crate::exec`] — the one seam a different executor backend
//! would slot into):
//!
//! ```text
//! clients ──ServerHandle::request/query──▶ admission layer
//!              (bounded queue + overload policy + per-client
//!               token buckets; Rejected/Shed outcomes surface
//!               here instead of queueing without bound)
//!                                      │
//!                                  batcher thread
//!                 (cache probe per popped query — a fully-hot
//!                  query is answered inline and never joins a
//!                  batch; the rest coalesce within `batch_window`,
//!                  up to `max_batch` per batch; deadline-blown
//!                  entries are shed before costing a forward)
//!                                      │
//!                                 batch channel
//!                                      │
//!                        worker pool (`workers` threads)
//!               (claim the batch's still-missing seeds: lead
//!                seeds shrink the union handed to the plan,
//!                follower seeds park on another batch's in-flight
//!                computation; one shared forward for the lead
//!                union, fill the cache, gather rows, reply per
//!                query, record latency)
//! ```
//!
//! Each batch costs **one** engine forward regardless of how many queries
//! it carries, so coalescing multiplies throughput by the mean batch
//! occupancy — the serving-side analogue of the paper's full-batch
//! aggregation amortization. Setting `max_batch = 1` (window 0) degrades
//! to the one-query-per-forward baseline that `serve_bench` compares
//! against.
//!
//! On top of coalescing, an opt-in seed-level logit cache
//! ([`ServeConfig::cache`] / [`ServerBuilder::cache`]) reuses rows
//! *across* batches: under Zipf traffic a hot seed is computed once per
//! `(SnapshotGeneration, GraphVersion)` identity and every repeat is a
//! cache hit — a fully-hot query never reaches the engine at all, and
//! partial hits shrink the seed union handed to the forward planner.
//! Identical seeds wanted by overlapping batches share one in-flight
//! computation ([`crate::LogitCache`] coalescing). [`StatsSnapshot::cache`]
//! reports hits/misses/coalesced/evictions; the counters exactly account
//! for every answered seed instance.
//!
//! The admission layer ([`crate::admission`]) bounds what reaches the
//! batcher: when offered load exceeds forward throughput, queries are
//! rejected or shed (per [`AdmissionConfig::policy`]) instead of growing
//! an unbounded queue, so p99 latency stays a property of the system
//! rather than of how long the overload has lasted. Callers see the
//! outcome as [`QueryResponse::Rejected`] / [`QueryResponse::Shed`]
//! rather than a hang, and [`StatsSnapshot`] reconciles every submitted
//! query into answered/rejected/shed exactly (plus, while loaded, the
//! queued and mid-flight queries still working their way through the
//! batcher and workers).
//!
//! Per batch, the worker hands the batch's **seed union** (minus cached
//! and in-flight seeds) to the engine ([`BatchEngine::forward_union`]).
//! The single [`crate::InferenceEngine`] plans full vs. seed-restricted
//! over the union (partial when the union's reverse L-hop frontier is
//! small); the sharded [`crate::ShardedEngine`] scatters the union to
//! owner shards, each planning independently.
//! [`StatsSnapshot::partial_batches`] and the per-shard
//! [`StatsSnapshot::shard_batches`] /
//! [`StatsSnapshot::shard_partial_batches`] counters report how often
//! each path won and how batches spread over shards.

use crate::admission::{
    AdaptiveConfig, AdaptiveController, AdaptiveSnapshot, AdmissionConfig, AdmissionQueue,
    ClassStats, ClassWeights, Entry, FairnessConfig, OverloadPolicy, RejectReason, ShedReason,
    Submission,
};
use crate::cache::{CacheConfig, CacheSnapshot, LogitCache};
use crate::engine::{check_seeds, BatchEngine};
use crate::exec::{self, Executor, ShutdownBarrier, StdThreadExecutor};
use crate::metrics::{ClientStats, EvictedClientStats, LatencyHistogram, LatencySummary};
use crate::telemetry::export::{self, HistSample, MetricsExporter, Sample, ScrapeSource};
use crate::telemetry::health::{json_array, HealthCheck, HealthReport, JsonObj};
use crate::telemetry::{
    serve_scrape, AnswerObs, EventKind, FlightRecorder, IncidentReport, SloConfig, SloHub,
    SloState, SloStatus, Stage, StageBreakdown, Telemetry, TelemetryConfig,
};
use crate::ServeError;
use maxk_nn::{GraphVersion, SnapshotGeneration};
use maxk_tensor::Matrix;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Micro-batching configuration.
///
/// Prefer assembling one via [`Server::builder`], which covers every
/// knob (including admission and cache sub-configs) without literal
/// struct soup.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// How long the batcher keeps a batch open after its first query,
    /// waiting for more to coalesce. Zero disables coalescing waits.
    pub batch_window: Duration,
    /// Hard cap on queries per batch (1 = unbatched baseline).
    pub max_batch: usize,
    /// Forward-executor threads. Batches are handed out one at a time, so
    /// extra workers overlap independent batch forwards.
    pub workers: usize,
    /// Ingress admission control: queue bound, overload policy,
    /// per-client fairness, default latency budget.
    pub admission: AdmissionConfig,
    /// Self-tuning admission: when set, an [`AdaptiveController`]
    /// derives the queue capacity and default deadline budget live from
    /// an EWMA of observed batch service time, replacing the static
    /// [`AdmissionConfig::capacity`] / `default_deadline` once it has
    /// observations (and re-planning on snapshot/epoch swap). `None`
    /// (the default) keeps admission fully static.
    pub adaptive: Option<AdaptiveConfig>,
    /// Seed-level logit cache; `None` (the default) disables caching and
    /// serves every batch through the engine.
    pub cache: Option<CacheConfig>,
    /// Observability: stage histograms, kernel counters, trace sampling.
    /// Enabled by default with tracing off (the always-on metrics cost a
    /// few atomics per batch); [`TelemetryConfig::off`] removes even
    /// that.
    pub telemetry: TelemetryConfig,
    /// Incident-aware observability: declarative serving objectives
    /// evaluated by a monitor thread with multi-window burn-rate
    /// alerting, wired to the flight recorder (a breach triggers an
    /// incident bundle) and, when [`SloConfig::feedback`] is on, back
    /// into the adaptive admission controller. `None` (the default)
    /// spawns no monitor thread; setting it forces telemetry on (the
    /// SLO gauges and incident evidence live in its registry and clock).
    pub slo: Option<SloConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 64,
            workers: 2,
            admission: AdmissionConfig::default(),
            adaptive: None,
            cache: None,
            telemetry: TelemetryConfig::default(),
            slo: None,
        }
    }
}

/// Per-query submission options: who is asking and how long the answer
/// is worth waiting for.
///
/// Non-exhaustive so future fields (priority class, cache bypass) stay
/// non-breaking: construct via [`QueryOptions::new`] /
/// [`QueryOptions::default`] and the builder methods.
///
/// # Examples
///
/// ```
/// use maxk_serve::QueryOptions;
/// use std::time::Duration;
///
/// let opts = QueryOptions::new()
///     .for_client(7)
///     .with_deadline(Duration::from_millis(50));
/// assert_eq!(opts.client, 7);
/// assert_eq!(opts.deadline, Some(Duration::from_millis(50)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct QueryOptions {
    /// Client identity for fairness and per-client accounting
    /// ([`StatsSnapshot::clients`]). Defaults to 0.
    pub client: u64,
    /// Latency budget for this query; overrides
    /// [`AdmissionConfig::default_deadline`]. Only *enforced* (blown
    /// queries shed pre-forward) under
    /// [`crate::admission::OverloadPolicy::DeadlineShed`], but always
    /// counted toward [`StatsSnapshot::deadline_misses`].
    pub deadline: Option<Duration>,
    /// Traffic class for weighted shaping, an index into the server's
    /// [`ClassWeights`] (see [`ServerBuilder::classes`]). Defaults to 0
    /// — the first configured class, or plain untagged traffic when no
    /// classes are configured.
    pub class: u32,
}

impl QueryOptions {
    /// Default options: client 0, class 0, no per-query deadline.
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the client identity.
    #[must_use]
    pub fn for_client(mut self, client: u64) -> Self {
        self.client = client;
        self
    }

    /// Sets the per-query latency budget.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the traffic class (an index into the server's configured
    /// [`ClassWeights`]).
    #[must_use]
    pub fn in_class(mut self, class: u32) -> Self {
        self.class = class;
        self
    }
}

/// The logits-bearing payload of an answered query.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Logit rows for the requested seeds, in request order
    /// (`seeds.len() × out_dim`).
    pub logits: Matrix,
    /// How many queries shared this forward pass (1 for a cache-answered
    /// query that never joined a batch).
    pub batch_size: usize,
    /// Queue + compute latency observed by the server.
    pub latency: Duration,
    /// Whether at least one shard serving this batch ran the
    /// seed-restricted partial forward (for an unsharded engine: whether
    /// the batch's one forward was partial; always `false` for a
    /// cache-answered query, which ran no forward).
    pub partial: bool,
    /// The weight set that computed these logits — the identity callers
    /// key caches and staleness decisions on across hot reloads.
    pub generation: SnapshotGeneration,
    /// The graph operand these logits were computed over.
    pub graph_version: GraphVersion,
    /// The mutation epoch these logits were computed against — always 0
    /// for frozen-graph engines; for a [`crate::DynamicEngine`] it is
    /// the staleness bound: an answer at epoch `e` reflects every
    /// mutation batch up to `e` and none after.
    pub epoch: u64,
    /// True when every requested row came from the logit cache (resident
    /// or another batch's in-flight computation) — this query triggered
    /// no forward work of its own.
    pub cached: bool,
}

/// What happened to one submitted query: answered with logits, or turned
/// away by the admission layer. Overload is an *outcome*, not an error —
/// callers always learn which, instead of hanging on an unbounded queue.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// The query was admitted, batched and answered.
    Answered(QueryAnswer),
    /// The admission layer turned the query away at the door (it never
    /// occupied queue space).
    Rejected(RejectReason),
    /// The query was admitted but dropped before a forward pass —
    /// evicted under overload or its deadline blew in queue.
    Shed(ShedReason),
}

impl QueryResponse {
    /// The answer, if the query was served.
    pub fn answer(&self) -> Option<&QueryAnswer> {
        match self {
            QueryResponse::Answered(a) => Some(a),
            _ => None,
        }
    }

    /// Consumes the response, yielding the answer if served.
    pub fn into_answer(self) -> Option<QueryAnswer> {
        match self {
            QueryResponse::Answered(a) => Some(a),
            _ => None,
        }
    }

    /// True when the query was answered with logits.
    pub fn is_answered(&self) -> bool {
        matches!(self, QueryResponse::Answered(_))
    }
}

struct Request {
    seeds: Vec<u32>,
    reply: exec::Sender<Result<QueryResponse, ServeError>>,
    /// Sampled-query trace, carried through the pipeline and folded into
    /// spans at reply time (`None` for unsampled queries — the common
    /// case, which never touches the trace ring).
    trace: Option<Box<crate::telemetry::TraceContext>>,
}

/// One batched query plus its per-seed cache probe results (aligned with
/// `entry.payload.seeds`; empty when caching is disabled). Probing
/// happens in the batcher so hit rows are pinned before batch assembly
/// and a fully-hot query never occupies a batch slot.
struct BatchItem {
    entry: Entry<Request>,
    /// When the batcher popped this query — the instant splitting
    /// queue-wait from batch-wait in the stage histograms.
    dequeued: Instant,
    hits: Vec<Option<Arc<[f32]>>>,
}

/// Sends the shed notification for entries the admission layer dropped.
fn notify_shed(entries: impl IntoIterator<Item = (Entry<Request>, ShedReason)>) {
    for (entry, reason) in entries {
        // A client that gave up is not an error.
        let _ = entry.payload.reply.send(Ok(QueryResponse::Shed(reason)));
    }
}

fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Aggregate serving counters, shared between workers and observers.
#[derive(Debug)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    partial_batches: AtomicU64,
    /// Queries answered entirely from the cache (no forward of their
    /// own): the batcher's inline answers plus worker-side queries whose
    /// every row came from residency or another batch's computation.
    cached_queries: AtomicU64,
    /// Of `cached_queries`, those answered inline by the batcher (they
    /// never joined a batch — excluded from mean batch occupancy).
    inline_queries: AtomicU64,
    /// Queries answered *after* their deadline had already passed (the
    /// shed-side misses are counted by the admission queue).
    late_answers: AtomicU64,
    /// Batches each shard participated in (length = engine shard count).
    shard_batches: Vec<AtomicU64>,
    /// Of those, how many the shard served via the partial path.
    shard_partial_batches: Vec<AtomicU64>,
}

impl Counters {
    fn new(num_shards: usize) -> Self {
        Counters {
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            partial_batches: AtomicU64::new(0),
            cached_queries: AtomicU64::new(0),
            inline_queries: AtomicU64::new(0),
            late_answers: AtomicU64::new(0),
            shard_batches: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            shard_partial_batches: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn count_forward(&self, outcome: &crate::engine::BatchOutcome) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if outcome.any_partial() {
            self.partial_batches.fetch_add(1, Ordering::Relaxed);
        }
        for &(s, shard_partial) in &outcome.shards {
            self.shard_batches[s].fetch_add(1, Ordering::Relaxed);
            if shard_partial {
                self.shard_partial_batches[s].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time statistics read-out of a running [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Queries answered so far.
    pub queries: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Batches where at least one participating shard ran the
    /// seed-restricted partial forward (for an unsharded engine this is
    /// exactly the partial-batch count).
    pub partial_batches: u64,
    /// Of `queries`, those answered entirely from the logit cache —
    /// no forward work of their own (see [`QueryAnswer::cached`]).
    pub cached_queries: u64,
    /// Queries offered to admission (excluding invalid ones rejected
    /// client-side before submission).
    pub submitted: u64,
    /// Queries that entered (and stayed in) the admitted pipeline:
    /// `submitted - rejected - shed` — answered, still queued, or
    /// mid-flight (popped into the batcher's open batch, the bounded
    /// batch channel, or a worker's in-progress forward; up to
    /// `max_batch x (workers + 2)` queries sit there on a loaded
    /// server). The identity `admitted == queries + queue_depth` only
    /// holds once that pipeline has drained.
    pub admitted: u64,
    /// Queries turned away at the door (queue full / rate limited).
    pub rejected: u64,
    /// Admitted queries dropped before a forward (evicted or
    /// deadline-blown).
    pub shed: u64,
    /// Queries that missed their latency budget: shed with a blown
    /// deadline, plus answered after the deadline had passed.
    pub deadline_misses: u64,
    /// Current ingress queue depth.
    pub queue_depth: u64,
    /// Peak ingress queue depth since the server started.
    pub queue_depth_peak: u64,
    /// Per-client accounting (admission + serving), sorted by client id.
    pub clients: Vec<ClientStats>,
    /// Aggregate of per-client states evicted past the tracking bound
    /// (merged exactly once per accounting epoch, so
    /// `Σ clients + evicted_clients` reconciles with the global books).
    pub evicted_clients: EvictedClientStats,
    /// Per shard: batches the shard participated in (one entry per shard;
    /// a single unsharded engine reports one entry equal to `batches`).
    pub shard_batches: Vec<u64>,
    /// Per shard: batches the shard served via the partial path.
    pub shard_partial_batches: Vec<u64>,
    /// Logit-cache counters, when caching is enabled. Per answered seed
    /// instance exactly one of hits/misses/coalesced is counted, so
    /// `hits + misses + coalesced` equals the answered seed instances.
    pub cache: Option<CacheSnapshot>,
    /// Mean queries per executed batch (1.0 means batching bought
    /// nothing). Cache-answered queries that never joined a batch are
    /// excluded, so this stays a read-out of coalescing, not of caching.
    pub mean_batch: f64,
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Served queries per second since start.
    pub throughput_qps: f64,
    /// Server-side latency distribution (enqueue → reply).
    pub latency: LatencySummary,
    /// Per-stage wait/service split of the same answered queries
    /// (queue-wait vs batch-wait vs service), when telemetry is enabled.
    /// Each stage histogram's count equals `queries`, and per query the
    /// three stage durations sum to its end-to-end latency up to
    /// microsecond truncation.
    pub stages: Option<StageBreakdown>,
    /// The adaptive controller's live state (service-time EWMA, derived
    /// capacity/deadline, re-plans) when [`ServeConfig::adaptive`] is
    /// set.
    pub adaptive: Option<AdaptiveSnapshot>,
    /// Per-class admission accounting when weighted classes are
    /// configured (empty otherwise). Per class
    /// `submitted == popped + rejected + shed + queued` exactly.
    pub classes: Vec<ClassStats>,
    /// Per-objective SLO status as of the last monitor evaluation
    /// (empty when no objectives are configured).
    pub slo: Vec<SloStatus>,
    /// Flight-recorder incident bundles finalized so far.
    pub incidents: u64,
}

/// Static identity of a running server, exported once per scrape as the
/// `maxk_serve_build_info` gauge (value 1; the labels carry the
/// information) — the standard shape dashboards join against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// Serving crate version (`CARGO_PKG_VERSION`).
    pub version: &'static str,
    /// Engine shard count.
    pub shards: usize,
    /// Configured overload policy label.
    pub policy: &'static str,
    /// Forward-executor threads.
    pub workers: usize,
}

/// Stable label for an overload policy (build-info and config JSON).
fn policy_label(policy: OverloadPolicy) -> &'static str {
    match policy {
        OverloadPolicy::Block => "block",
        OverloadPolicy::RejectNewest => "reject-newest",
        OverloadPolicy::DropOldest => "drop-oldest",
        OverloadPolicy::DeadlineShed => "deadline-shed",
    }
}

/// The serving configuration as a JSON object, rendered once at spawn
/// and embedded in every incident bundle — a dump stays interpretable
/// without the process that wrote it.
fn render_config_json(cfg: &ServeConfig) -> String {
    let mut o = JsonObj::new();
    o.num("batch_window_us", cfg.batch_window.as_micros())
        .num("max_batch", cfg.max_batch)
        .num("workers", cfg.workers)
        .num("admission_capacity", cfg.admission.capacity)
        .str("overload_policy", policy_label(cfg.admission.policy))
        .bool("adaptive", cfg.adaptive.is_some())
        .num("cache_rows", cfg.cache.map_or(0, |c| c.capacity))
        .bool("telemetry", cfg.telemetry.enabled)
        .num("slos", cfg.slo.map_or(0, |s| s.specs.len()));
    o.render()
}

/// The breach context embedded in an incident bundle: every objective's
/// state and burn rates at trigger time.
fn breach_context(hub: &SloHub) -> String {
    let mut o = JsonObj::new();
    o.raw(
        "slos",
        json_array(hub.statuses().iter().map(|s| {
            let mut s_obj = JsonObj::new();
            s_obj
                .str("slo", s.name)
                .str("kind", s.kind)
                .str("state", s.state.label())
                .float("fast_burn", s.fast_burn)
                .float("slow_burn", s.slow_burn)
                .num("breaches", s.breaches);
            s_obj.render()
        })),
    );
    o.render()
}

/// Builder for a [`Server`]: one place for every serving knob — batching,
/// admission control, fairness and the logit cache — instead of nested
/// config-struct literals.
///
/// # Examples
///
/// ```
/// use maxk_serve::{InferenceEngine, OverloadPolicy, Server};
/// use maxk_nn::snapshot::ModelSnapshot;
/// use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
/// use maxk_graph::generate;
/// use maxk_tensor::Matrix;
/// use rand::SeedableRng;
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let graph = generate::chung_lu_power_law(40, 5.0, 2.3, 1).to_csr().unwrap();
/// let mut cfg = ModelConfig::new(Arch::Gcn, Activation::Relu, 6, 2);
/// cfg.hidden_dim = 8;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = GnnModel::new(cfg, &graph, &mut rng);
/// let engine = Arc::new(
///     InferenceEngine::from_snapshot(
///         &ModelSnapshot::capture(&model),
///         &graph,
///         Matrix::xavier(40, 6, &mut rng),
///     )
///     .unwrap(),
/// );
///
/// let server = Server::builder()
///     .batch_window(Duration::from_millis(5))
///     .max_batch(32)
///     .workers(2)
///     .admission_capacity(256)
///     .overload_policy(OverloadPolicy::Block)
///     .cache_capacity(1024) // enable the seed-level logit cache
///     .start(engine);
///
/// let answer = server.handle().query(&[0, 5]).unwrap().into_answer().unwrap();
/// assert_eq!(answer.logits.shape(), (2, 2));
/// // Repeats of a hot seed are served from the cache:
/// let again = server.handle().query(&[0, 5]).unwrap().into_answer().unwrap();
/// assert!(again.cached);
/// assert_eq!(again.logits, answer.logits);
/// assert_eq!(again.generation, answer.generation);
/// let stats = server.shutdown();
/// assert_eq!(stats.queries, 2);
/// assert_eq!(stats.cached_queries, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    cfg: ServeConfig,
    /// Incident-bundle output directory (non-`Copy`, so it lives here
    /// rather than in [`ServeConfig`]).
    sink: Option<PathBuf>,
}

impl ServerBuilder {
    /// Replaces the whole configuration at once (escape hatch for a
    /// prebuilt [`ServeConfig`]).
    #[must_use]
    pub fn config(mut self, cfg: ServeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// How long the batcher keeps a batch open after its first query.
    #[must_use]
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.cfg.batch_window = window;
        self
    }

    /// Hard cap on queries per batch (1 = unbatched baseline).
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    /// Forward-executor threads.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Replaces the whole admission configuration.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Bound on queued (admitted but unbatched) queries.
    #[must_use]
    pub fn admission_capacity(mut self, capacity: usize) -> Self {
        self.cfg.admission.capacity = capacity;
        self
    }

    /// What happens when a query arrives and the queue is full.
    #[must_use]
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.cfg.admission.policy = policy;
        self
    }

    /// Per-client token-bucket fairness.
    #[must_use]
    pub fn fairness(mut self, fairness: FairnessConfig) -> Self {
        self.cfg.admission.fairness = Some(fairness);
        self
    }

    /// Latency budget applied to queries without their own deadline.
    #[must_use]
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.cfg.admission.default_deadline = Some(deadline);
        self
    }

    /// Enables self-tuning admission: queue capacity and deadline
    /// budgets derive live from the observed batch service time instead
    /// of the static `admission_capacity` / `default_deadline` knobs
    /// (which still govern until the first batch is observed).
    #[must_use]
    pub fn adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.cfg.adaptive = Some(adaptive);
        self
    }

    /// Enables self-tuning admission with default controller settings
    /// (shorthand for [`ServerBuilder::adaptive`]).
    #[must_use]
    pub fn adaptive_admission(self) -> Self {
        self.adaptive(AdaptiveConfig::default())
    }

    /// Enables weighted per-class traffic shaping (e.g. paid/internal/
    /// batch), layered over per-client fairness: under overload each
    /// class's admitted share tracks its weight, and no configured
    /// class starves. Queries pick their class via
    /// [`QueryOptions::in_class`].
    #[must_use]
    pub fn classes(mut self, classes: ClassWeights) -> Self {
        self.cfg.admission.classes = Some(classes);
        self
    }

    /// Enables the seed-level logit cache with the given configuration.
    #[must_use]
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = Some(cache);
        self
    }

    /// Enables the seed-level logit cache bounded to `rows` resident
    /// rows (shorthand for [`ServerBuilder::cache`]).
    #[must_use]
    pub fn cache_capacity(self, rows: usize) -> Self {
        self.cache(CacheConfig { capacity: rows })
    }

    /// Replaces the whole telemetry configuration (use
    /// [`TelemetryConfig::off`] for the zero-overhead baseline).
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Sets the fraction of queries that carry a full stage trace
    /// (spans in the trace ring; see [`TelemetryConfig::sampling`]).
    #[must_use]
    pub fn trace_sampling(mut self, rate: f64) -> Self {
        self.cfg.telemetry.sampling = rate;
        self
    }

    /// Declares the serving objectives: a monitor thread evaluates them
    /// every [`SloConfig::tick`] with multi-window burn-rate alerting,
    /// and a breach triggers a flight-recorder incident bundle. Forces
    /// telemetry on (the SLO gauges live in its registry).
    #[must_use]
    pub fn slo(mut self, slo: SloConfig) -> Self {
        self.cfg.slo = Some(slo);
        self
    }

    /// Shorthand for the serving default objectives: latency under
    /// `budget` plus availability, both with a 5% error budget (see
    /// [`SloConfig::with_latency_budget`]).
    #[must_use]
    pub fn slo_latency(self, budget: Duration) -> Self {
        self.slo(SloConfig::with_latency_budget(budget))
    }

    /// Directory triggered incident bundles are written to (created on
    /// first write). Without one, bundles are kept in memory only
    /// ([`Server::incidents`]).
    #[must_use]
    pub fn incident_sink(mut self, dir: impl Into<PathBuf>) -> Self {
        self.sink = Some(dir.into());
        self
    }

    /// The assembled configuration (inspectable before starting).
    pub fn build_config(&self) -> ServeConfig {
        self.cfg
    }

    /// Starts the server over `engine` — the single
    /// [`crate::InferenceEngine`] or the sharded
    /// [`crate::ShardedEngine`] router, anything implementing
    /// [`BatchEngine`].
    pub fn start<E: BatchEngine + 'static>(self, engine: Arc<E>) -> Server {
        Server::spawn(engine, self.cfg, self.sink)
    }
}

/// A running micro-batched inference server.
///
/// Dropping (or [`Server::shutdown`]) closes the ingress, flushes
/// in-flight batches and joins every thread.
///
/// # Examples
///
/// ```
/// use maxk_serve::{InferenceEngine, Server};
/// use maxk_nn::snapshot::ModelSnapshot;
/// use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
/// use maxk_graph::generate;
/// use maxk_tensor::Matrix;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let graph = generate::chung_lu_power_law(40, 5.0, 2.3, 1).to_csr().unwrap();
/// let mut cfg = ModelConfig::new(Arch::Gcn, Activation::Relu, 6, 2);
/// cfg.hidden_dim = 8;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = GnnModel::new(cfg, &graph, &mut rng);
/// let engine = Arc::new(
///     InferenceEngine::from_snapshot(
///         &ModelSnapshot::capture(&model),
///         &graph,
///         Matrix::xavier(40, 6, &mut rng),
///     )
///     .unwrap(),
/// );
///
/// let server = Server::builder().start(engine);
/// let answer = server.handle().query(&[0, 5]).unwrap().into_answer().unwrap();
/// assert_eq!(answer.logits.shape(), (2, 2));
/// let stats = server.shutdown();
/// assert_eq!(stats.queries, 1);
/// ```
pub struct Server {
    queue: Arc<AdmissionQueue<Request>>,
    /// Joins the batcher stage, then the worker stage, in that order —
    /// the executor-level encoding of the shutdown protocol (see
    /// [`Server::join_threads`]'s body).
    barrier: ShutdownBarrier,
    counters: Arc<Counters>,
    hist: Arc<Mutex<LatencyHistogram>>,
    cache: Option<Arc<LogitCache>>,
    telemetry: Option<Arc<Telemetry>>,
    slo: Option<Arc<SloHub>>,
    recorder: Option<Arc<FlightRecorder>>,
    /// Stops the SLO monitor thread at shutdown (always present; unused
    /// when no monitor was spawned).
    monitor_stop: Arc<AtomicBool>,
    build: BuildInfo,
    started: Instant,
    num_nodes: usize,
}

impl Server {
    /// The entry point for configuring and starting a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            cfg: ServeConfig::default(),
            sink: None,
        }
    }

    fn spawn<E: BatchEngine + 'static>(
        engine: Arc<E>,
        cfg: ServeConfig,
        sink: Option<PathBuf>,
    ) -> Server {
        let num_nodes = engine.num_nodes();
        let out_dim = engine.out_dim();
        let counters = Arc::new(Counters::new(engine.num_shards()));
        let hist = Arc::new(Mutex::new(LatencyHistogram::new()));
        let adaptive = cfg.adaptive.map(|a| {
            Arc::new(AdaptiveController::new(
                a,
                cfg.max_batch.max(1),
                cfg.workers.max(1),
            ))
        });
        let queue = Arc::new(AdmissionQueue::<Request>::with_controller(
            cfg.admission,
            adaptive.clone(),
        ));
        let cache = cfg.cache.map(|c| Arc::new(LogitCache::new(c)));
        // A mutable engine invalidates its dirty cones straight into the
        // server's cache; frozen engines ignore the hook.
        if let Some(c) = &cache {
            engine.bind_cache(c);
        }
        // SLO monitoring needs the registry, trace ring and clock even
        // when the caller left telemetry off, so objectives force it on.
        let telemetry = (cfg.telemetry.enabled || cfg.slo.is_some())
            .then(|| Arc::new(Telemetry::new(cfg.telemetry)));
        // The flight recorder rides along whenever telemetry exists: the
        // always-on ring costs one atomic + one short slot write per
        // coarse event, and an engine-side epoch swap records into it
        // through `bind_recorder` even without configured SLOs.
        let recorder = telemetry.as_ref().map(|tel| {
            Arc::new(FlightRecorder::new(
                cfg.slo.map(|s| s.recorder).unwrap_or_default(),
                Arc::clone(tel),
                render_config_json(&cfg),
                sink,
            ))
        });
        if let Some(rec) = &recorder {
            engine.bind_recorder(rec);
        }
        let slo = match (&cfg.slo, &telemetry) {
            (Some(s), Some(tel)) => Some(Arc::new(SloHub::new(*s, Arc::clone(tel)))),
            _ => None,
        };
        let build = BuildInfo {
            version: env!("CARGO_PKG_VERSION"),
            shards: engine.num_shards(),
            policy: policy_label(cfg.admission.policy),
            workers: cfg.workers.max(1),
        };
        // The batch channel is bounded (one ready batch beyond what the
        // workers hold): otherwise the batcher would eagerly drain the
        // bounded admission queue into an unbounded backlog here, and
        // overload would hide downstream where no policy can act on it.
        // With the bound, busy workers stall the batcher, the admission
        // queue fills, and rejection/shedding happen where they belong.
        let executor = StdThreadExecutor;
        let (batch_tx, batch_rx) = executor.bounded::<Vec<BatchItem>>(1);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let max_batch = cfg.max_batch.max(1);
        let window = cfg.batch_window;
        let ingress = Arc::clone(&queue);
        let batcher_counters = Arc::clone(&counters);
        let batcher_hist = Arc::clone(&hist);
        let batcher_cache = cache.clone();
        let batcher_tel = telemetry.clone();
        let batcher_engine = Arc::clone(&engine);
        let batcher_slo = slo.clone();
        let batcher_rec = recorder.clone();
        let batcher = executor.spawn_worker("maxk-batcher", move || {
            // Probes a popped entry against the cache. A fully-hot entry
            // is answered inline — batch size 1, no forward, never
            // occupies a batch slot — and `None` is returned; otherwise
            // the entry is wrapped with its pinned hit rows. Every probe
            // hit is counted by the cache, which is sound because popped
            // entries are always answered (shedding happens inside
            // `pop`, before the probe).
            let prepare = |mut entry: Entry<Request>| -> Option<BatchItem> {
                // Sampled per entry, not once at spawn: a mutable engine
                // advances its identity (epoch, and under version-bumping
                // its GraphVersion) while the server runs, and probes
                // must key against the identity being served *now*.
                let generation = batcher_engine.generation();
                let graph_version = batcher_engine.graph_version();
                let epoch = batcher_engine.epoch();
                let dequeued = Instant::now();
                if let Some(trace) = entry.payload.trace.as_mut() {
                    trace.mark_at(Stage::Dequeue, dequeued);
                }
                let Some(cache) = &batcher_cache else {
                    if let Some(trace) = entry.payload.trace.as_mut() {
                        trace.mark(Stage::BatchAssembled);
                    }
                    return Some(BatchItem {
                        entry,
                        dequeued,
                        hits: Vec::new(),
                    });
                };
                let hits: Vec<Option<Arc<[f32]>>> = entry
                    .payload
                    .seeds
                    .iter()
                    .map(|&s| cache.probe(generation, graph_version, s))
                    .collect();
                if let Some(trace) = entry.payload.trace.as_mut() {
                    trace.mark(Stage::CacheProbe);
                }
                if hits.iter().any(|h| h.is_none()) {
                    if let Some(trace) = entry.payload.trace.as_mut() {
                        trace.mark(Stage::BatchAssembled);
                    }
                    return Some(BatchItem {
                        entry,
                        dequeued,
                        hits,
                    });
                }
                let now = Instant::now();
                let latency = now.saturating_duration_since(entry.enqueued);
                if entry.deadline.is_some_and(|d| now >= d) {
                    batcher_counters
                        .late_answers
                        .fetch_add(1, Ordering::Relaxed);
                }
                batcher_counters.queries.fetch_add(1, Ordering::Relaxed);
                batcher_counters
                    .cached_queries
                    .fetch_add(1, Ordering::Relaxed);
                batcher_counters
                    .inline_queries
                    .fetch_add(1, Ordering::Relaxed);
                let mut logits = Matrix::zeros(entry.payload.seeds.len(), out_dim);
                for (i, h) in hits.iter().enumerate() {
                    logits
                        .row_mut(i)
                        .copy_from_slice(h.as_ref().expect("fully-hot entry"));
                }
                let us = duration_us(latency);
                batcher_hist.lock().expect("histogram poisoned").record(us);
                ingress.record_answered([(entry.client, us)]);
                if let Some(rec) = &batcher_rec {
                    rec.record(EventKind::InlineAnswer, entry.payload.seeds.len() as u64, 0);
                }
                if let (Some(hub), Some(tel)) = (&batcher_slo, &batcher_tel) {
                    // An inline answer reflects the epoch sampled at the
                    // top of this probe; the engine may already be ahead.
                    let lag = batcher_engine.epoch().saturating_sub(epoch);
                    hub.observe_answers(
                        tel.now_us(),
                        &[AnswerObs {
                            latency_us: us,
                            epoch_lag: lag,
                        }],
                    );
                }
                if let Some(tel) = &batcher_tel {
                    // Inline answer: no batch, so batch-wait is zero and
                    // service is the cache-row assembly since the pop.
                    // All four durations derive from the same instants,
                    // keeping queue + batch + service == e2e (up to µs
                    // truncation).
                    tel.record_stages(
                        duration_us(dequeued.saturating_duration_since(entry.enqueued)),
                        0,
                        duration_us(now.saturating_duration_since(dequeued)),
                        us,
                    );
                    if let Some(mut trace) = entry.payload.trace.take() {
                        trace.mark_at(Stage::Reply, now);
                        tel.finish_trace(&trace);
                    }
                }
                let _ = entry
                    .payload
                    .reply
                    .send(Ok(QueryResponse::Answered(QueryAnswer {
                        logits,
                        batch_size: 1,
                        latency,
                        partial: false,
                        generation,
                        graph_version,
                        epoch,
                        cached: true,
                    })));
                None
            };
            'batching: loop {
                // Block for the batch's first query; deadline-blown
                // entries encountered on the way are shed (they never
                // cost a forward), and fully-hot entries are answered
                // inline without opening a batch window.
                let first = loop {
                    let popped = ingress.pop(None);
                    notify_shed(
                        popped
                            .shed
                            .into_iter()
                            .map(|e| (e, ShedReason::DeadlineBlown)),
                    );
                    match popped.item {
                        Some(entry) => {
                            if let Some(item) = prepare(entry) {
                                break item;
                            }
                        }
                        None if popped.closed => break 'batching,
                        None => {}
                    }
                };
                let mut batch = vec![first];
                let mut stop = false;
                let deadline = Instant::now() + window;
                while batch.len() < max_batch {
                    let popped = ingress.pop(Some(deadline));
                    notify_shed(
                        popped
                            .shed
                            .into_iter()
                            .map(|e| (e, ShedReason::DeadlineBlown)),
                    );
                    match popped.item {
                        Some(entry) => {
                            if let Some(item) = prepare(entry) {
                                batch.push(item);
                            }
                        }
                        None if popped.closed => {
                            stop = true;
                            break;
                        }
                        // `pop` also returns item-less early when it only
                        // found deadline-blown entries to shed — that is
                        // not window expiry, so keep collecting (exactly
                        // under shedding overload is when batches must
                        // not collapse to singletons).
                        None if Instant::now() >= deadline => break,
                        None => {}
                    }
                }
                if let Some(rec) = &batcher_rec {
                    let seeds: usize = batch
                        .iter()
                        .map(|item| item.entry.payload.seeds.len())
                        .sum();
                    rec.record(EventKind::BatchFormed, batch.len() as u64, seeds as u64);
                }
                // Flush the in-flight batch even when shutting down.
                if batch_tx.send(batch).is_err() || stop {
                    break;
                }
            }
        });

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for w in 0..cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            let batch_rx = Arc::clone(&batch_rx);
            let counters = Arc::clone(&counters);
            let hist = Arc::clone(&hist);
            let queue = Arc::clone(&queue);
            let cache = cache.clone();
            let telemetry = telemetry.clone();
            let adaptive = adaptive.clone();
            let slo = slo.clone();
            workers.push(executor.spawn_worker(&format!("maxk-worker-{w}"), move || {
                loop {
                    // The guard is held across the blocking recv: waiting
                    // workers queue on the mutex, so batches are handed
                    // out one at a time while compute overlaps.
                    let batch = match batch_rx.lock().expect("batch queue poisoned").recv() {
                        Ok(b) => b,
                        Err(_) => break,
                    };
                    let size = batch.len();
                    let batch_id = telemetry.as_ref().map_or(0, |t| t.next_batch_id());
                    let obs = telemetry.as_deref().map(|t| (t, batch_id));
                    // Sampled per batch (see the batcher's per-entry
                    // note): the whole batch is answered by one engine
                    // state, so one sample before the forward labels and
                    // cache-keys it consistently.
                    let generation = engine.generation();
                    let graph_version = engine.graph_version();
                    let epoch = engine.epoch();
                    // The forward-start instant splits batch-wait from
                    // service in the stage histograms.
                    let fwd_start = Instant::now();
                    let (answers, partial, forwarded) = match &cache {
                        None => run_batch_uncached(engine.as_ref(), &counters, &batch, obs),
                        Some(cache) => run_batch_cached(
                            engine.as_ref(),
                            &counters,
                            cache,
                            generation,
                            graph_version,
                            &batch,
                            obs,
                        ),
                    };
                    counters.queries.fetch_add(size as u64, Ordering::Relaxed);
                    // Gather every reply first (the expensive row copies
                    // happen without holding any shared lock), then
                    // record the books *before* sending: once a client
                    // holds its answer, the counters already include it.
                    let now = Instant::now();
                    // Feed the adaptive controller only batches that ran
                    // a forward: an all-cache-resolved batch says nothing
                    // about engine service time and would drag the EWMA
                    // toward zero, collapsing the derived budgets.
                    if forwarded {
                        if let Some(ctrl) = &adaptive {
                            ctrl.observe_batch(now.saturating_duration_since(fwd_start), epoch);
                        }
                    }
                    let mut replies = Vec::with_capacity(size);
                    let mut stage_rows: Vec<[u64; 4]> = Vec::new();
                    for (item, (logits, cached)) in batch.into_iter().zip(answers) {
                        let BatchItem {
                            mut entry,
                            dequeued,
                            hits: _,
                        } = item;
                        let latency = now.saturating_duration_since(entry.enqueued);
                        if entry.deadline.is_some_and(|d| now >= d) {
                            counters.late_answers.fetch_add(1, Ordering::Relaxed);
                        }
                        if cached {
                            counters.cached_queries.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(tel) = &telemetry {
                            // queue-wait, batch-wait, service and e2e all
                            // derive from the same four instants, so per
                            // query the three stages sum to the e2e
                            // latency up to µs truncation.
                            stage_rows.push([
                                duration_us(dequeued.saturating_duration_since(entry.enqueued)),
                                duration_us(fwd_start.saturating_duration_since(dequeued)),
                                duration_us(now.saturating_duration_since(fwd_start)),
                                duration_us(latency),
                            ]);
                            if let Some(mut trace) = entry.payload.trace.take() {
                                trace.mark_at(Stage::Forward, fwd_start);
                                trace.mark_at(Stage::Gather, now);
                                trace.mark(Stage::Reply);
                                tel.finish_trace(&trace);
                            }
                        }
                        let answer = QueryAnswer {
                            logits,
                            batch_size: size,
                            latency,
                            partial,
                            generation,
                            graph_version,
                            epoch,
                            cached,
                        };
                        replies.push((entry.client, entry.payload.reply, answer));
                    }
                    if let Some(tel) = &telemetry {
                        tel.record_stage_rows(&stage_rows);
                    }
                    let outcomes: Vec<(u64, u64)> = replies
                        .iter()
                        .map(|(client, _, answer)| (*client, duration_us(answer.latency)))
                        .collect();
                    if let (Some(hub), Some(tel)) = (&slo, &telemetry) {
                        // Every answer in this batch carries the same
                        // staleness: the gap between the epoch it was
                        // computed against and the engine's current one.
                        let lag = engine.epoch().saturating_sub(epoch);
                        let rows: Vec<AnswerObs> = outcomes
                            .iter()
                            .map(|&(_, us)| AnswerObs {
                                latency_us: us,
                                epoch_lag: lag,
                            })
                            .collect();
                        hub.observe_answers(tel.now_us(), &rows);
                    }
                    {
                        let mut hist = hist.lock().expect("histogram poisoned");
                        for &(_, us) in &outcomes {
                            hist.record(us);
                        }
                    }
                    // Per-client answered counts + histograms live in the
                    // admission queue's one client map (one eviction
                    // policy, so the books cannot diverge); one lock per
                    // batch.
                    queue.record_answered(outcomes);
                    for (_, reply, answer) in replies {
                        // A client that gave up is not an error.
                        let _ = reply.send(Ok(QueryResponse::Answered(answer)));
                    }
                }
            }));
        }

        // The SLO monitor: owns the counter-diffing (availability and
        // cache-mass feeds), evaluates every tracker on its tick, and
        // runs the incident lifecycle — breach transition → recorder
        // trigger → (post-trigger window) → bundle finalize — plus the
        // breach→admission feedback loop.
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let mut monitor = Vec::new();
        if let (Some(hub), Some(rec), Some(tel)) = (&slo, &recorder, &telemetry) {
            let hub = Arc::clone(hub);
            let rec = Arc::clone(rec);
            let tel = Arc::clone(tel);
            let queue = Arc::clone(&queue);
            let cache = cache.clone();
            let adaptive = adaptive.clone();
            let stop = Arc::clone(&monitor_stop);
            let slo_cfg = *hub.config();
            let tick = slo_cfg.tick.max(Duration::from_millis(1));
            monitor.push(executor.spawn_worker("maxk-slo", move || {
                let mut prev = queue.totals();
                let mut prev_cache = (0u64, 0u64, 0u64);
                let mut prev_replans = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    let now_us = tel.now_us();
                    // Availability bad-mass: rejections and sheds since
                    // the last tick (answers arrive event-driven from
                    // the batcher and workers).
                    let totals = queue.totals();
                    let rejected = totals.rejected.saturating_sub(prev.rejected);
                    let shed = totals.shed.saturating_sub(prev.shed);
                    prev = totals;
                    if rejected > 0 {
                        rec.record_at(now_us, EventKind::Rejected, rejected, 0);
                    }
                    if shed > 0 {
                        rec.record_at(now_us, EventKind::ShedBurst, shed, 0);
                    }
                    if rejected + shed > 0 {
                        hub.observe_unserved(now_us, rejected + shed);
                    }
                    if let Some(c) = &cache {
                        let snap = c.snapshot();
                        let hits = snap.hits.saturating_sub(prev_cache.0);
                        let misses = snap.misses.saturating_sub(prev_cache.1);
                        let evictions = snap.evictions.saturating_sub(prev_cache.2);
                        prev_cache = (snap.hits, snap.misses, snap.evictions);
                        if hits + misses > 0 {
                            hub.observe_cache(now_us, hits, misses);
                        }
                        if evictions > 0 {
                            rec.record_at(now_us, EventKind::EvictionChurn, evictions, 0);
                        }
                    }
                    if let Some(ctrl) = &adaptive {
                        let replans = ctrl.snapshot().replans;
                        if replans > prev_replans {
                            rec.record_at(now_us, EventKind::Replan, replans - prev_replans, 0);
                        }
                        prev_replans = replans;
                    }
                    for e in hub.evaluate(now_us) {
                        rec.record_at(
                            now_us,
                            EventKind::SloTransition,
                            e.to.rank(),
                            (e.fast_burn * 1000.0) as u64,
                        );
                        if e.to == SloState::Breach {
                            rec.trigger(&format!("slo:{}", e.name), breach_context(&hub));
                        }
                    }
                    if slo_cfg.feedback {
                        if let Some(ctrl) = &adaptive {
                            // Breach ⇒ tighten the derived deadline so
                            // DeadlineShed drops load harder; recovery
                            // restores the full budget.
                            ctrl.set_deadline_tighten(if hub.any_breached() {
                                slo_cfg.tighten
                            } else {
                                1.0
                            });
                        }
                    }
                    rec.finalize_due(false);
                }
                // A breach close to shutdown still emits its bundle.
                rec.finalize_due(true);
            }));
        }

        // Stage order is the shutdown protocol: the batcher exits first
        // (dropping `batch_tx`), which disconnects the workers' recv;
        // the monitor joins last so every answer is observed before the
        // final evaluate/finalize.
        let mut barrier = ShutdownBarrier::new();
        barrier.add_stage("batcher", vec![batcher]);
        barrier.add_stage("workers", workers);
        if !monitor.is_empty() {
            barrier.add_stage("slo-monitor", monitor);
        }

        Server {
            queue,
            barrier,
            counters,
            hist,
            cache,
            telemetry,
            slo,
            recorder,
            monitor_stop,
            build,
            started: Instant::now(),
            num_nodes,
        }
    }

    /// A cloneable client handle for submitting queries.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            queue: Arc::clone(&self.queue),
            num_nodes: self.num_nodes,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Current counters and latency distribution.
    pub fn stats(&self) -> StatsSnapshot {
        self.metrics_source().snapshot()
    }

    /// The server's telemetry hub, when enabled: the metrics registry,
    /// the span ring ([`Telemetry::spans`] / [`Telemetry::chrome_trace`])
    /// and the stage histograms.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The SLO engine, when objectives are configured
    /// ([`ServerBuilder::slo`]).
    pub fn slo(&self) -> Option<&Arc<SloHub>> {
        self.slo.as_ref()
    }

    /// The always-on flight recorder (present whenever telemetry is —
    /// which includes any server with configured SLOs).
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Every incident bundle finalized so far (also written to the
    /// [`ServerBuilder::incident_sink`] directory, when one is set).
    pub fn incidents(&self) -> Vec<IncidentReport> {
        self.recorder
            .as_ref()
            .map_or_else(Vec::new, |r| r.incidents())
    }

    /// A cloneable read-side of this server: stats snapshots plus the
    /// Prometheus and JSON exports, detached from the server's lifetime
    /// (safe to hand to a scrape thread).
    pub fn metrics_source(&self) -> StatsSource {
        StatsSource {
            queue: Arc::clone(&self.queue),
            counters: Arc::clone(&self.counters),
            hist: Arc::clone(&self.hist),
            cache: self.cache.clone(),
            telemetry: self.telemetry.clone(),
            slo: self.slo.clone(),
            recorder: self.recorder.clone(),
            build: self.build,
            started: self.started,
        }
    }

    /// Starts the Prometheus/JSON scrape endpoint on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port): `GET /metrics` answers
    /// Prometheus text format, `GET /metrics.json` the JSON dump. The
    /// endpoint reads through [`Server::metrics_source`], so its series
    /// agree exactly with [`Server::stats`] taken at the same quiescent
    /// moment. Returns the exporter handle; dropping it stops the
    /// endpoint.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the listener cannot bind `addr`.
    pub fn serve_metrics(&self, addr: impl ToSocketAddrs) -> io::Result<MetricsExporter> {
        serve_scrape(self.metrics_source(), addr)
    }

    /// Stops accepting queries, drains in-flight batches, joins every
    /// thread and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.join_threads();
        self.stats()
    }

    fn join_threads(&mut self) {
        // Closing the admission queue stops new submissions and wakes
        // blocked submitters; the batcher drains what was already
        // admitted, then exits, dropping its batch sender, which
        // unblocks the workers — the barrier joins the stages in
        // exactly that order (idempotent, so Drop after shutdown is a
        // no-op). The monitor stop flag lands first so its stage (the
        // last one) exits within a tick and force-finalizes any open
        // incident on the way out.
        self.monitor_stop.store(true, Ordering::Relaxed);
        self.queue.close();
        self.barrier.join_all();
    }
}

/// Cloneable read-side of a [`Server`]: the same shared books the server
/// itself reads, behind `Arc`s, so stats snapshots and metric exports
/// outlive any one `&Server` borrow. Obtained via
/// [`Server::metrics_source`]; the TCP scrape endpoint
/// ([`Server::serve_metrics`]) is this source behind a listener.
///
/// Every export derives from one [`StatsSource::snapshot`] call over the
/// same underlying counters, so at quiescence (no in-flight queries) the
/// Prometheus series, the JSON dump and [`Server::stats`] agree exactly.
#[derive(Clone)]
pub struct StatsSource {
    queue: Arc<AdmissionQueue<Request>>,
    counters: Arc<Counters>,
    hist: Arc<Mutex<LatencyHistogram>>,
    cache: Option<Arc<LogitCache>>,
    telemetry: Option<Arc<Telemetry>>,
    slo: Option<Arc<SloHub>>,
    recorder: Option<Arc<FlightRecorder>>,
    build: BuildInfo,
    started: Instant,
}

impl StatsSource {
    /// Current counters and latency distribution (the body behind
    /// [`Server::stats`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        let queries = self.counters.queries.load(Ordering::Relaxed);
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let partial_batches = self.counters.partial_batches.load(Ordering::Relaxed);
        let cached_queries = self.counters.cached_queries.load(Ordering::Relaxed);
        let inline_queries = self.counters.inline_queries.load(Ordering::Relaxed);
        let late_answers = self.counters.late_answers.load(Ordering::Relaxed);
        let uptime_s = self.started.elapsed().as_secs_f64();
        let admission = self.queue.snapshot();
        let clients = admission.clients.clone();
        let batched_queries = queries - inline_queries;
        StatsSnapshot {
            queries,
            batches,
            partial_batches,
            cached_queries,
            submitted: admission.submitted,
            admitted: admission.submitted - admission.rejected - admission.shed,
            rejected: admission.rejected,
            shed: admission.shed,
            deadline_misses: admission.deadline_shed + late_answers,
            queue_depth: admission.queue_depth,
            queue_depth_peak: admission.queue_depth_peak,
            clients,
            evicted_clients: admission.evicted,
            shard_batches: self
                .counters
                .shard_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shard_partial_batches: self
                .counters
                .shard_partial_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cache: self.cache.as_ref().map(|c| c.snapshot()),
            // Every batched query belongs to exactly one batch, so the
            // mean occupancy is just the ratio of the two counters
            // (inline cache answers never joined a batch and are
            // excluded).
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_queries as f64 / batches as f64
            },
            uptime_s,
            throughput_qps: if uptime_s > 0.0 {
                queries as f64 / uptime_s
            } else {
                0.0
            },
            latency: LatencySummary::of(&self.hist.lock().expect("histogram poisoned")),
            stages: self.telemetry.as_ref().map(|t| t.stage_breakdown()),
            adaptive: admission.adaptive,
            classes: admission.classes,
            slo: self.slo.as_ref().map_or_else(Vec::new, |h| h.statuses()),
            incidents: self
                .recorder
                .as_ref()
                .map_or(0, |r| r.incidents().len() as u64),
        }
    }

    /// The readiness checks behind `GET /healthz`: ingress open, queue
    /// depth below the effective capacity, and no breached objective.
    /// Degraded (any failed check) answers HTTP 503 on the endpoint.
    pub fn healthz(&self) -> HealthReport {
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::Scrape, 1, 0);
        }
        let totals = self.queue.totals();
        let capacity = self.queue.effective_capacity() as u64;
        let closed = self.queue.is_closed();
        let mut checks = vec![
            HealthCheck::new(
                "engine",
                true,
                format!("{} shard(s) bound", self.build.shards),
            ),
            HealthCheck::new(
                "ingress",
                !closed,
                if closed {
                    "admission queue closed".to_string()
                } else {
                    "accepting queries".to_string()
                },
            ),
            HealthCheck::new(
                "queue",
                totals.depth < capacity,
                format!("depth {} of {}", totals.depth, capacity),
            ),
        ];
        if let Some(hub) = &self.slo {
            let breached: Vec<&str> = hub
                .statuses()
                .iter()
                .filter(|s| s.state == SloState::Breach)
                .map(|s| s.name)
                .collect();
            checks.push(HealthCheck::new(
                "slo",
                breached.is_empty(),
                if breached.is_empty() {
                    "all objectives ok".to_string()
                } else {
                    format!("breached: {}", breached.join(", "))
                },
            ));
        }
        HealthReport::new(checks)
    }

    /// The live-introspection dump behind `GET /debug/state`: build
    /// identity, the top-line serving books, cache and adaptive state,
    /// per-objective SLO status and the incident ledger, as one JSON
    /// object.
    pub fn debug_state(&self) -> String {
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::Scrape, 2, 0);
        }
        let stats = self.snapshot();
        let mut o = JsonObj::new();
        o.str("version", self.build.version)
            .num("shards", self.build.shards)
            .str("overload_policy", self.build.policy)
            .num("workers", self.build.workers)
            .float("uptime_s", stats.uptime_s)
            .num("queries", stats.queries)
            .num("batches", stats.batches)
            .num("submitted", stats.submitted)
            .num("rejected", stats.rejected)
            .num("shed", stats.shed)
            .num("deadline_misses", stats.deadline_misses)
            .num("queue_depth", stats.queue_depth)
            .num("queue_capacity", self.queue.effective_capacity())
            .bool("ingress_closed", self.queue.is_closed())
            .num("incidents", stats.incidents)
            .bool(
                "incident_open",
                self.recorder.as_ref().is_some_and(|r| r.incident_open()),
            );
        if let Some(c) = &stats.cache {
            let mut cache = JsonObj::new();
            cache
                .num("hits", c.hits)
                .num("misses", c.misses)
                .num("coalesced", c.coalesced)
                .num("evictions", c.evictions)
                .num("invalidated", c.invalidated)
                .num("resident_rows", c.resident_rows);
            o.raw("cache", cache.render());
        }
        if let Some(a) = &stats.adaptive {
            let mut adaptive = JsonObj::new();
            adaptive
                .num("ewma_us", a.ewma_us)
                .num("derived_capacity", a.derived_capacity)
                .num("derived_deadline_us", a.derived_deadline_us)
                .num("replans", a.replans)
                .num("tighten_permille", a.tighten_permille);
            o.raw("adaptive", adaptive.render());
        }
        o.raw(
            "slo",
            json_array(stats.slo.iter().map(|s| {
                let mut s_obj = JsonObj::new();
                s_obj
                    .str("name", s.name)
                    .str("kind", s.kind)
                    .str("state", s.state.label())
                    .float("fast_burn", s.fast_burn)
                    .float("slow_burn", s.slow_burn)
                    .num("transitions", s.transitions)
                    .num("breaches", s.breaches);
                s_obj.render()
            })),
        );
        o.render()
    }

    /// One Prometheus text-format scrape body: the stats-derived series
    /// (`stat_samples`) plus every registry family (stage histograms,
    /// kernel/forward/shard counters) when telemetry is enabled.
    pub fn prometheus(&self) -> String {
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::Scrape, 0, 0);
        }
        let stats = self.snapshot();
        let hist = self.hist.lock().expect("histogram poisoned").clone();
        let (samples, hists) = stat_samples(&stats, hist, Some(self.build));
        let registry = self.telemetry.as_ref().map(|t| t.registry().snapshot());
        export::render_prometheus(&samples, &hists, registry.as_ref())
    }

    /// The same series as [`StatsSource::prometheus`], rendered as one
    /// JSON document (`{"metrics": [...], "histograms": [...]}`).
    pub fn metrics_json(&self) -> String {
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::Scrape, 0, 0);
        }
        let stats = self.snapshot();
        let hist = self.hist.lock().expect("histogram poisoned").clone();
        let (samples, hists) = stat_samples(&stats, hist, Some(self.build));
        let registry = self.telemetry.as_ref().map(|t| t.registry().snapshot());
        export::render_metrics_json(&samples, &hists, registry.as_ref())
    }
}

impl ScrapeSource for StatsSource {
    fn prometheus(&self) -> String {
        StatsSource::prometheus(self)
    }

    fn metrics_json(&self) -> String {
        StatsSource::metrics_json(self)
    }

    fn healthz(&self) -> HealthReport {
        StatsSource::healthz(self)
    }

    fn debug_state(&self) -> String {
        StatsSource::debug_state(self)
    }
}

/// Renders a [`StatsSnapshot`] (plus the full latency histogram backing
/// its summary) as exportable samples — the one mapping between the
/// stats read-out and the `maxk_serve_*` metric names, used by both the
/// Prometheus and JSON exports so they cannot drift apart.
fn stat_samples(
    stats: &StatsSnapshot,
    hist: LatencyHistogram,
    build: Option<BuildInfo>,
) -> (Vec<Sample>, Vec<HistSample>) {
    let mut samples = vec![
        Sample::counter(
            "maxk_serve_queries_total",
            stats.queries,
            "Queries answered",
        ),
        Sample::counter(
            "maxk_serve_batches_total",
            stats.batches,
            "Batched forward passes executed",
        ),
        Sample::counter(
            "maxk_serve_partial_batches_total",
            stats.partial_batches,
            "Batches where a shard ran the seed-restricted partial forward",
        ),
        Sample::counter(
            "maxk_serve_cached_queries_total",
            stats.cached_queries,
            "Queries answered entirely from the logit cache",
        ),
        Sample::counter(
            "maxk_serve_submitted_total",
            stats.submitted,
            "Queries offered to admission",
        ),
        Sample::counter(
            "maxk_serve_rejected_total",
            stats.rejected,
            "Queries turned away at the door",
        ),
        Sample::counter(
            "maxk_serve_shed_total",
            stats.shed,
            "Admitted queries dropped before a forward",
        ),
        Sample::counter(
            "maxk_serve_deadline_misses_total",
            stats.deadline_misses,
            "Queries that missed their latency budget",
        ),
        Sample::gauge(
            "maxk_serve_queue_depth",
            stats.queue_depth as f64,
            "Current ingress queue depth",
        ),
        Sample::gauge(
            "maxk_serve_queue_depth_peak",
            stats.queue_depth_peak as f64,
            "Peak ingress queue depth since start",
        ),
        Sample::gauge(
            "maxk_serve_uptime_seconds",
            stats.uptime_s,
            "Seconds since the server started",
        ),
    ];
    if let Some(b) = build {
        samples.push(
            Sample::gauge(
                "maxk_serve_build_info",
                1.0,
                "Build/config identity (value is always 1; the labels carry the information)",
            )
            .with_label("version", b.version)
            .with_label("shards", b.shards)
            .with_label("policy", b.policy)
            .with_label("workers", b.workers),
        );
    }
    for (s, &n) in stats.shard_batches.iter().enumerate() {
        samples.push(
            Sample::counter(
                "maxk_serve_shard_batches_total",
                n,
                "Batches each shard participated in",
            )
            .with_label("shard", s),
        );
    }
    for (s, &n) in stats.shard_partial_batches.iter().enumerate() {
        samples.push(
            Sample::counter(
                "maxk_serve_shard_partial_batches_total",
                n,
                "Batches each shard served via the partial path",
            )
            .with_label("shard", s),
        );
    }
    if let Some(cache) = &stats.cache {
        samples.push(Sample::counter(
            "maxk_serve_cache_hits_total",
            cache.hits,
            "Seed instances answered from resident cache rows",
        ));
        samples.push(Sample::counter(
            "maxk_serve_cache_misses_total",
            cache.misses,
            "Seed instances that required a forward",
        ));
        samples.push(Sample::counter(
            "maxk_serve_cache_coalesced_total",
            cache.coalesced,
            "Seed instances that parked on another batch's in-flight computation",
        ));
        samples.push(Sample::counter(
            "maxk_serve_cache_evictions_total",
            cache.evictions,
            "Cache rows evicted under capacity pressure",
        ));
        samples.push(Sample::counter(
            "maxk_serve_cache_invalidated_total",
            cache.invalidated,
            "Cache rows dropped by mutation dirty-cone invalidation",
        ));
        samples.push(Sample::gauge(
            "maxk_serve_cache_resident_rows",
            cache.resident_rows as f64,
            "Logit rows currently resident",
        ));
        samples.push(Sample::gauge(
            "maxk_serve_cache_resident_bytes",
            cache.resident_bytes as f64,
            "Bytes held by resident logit rows",
        ));
        samples.push(Sample::gauge(
            "maxk_serve_cache_capacity_rows",
            cache.capacity as f64,
            "Configured cache capacity in rows",
        ));
    }
    if let Some(a) = &stats.adaptive {
        samples.push(Sample::gauge(
            "maxk_serve_admission_batch_service_ewma_us",
            a.ewma_us as f64,
            "EWMA of observed batch service time (µs)",
        ));
        samples.push(Sample::gauge(
            "maxk_serve_admission_derived_capacity",
            a.derived_capacity as f64,
            "Queue capacity derived by the adaptive controller",
        ));
        samples.push(Sample::gauge(
            "maxk_serve_admission_derived_deadline_us",
            a.derived_deadline_us as f64,
            "Default deadline budget derived by the adaptive controller (µs)",
        ));
        samples.push(Sample::counter(
            "maxk_serve_admission_replans_total",
            a.replans,
            "Adaptive re-plans triggered by snapshot/epoch swaps",
        ));
    }
    for c in &stats.classes {
        samples.push(
            Sample::counter(
                "maxk_serve_admission_class_submitted_total",
                c.submitted,
                "Queries submitted per traffic class",
            )
            .with_label("class", c.name),
        );
        samples.push(
            Sample::counter(
                "maxk_serve_admission_class_admitted_total",
                c.popped,
                "Queries handed to the batcher per traffic class",
            )
            .with_label("class", c.name),
        );
        samples.push(
            Sample::counter(
                "maxk_serve_admission_class_rejected_total",
                c.rejected,
                "Queries turned away per traffic class",
            )
            .with_label("class", c.name),
        );
        samples.push(
            Sample::counter(
                "maxk_serve_admission_class_shed_total",
                c.shed,
                "Admitted queries dropped per traffic class",
            )
            .with_label("class", c.name),
        );
        samples.push(
            Sample::gauge(
                "maxk_serve_admission_class_weight",
                c.weight,
                "Configured weight per traffic class",
            )
            .with_label("class", c.name),
        );
    }
    let hists = vec![HistSample {
        name: "maxk_serve_latency_us",
        labels: Vec::new(),
        hist,
        help: "Server-side end-to-end latency (enqueue to reply)",
    }];
    (samples, hists)
}

/// The uncached batch path: one forward over the whole seed union.
/// Returns each query's `(logits, cached)` in batch order, the
/// batch-level partial flag, and whether a forward ran (always true
/// here — the adaptive controller's service-time signal).
fn run_batch_uncached<E: BatchEngine + ?Sized>(
    engine: &E,
    counters: &Counters,
    batch: &[BatchItem],
    obs: Option<(&Telemetry, u64)>,
) -> (Vec<(Matrix, bool)>, bool, bool) {
    let mut union: Vec<u32> = batch
        .iter()
        .flat_map(|item| item.entry.payload.seeds.iter().copied())
        .collect();
    union.sort_unstable();
    union.dedup();
    let outcome = engine.forward_union_observed(&union, obs);
    counters.count_forward(&outcome);
    let partial = outcome.any_partial();
    let answers = batch
        .iter()
        .map(|item| (outcome.logits.gather(&item.entry.payload.seeds), false))
        .collect();
    (answers, partial, true)
}

/// The cached batch path: claim the batch's missing seeds, forward only
/// the claimed lead union, fill the cache, park on other batches' work
/// for follower seeds, and assemble each query's rows from probe hits +
/// claim results. Returns each query's `(logits, cached)` in batch
/// order, the batch-level partial flag, and whether any forward
/// actually ran (false for a batch fully resolved by residency and
/// other batches' in-flight work).
fn run_batch_cached<E: BatchEngine + ?Sized>(
    engine: &E,
    counters: &Counters,
    cache: &Arc<LogitCache>,
    generation: SnapshotGeneration,
    graph_version: GraphVersion,
    batch: &[BatchItem],
    obs: Option<(&Telemetry, u64)>,
) -> (Vec<(Matrix, bool)>, bool, bool) {
    // Aggregate the probe misses: per unique seed, how many answered
    // instances in this batch want it (the occurrence counts keep the
    // cache's per-instance books exact). BTreeMap iteration yields the
    // sorted order `forward_union` requires.
    let mut missing: BTreeMap<u32, u32> = BTreeMap::new();
    for item in batch {
        for (i, &s) in item.entry.payload.seeds.iter().enumerate() {
            if item.hits[i].is_none() {
                *missing.entry(s).or_insert(0) += 1;
            }
        }
    }
    let missing: Vec<(u32, u32)> = missing.into_iter().collect();
    let claim = cache.claim(generation, graph_version, &missing);
    let mut rows: HashMap<u32, Arc<[f32]>> = HashMap::new();
    // Seeds whose rows this batch computed itself — queries touching one
    // are not "cached" answers.
    let mut computed_here: HashSet<u32> = HashSet::new();
    for (s, row) in &claim.hits {
        rows.insert(*s, Arc::clone(row));
    }
    let mut partial = false;
    let mut forwarded = false;
    // Lead seeds: the shrunken union this batch actually forwards. The
    // leader fills *before* waiting on any follows, so two batches
    // leading/following each other's seeds can never deadlock.
    let lead_seeds = claim.lead.seeds();
    if !claim.lead.is_empty() {
        forwarded = true;
        let outcome = engine.forward_union_observed(&lead_seeds, obs);
        counters.count_forward(&outcome);
        partial |= outcome.any_partial();
        let gathered = outcome.logits.gather(&lead_seeds);
        for (s, row) in claim.lead.fill(&gathered) {
            computed_here.insert(s);
            rows.insert(s, row);
        }
    }
    // Follower seeds: park on the owning batch's computation. An aborted
    // leader (its worker died before filling) yields `None`; those seeds
    // fall back to a forward of our own rather than hanging.
    let mut fallback: Vec<u32> = Vec::new();
    for (s, handle) in claim.follows {
        match handle.wait() {
            Some(row) => {
                rows.insert(s, row);
            }
            None => fallback.push(s),
        }
    }
    if !fallback.is_empty() {
        forwarded = true;
        fallback.sort_unstable();
        fallback.dedup();
        // Register uncounted leadership *before* the recompute so a
        // mutation's invalidation racing it poisons the slots and the
        // fill below skips the stale rows — the raw `fill_rows` hook
        // this path used to call has no in-flight entry to poison and
        // would land pre-mutation bits.
        let lead = cache.lead_uncounted(generation, graph_version, &fallback);
        let outcome = engine.forward_union_observed(&fallback, obs);
        counters.count_forward(&outcome);
        partial |= outcome.any_partial();
        let gathered = outcome.logits.gather(&fallback);
        let lead_seeds = lead.seeds();
        if lead_seeds.len() == fallback.len() {
            lead.fill(&gathered);
        } else if !lead_seeds.is_empty() {
            // Some fallback seeds were re-led by another in-flight
            // claim in the meantime; publish only the rows we lead.
            let (_, cols) = gathered.shape();
            let mut sub = Matrix::zeros(lead_seeds.len(), cols);
            for (j, s) in lead_seeds.iter().enumerate() {
                let i = fallback.binary_search(s).expect("lead seed from fallback");
                sub.row_mut(j).copy_from_slice(gathered.row(i));
            }
            lead.fill(&sub);
        }
        for (i, &s) in fallback.iter().enumerate() {
            computed_here.insert(s);
            rows.insert(s, Arc::from(gathered.row(i)));
        }
    }
    // Assemble each query's rows in request order and decide its cached
    // flag: true iff none of its rows came from this batch's own
    // forwards.
    let out_dim = engine.out_dim();
    let answers = batch
        .iter()
        .map(|item| {
            let seeds = &item.entry.payload.seeds;
            let mut logits = Matrix::zeros(seeds.len(), out_dim);
            let mut cached = true;
            for (i, &s) in seeds.iter().enumerate() {
                let row: &[f32] = match &item.hits[i] {
                    Some(row) => row,
                    None => {
                        if computed_here.contains(&s) {
                            cached = false;
                        }
                        rows.get(&s).expect("every missing seed resolved")
                    }
                };
                logits.row_mut(i).copy_from_slice(row);
            }
            (logits, cached)
        })
        .collect();
    (answers, partial, forwarded)
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// A query submitted but not yet resolved: the receipt half of
/// [`ServerHandle::request`]. Lets open-loop clients fire queries on a
/// schedule without blocking on each reply.
#[derive(Debug)]
pub struct PendingQuery {
    inner: Pending,
}

#[derive(Debug)]
enum Pending {
    /// Resolved synchronously at admission (a rejection).
    Immediate(QueryResponse),
    /// Waiting on the serving pipeline.
    Waiting(exec::Receiver<Result<QueryResponse, ServeError>>),
}

impl PendingQuery {
    /// Blocks until the query resolves.
    ///
    /// # Errors
    ///
    /// [`ServeError::ChannelClosed`] when the server shut down before
    /// resolving the query.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        match self.inner {
            Pending::Immediate(r) => Ok(r),
            Pending::Waiting(rx) => rx.recv().map_err(|_| ServeError::ChannelClosed)?,
        }
    }
}

/// Cheap cloneable client endpoint of a [`Server`].
///
/// Two entry points: [`ServerHandle::query`] for the common blocking
/// default-options case, and [`ServerHandle::request`] for everything
/// else — it takes [`QueryOptions`] and returns a [`PendingQuery`]
/// receipt, so callers choose per call whether to block
/// ([`PendingQuery::wait`]) or fire-and-collect.
#[derive(Clone)]
pub struct ServerHandle {
    queue: Arc<AdmissionQueue<Request>>,
    num_nodes: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl ServerHandle {
    /// Submits a seed-set query, returning a [`PendingQuery`] receipt
    /// without waiting for the outcome.
    ///
    /// Admission happens synchronously: a rejected query resolves
    /// immediately (its [`PendingQuery::wait`] returns
    /// [`QueryResponse::Rejected`] without a channel round-trip), an
    /// admitted one resolves when its batch completes or the admission
    /// layer sheds it. Under
    /// [`crate::admission::OverloadPolicy::Block`] this call blocks
    /// while the ingress queue is full — that is the policy's
    /// backpressure.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// # fn demo(handle: &maxk_serve::ServerHandle) -> Result<(), maxk_serve::ServeError> {
    /// use maxk_serve::QueryOptions;
    /// use std::time::Duration;
    ///
    /// let pending = handle.request(
    ///     &[3, 14, 15],
    ///     QueryOptions::new()
    ///         .for_client(42)
    ///         .with_deadline(Duration::from_millis(100)),
    /// )?;
    /// let response = pending.wait()?; // Answered, Rejected or Shed
    /// # let _ = response;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyQuery`] / [`ServeError::SeedOutOfRange`] on bad
    /// input (validated before admission, so invalid queries never count
    /// against a client's budget); [`ServeError::ChannelClosed`] when the
    /// server has shut down.
    pub fn request(&self, seeds: &[u32], opts: QueryOptions) -> Result<PendingQuery, ServeError> {
        check_seeds(seeds, self.num_nodes)?;
        let (reply_tx, reply_rx) = StdThreadExecutor.unbounded();
        // Sampled queries carry a trace; the unsampled path costs one
        // relaxed atomic increment (and nothing at all with tracing off).
        let mut trace = self
            .telemetry
            .as_ref()
            .and_then(|t| t.begin_trace(opts.client, seeds.len()));
        if let Some(t) = trace.as_mut() {
            t.mark(Stage::Enqueue);
        }
        let request = Request {
            seeds: seeds.to_vec(),
            reply: reply_tx,
            trace,
        };
        match self
            .queue
            .submit_classed(opts.client, opts.class, opts.deadline, request)?
        {
            Submission::Admitted { shed } => {
                notify_shed(shed);
                Ok(PendingQuery {
                    inner: Pending::Waiting(reply_rx),
                })
            }
            Submission::Rejected(reason) => Ok(PendingQuery {
                inner: Pending::Immediate(QueryResponse::Rejected(reason)),
            }),
        }
    }

    /// Submits a seed-set query with default options (client 0, no
    /// per-query deadline) and blocks until it resolves.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServerHandle::request`].
    pub fn query(&self, seeds: &[u32]) -> Result<QueryResponse, ServeError> {
        self.request(seeds, QueryOptions::new())?.wait()
    }

    /// Nodes served (valid seeds are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::OverloadPolicy;
    use crate::InferenceEngine;
    use maxk_graph::generate;
    use maxk_nn::snapshot::ModelSnapshot;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> Arc<InferenceEngine> {
        let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 3)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(60, 6, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        Arc::new(InferenceEngine::from_snapshot(&snap, &graph, x).unwrap())
    }

    fn answer(resp: Result<QueryResponse, ServeError>) -> QueryAnswer {
        resp.expect("server running")
            .into_answer()
            .expect("query answered")
    }

    #[test]
    fn serves_correct_logits() {
        let engine = engine();
        let expected = engine.forward_all();
        let server = Server::builder().start(Arc::clone(&engine));
        let handle = server.handle();
        let resp = answer(handle.query(&[3, 59]));
        assert_eq!(resp.logits.shape(), (2, 3));
        assert_eq!(resp.logits.row(0), expected.row(3));
        assert_eq!(resp.logits.row(1), expected.row(59));
        assert!(resp.batch_size >= 1);
        assert!(!resp.cached, "no cache configured");
        assert_eq!(resp.generation, engine.generation());
        assert_eq!(resp.graph_version, engine.graph_version());
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected + stats.shed, 0);
        assert_eq!(stats.cached_queries, 0);
        assert!(stats.cache.is_none());
    }

    #[test]
    fn concurrent_queries_coalesce() {
        let engine = engine();
        let server = Server::builder()
            .batch_window(Duration::from_millis(20))
            .max_batch(64)
            .workers(1)
            .start(engine);
        let handle = server.handle();
        let clients = 8;
        StdThreadExecutor.scope(|s| {
            for c in 0..clients {
                let h = handle.clone();
                s.spawn(move || {
                    let resp = answer(
                        h.request(&[c as u32], QueryOptions::new().for_client(c as u64))
                            .and_then(PendingQuery::wait),
                    );
                    assert_eq!(resp.logits.shape(), (1, 3));
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.queries, clients as u64);
        // With a 20ms window and instant concurrent arrivals, at least one
        // batch must carry more than one query.
        assert!(
            stats.batches < clients as u64,
            "expected coalescing, got {} batches",
            stats.batches
        );
        assert!(stats.mean_batch > 1.0);
        assert!(stats.latency.p99_us.is_finite());
        // Per-client books: every client answered exactly once.
        assert_eq!(stats.clients.len(), clients);
        for c in &stats.clients {
            assert_eq!(c.submitted, 1);
            assert_eq!(c.answered, 1);
            assert_eq!(c.rejected + c.shed, 0);
            assert_eq!(c.latency.count, 1);
        }
    }

    #[test]
    fn unbatched_config_serves_one_query_per_forward() {
        let engine = engine();
        let server = Server::builder()
            .batch_window(Duration::ZERO)
            .max_batch(1)
            .workers(1)
            .start(engine);
        let handle = server.handle();
        for i in 0..5u32 {
            let resp = answer(handle.query(&[i]));
            assert_eq!(resp.batch_size, 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.batches, 5);
        assert!((stats.mean_batch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_batches_counted_and_flagged() {
        use maxk_nn::PlanConfig;
        let force = |seed_frac_cutoff: f64, work_ratio: f64| {
            let e = Arc::try_unwrap(engine())
                .expect("sole owner")
                .with_plan_config(PlanConfig {
                    seed_frac_cutoff,
                    work_ratio,
                });
            Arc::new(e)
        };
        // Always-partial heuristic: the response and counters must say so.
        let server = Server::builder().start(force(1.0, f64::INFINITY));
        let expected = {
            let h = server.handle();
            let resp = answer(h.query(&[7]));
            assert!(resp.partial);
            resp.logits
        };
        let stats = server.shutdown();
        assert_eq!(stats.partial_batches, 1);
        // Always-full heuristic: same logits bitwise, no partial batches.
        let server = Server::builder().start(force(0.0, 0.0));
        let resp = answer(server.handle().query(&[7]));
        assert!(!resp.partial);
        assert_eq!(resp.logits, expected);
        let stats = server.shutdown();
        assert_eq!(stats.partial_batches, 0);
    }

    #[test]
    fn sharded_engine_serves_through_the_same_api() {
        use crate::{ShardConfig, ShardedEngine};
        let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 3)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(60, 6, &mut rng);
        let snap = ModelSnapshot::capture(&model);
        let single = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
        let expected = single.forward_all();
        let sharded = ShardedEngine::from_snapshot(
            &snap,
            &graph,
            &x,
            ShardConfig {
                num_shards: 2,
                strategy: maxk_graph::shard::ShardStrategy::Contiguous,
            },
        )
        .unwrap();
        // Sharded and single engines share the snapshot's generation but
        // have distinct graph operands (distinct versions).
        assert_eq!(sharded.generation(), single.generation());
        assert_ne!(BatchEngine::graph_version(&sharded), single.graph_version());
        let server = Server::builder().start(Arc::new(sharded));
        let handle = server.handle();
        // A query spanning both shards (contiguous: low ids shard 0,
        // high ids shard 1) must return the unsharded rows.
        let resp = answer(handle.query(&[0, 59, 30]));
        assert_eq!(resp.logits.row(0), expected.row(0));
        assert_eq!(resp.logits.row(1), expected.row(59));
        assert_eq!(resp.logits.row(2), expected.row(30));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.shard_batches.len(), 2);
        assert_eq!(stats.shard_partial_batches.len(), 2);
        // Both shards saw the one batch.
        assert_eq!(stats.shard_batches, vec![1, 1]);
    }

    #[test]
    fn single_engine_reports_one_shard_counter() {
        let engine = engine();
        let server = Server::builder().start(engine);
        let _ = answer(server.handle().query(&[1]));
        let stats = server.shutdown();
        assert_eq!(stats.shard_batches, vec![stats.batches]);
        assert_eq!(stats.shard_partial_batches, vec![stats.partial_batches]);
    }

    #[test]
    fn bad_queries_rejected_without_reaching_admission() {
        let engine = engine();
        let server = Server::builder().start(engine);
        let handle = server.handle();
        assert!(matches!(handle.query(&[]), Err(ServeError::EmptyQuery)));
        assert!(matches!(
            handle.query(&[1000]),
            Err(ServeError::SeedOutOfRange { .. })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.batches, 0);
        // Invalid queries never reach admission accounting.
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn query_after_shutdown_fails_cleanly() {
        let engine = engine();
        let server = Server::builder().start(engine);
        let handle = server.handle();
        let _ = server.shutdown();
        assert!(matches!(handle.query(&[0]), Err(ServeError::ChannelClosed)));
    }

    #[test]
    fn deadline_zero_sheds_instead_of_answering() {
        let engine = engine();
        let server = Server::builder()
            .overload_policy(OverloadPolicy::DeadlineShed)
            .start(engine);
        let resp = server
            .handle()
            .request(
                &[1],
                QueryOptions::new()
                    .for_client(9)
                    .with_deadline(Duration::ZERO),
            )
            .and_then(PendingQuery::wait)
            .unwrap();
        assert!(
            matches!(resp, QueryResponse::Shed(ShedReason::DeadlineBlown)),
            "expected a deadline shed, got {resp:?}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0, "a blown query must not cost a forward");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn stats_books_balance_mid_flight() {
        let engine = engine();
        let server = Server::builder().start(engine);
        let handle = server.handle();
        for i in 0..7u32 {
            let _ = answer(handle.query(&[i]));
        }
        let stats = server.stats();
        assert_eq!(
            stats.submitted,
            stats.queries + stats.rejected + stats.shed + stats.queue_depth
        );
        let _ = server.shutdown();
    }

    #[test]
    fn repeated_seed_served_from_cache_bitwise() {
        let engine = engine();
        let expected = engine.forward_all();
        let server = Server::builder()
            .cache_capacity(128)
            .start(Arc::clone(&engine));
        let handle = server.handle();
        let first = answer(handle.query(&[9, 3]));
        assert!(!first.cached, "first touch computes");
        // Every repeat is fully hot: answered inline, no new batch.
        for _ in 0..3 {
            let again = answer(handle.query(&[9, 3]));
            assert!(again.cached);
            assert!(!again.partial);
            assert_eq!(again.batch_size, 1);
            assert_eq!(again.logits, first.logits);
            assert_eq!(again.generation, first.generation);
            assert_eq!(again.graph_version, first.graph_version);
        }
        assert_eq!(first.logits.row(0), expected.row(9));
        assert_eq!(first.logits.row(1), expected.row(3));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.cached_queries, 3);
        assert_eq!(
            stats.batches, 1,
            "a fully-hot query never reaches the engine"
        );
        let cache = stats.cache.expect("cache enabled");
        // 2 seeds missed on first touch; 3 x 2 instances hit after.
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 6);
        assert_eq!(cache.coalesced, 0);
        assert_eq!(cache.resident_rows, 2);
    }

    #[test]
    fn partial_hit_shrinks_the_union_and_mixes_rows() {
        let engine = engine();
        let expected = engine.forward_all();
        let server = Server::builder()
            .cache_capacity(128)
            .start(Arc::clone(&engine));
        let handle = server.handle();
        let _ = answer(handle.query(&[5]));
        // Seed 5 is resident; 11 is not. The answer mixes a cached row
        // with a fresh one, so `cached` is false but both rows are exact.
        let mixed = answer(handle.query(&[5, 11]));
        assert!(!mixed.cached);
        assert_eq!(mixed.logits.row(0), expected.row(5));
        assert_eq!(mixed.logits.row(1), expected.row(11));
        let stats = server.shutdown();
        let cache = stats.cache.expect("cache enabled");
        assert_eq!(cache.misses, 2, "seed 5 once, seed 11 once");
        assert_eq!(cache.hits, 1, "seed 5's repeat");
        // Identity: every answered seed instance is counted once.
        assert_eq!(cache.hits + cache.misses + cache.coalesced, 3);
    }

    #[test]
    fn cache_counters_account_every_admitted_query() {
        let engine = engine();
        let server = Server::builder()
            .cache_capacity(64)
            .batch_window(Duration::from_millis(5))
            .workers(2)
            .start(engine);
        let handle = server.handle();
        // Concurrent Zipf-ish repetition: lots of duplicate seeds across
        // overlapping batches.
        StdThreadExecutor.scope(|s| {
            for c in 0..6u64 {
                let h = handle.clone();
                s.spawn(move || {
                    for i in 0..30u32 {
                        let seed = (i * (c as u32 + 1)) % 7;
                        let _ = answer(
                            h.request(&[seed], QueryOptions::new().for_client(c))
                                .and_then(PendingQuery::wait),
                        );
                    }
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.queries, 180);
        let cache = stats.cache.expect("cache enabled");
        // Exact per-instance account: one seed per query here, so
        // hits + misses + coalesced == answered queries.
        assert_eq!(
            cache.hits + cache.misses + cache.coalesced,
            stats.queries,
            "cache books must account every answered seed instance"
        );
        assert_eq!(cache.misses, 7, "seven distinct seeds computed once each");
        assert!(stats.cached_queries > 0);
    }

    #[test]
    fn stage_histograms_cover_every_answered_query() {
        let engine = engine();
        let server = Server::builder().start(engine);
        let handle = server.handle();
        for i in 0..5u32 {
            let _ = answer(handle.query(&[i]));
        }
        let stats = server.shutdown();
        let stages = stats.stages.expect("telemetry on by default");
        assert_eq!(stages.queue_wait.count, stats.queries);
        assert_eq!(stages.batch_wait.count, stats.queries);
        assert_eq!(stages.service.count, stats.queries);
        assert_eq!(stages.e2e.count, stats.queries);
    }

    #[test]
    fn telemetry_off_serves_without_stage_books() {
        let engine = engine();
        let server = Server::builder()
            .telemetry(TelemetryConfig::off())
            .start(engine);
        let resp = answer(server.handle().query(&[3]));
        assert_eq!(resp.logits.shape(), (1, 3));
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
        assert!(stats.stages.is_none());
    }

    #[test]
    fn sampled_traces_reach_the_span_ring() {
        let engine = engine();
        let server = Server::builder().trace_sampling(1.0).start(engine);
        let handle = server.handle();
        for i in 0..3u32 {
            let _ = answer(handle.query(&[i]));
        }
        let tel = server.telemetry().expect("telemetry on").clone();
        let spans = tel.spans();
        let queries = spans.iter().filter(|s| s.name == "query").count();
        assert_eq!(queries, 3, "sampling 1.0 traces every query");
        assert!(spans.iter().any(|s| s.name == "queue_wait"));
        assert!(spans
            .iter()
            .any(|s| s.name == "forward" && s.cat == "batch"));
        let json = tel.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        let _ = server.shutdown();
    }

    #[test]
    fn adaptive_server_derives_budgets_and_answers_exactly() {
        let engine = engine();
        let expected = engine.forward_all();
        let server = Server::builder()
            .adaptive_admission()
            .start(Arc::clone(&engine));
        let handle = server.handle();
        for i in 0..6u32 {
            let resp = answer(handle.query(&[i]));
            assert_eq!(resp.logits.row(0), expected.row(i as usize));
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 6);
        let a = stats.adaptive.expect("adaptive enabled");
        assert!(a.samples > 0, "every batch feeds the EWMA");
        assert!(a.ewma_us > 0);
        assert!(a.derived_capacity > 0);
        assert!(
            a.derived_deadline_us > 0,
            "deadline multiplier derives a budget from the EWMA"
        );
        // Exact accounting survives the adaptive controller.
        assert_eq!(stats.submitted, stats.queries + stats.rejected + stats.shed);
    }

    #[test]
    fn classed_queries_account_per_class_exactly() {
        let engine = engine();
        let server = Server::builder()
            .classes(
                ClassWeights::new()
                    .with_class("paid", 3.0)
                    .with_class("batch", 1.0),
            )
            .start(engine);
        let handle = server.handle();
        for i in 0..4u32 {
            let _ = answer(
                handle
                    .request(&[i], QueryOptions::new().in_class(0))
                    .and_then(PendingQuery::wait),
            );
        }
        for i in 0..2u32 {
            let _ = answer(
                handle
                    .request(&[i], QueryOptions::new().for_client(1).in_class(1))
                    .and_then(PendingQuery::wait),
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.classes.len(), 2);
        let paid = &stats.classes[0];
        let batch = &stats.classes[1];
        assert_eq!((paid.name, paid.submitted, paid.popped), ("paid", 4, 4));
        assert_eq!((batch.name, batch.submitted, batch.popped), ("batch", 2, 2));
        for c in &stats.classes {
            assert_eq!(
                c.submitted,
                c.popped + c.rejected + c.shed + c.queued,
                "per-class identity for {}",
                c.name
            );
        }
    }

    #[test]
    fn slo_statuses_surface_in_stats_and_stay_ok_under_light_load() {
        use crate::telemetry::SloState;
        let server = Server::builder()
            .slo_latency(Duration::from_secs(5))
            .start(engine());
        let handle = server.handle();
        for i in 0..4u32 {
            let _ = answer(handle.query(&[i]));
        }
        assert!(server.slo().is_some());
        assert!(server.flight_recorder().is_some());
        let stats = server.stats();
        assert_eq!(stats.slo.len(), 2);
        let names: Vec<&str> = stats.slo.iter().map(|s| s.name).collect();
        assert!(names.contains(&"latency") && names.contains(&"availability"));
        for s in &stats.slo {
            assert_eq!(s.state, SloState::Ok, "objective {} breached", s.name);
        }
        assert_eq!(stats.incidents, 0);
        assert!(server.incidents().is_empty());
        let _ = server.shutdown();
    }

    #[test]
    fn healthz_flips_degraded_when_ingress_closes() {
        let server = Server::builder()
            .slo_latency(Duration::from_secs(5))
            .start(engine());
        let source = server.metrics_source();
        let report = source.healthz();
        assert!(report.ready(), "fresh server must be ready: {report:?}");
        let _ = server.shutdown();
        let report = source.healthz();
        assert!(!report.ready(), "closed ingress must degrade /healthz");
        assert!(report.checks.iter().any(|c| c.name == "ingress" && !c.ok));
    }

    #[test]
    fn build_info_and_debug_state_exported() {
        let server = Server::builder()
            .workers(3)
            .overload_policy(OverloadPolicy::DeadlineShed)
            .slo_latency(Duration::from_secs(5))
            .start(engine());
        let _ = answer(server.handle().query(&[2]));
        let source = server.metrics_source();
        // The state gauges land on the monitor's first evaluate; poll
        // past that tick instead of racing it.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut prom = source.prometheus();
        while !prom.contains("maxk_serve_slo_state{") && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            prom = source.prometheus();
        }
        assert!(prom.contains("maxk_serve_build_info{"));
        assert!(prom.contains(concat!("version=\"", env!("CARGO_PKG_VERSION"), "\"")));
        assert!(prom.contains("policy=\"deadline-shed\""));
        assert!(prom.contains("workers=\"3\""));
        assert!(prom.contains("maxk_serve_slo_state{"));
        let dump = source.debug_state();
        assert!(dump.contains("\"overload_policy\":\"deadline-shed\""));
        assert!(dump.contains("\"slo\":["));
        assert!(dump.contains("\"name\":\"latency\""));
        assert!(dump.contains("\"incident_open\":false"));
        let _ = server.shutdown();
    }

    #[test]
    fn injected_fault_breaches_slo_and_emits_exactly_one_incident() {
        use crate::engine::FaultInjector;
        use crate::telemetry::{SloSpec, SloSpecSet};
        // Aggressive windows so a sub-second test observes the full
        // trigger → finalize lifecycle; an hour of cooldown proves the
        // sustained breach cannot re-trigger.
        let slo = SloConfig {
            specs: SloSpecSet::new().with_spec(SloSpec::latency(
                "latency",
                Duration::from_micros(300),
                0.05,
            )),
            fast_window: Duration::from_millis(400),
            slow_window: Duration::from_millis(800),
            tick: Duration::from_millis(5),
            min_events: 4,
            recorder: crate::RecorderConfig {
                post_trigger: Duration::from_millis(50),
                cooldown: Duration::from_secs(3600),
                ..crate::RecorderConfig::default()
            },
            ..SloConfig::default()
        };
        let inner = Arc::try_unwrap(engine()).unwrap_or_else(|_| panic!("sole owner"));
        let faulty = Arc::new(FaultInjector::new(inner));
        faulty.set_forward_delay(Duration::from_millis(5));
        let server = Server::builder()
            .batch_window(Duration::ZERO)
            .workers(1)
            .slo(slo)
            .start(Arc::clone(&faulty));
        let handle = server.handle();
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.incidents().is_empty() && Instant::now() < deadline {
            for i in 0..8u32 {
                let _ = answer(handle.query(&[i % 16]));
            }
        }
        let incidents = server.incidents();
        assert_eq!(
            incidents.len(),
            1,
            "sustained breach must emit exactly one bundle"
        );
        let report = &incidents[0];
        assert_eq!(report.reason, "slo:latency");
        assert!(
            report
                .events
                .iter()
                .any(|e| e.kind == crate::EventKind::BatchFormed),
            "ring evidence must include the offending batches"
        );
        assert!(
            !report.spans.is_empty(),
            "boosted post-trigger window must contribute spans"
        );
        // The breach shows up in /healthz while hot.
        let stats = server.stats();
        assert_eq!(stats.incidents, 1);
        assert!(stats.slo.iter().any(|s| s.breaches >= 1));
        let _ = server.shutdown();
    }

    #[test]
    fn slo_breach_tightens_adaptive_deadline_and_recovery_restores_it() {
        use crate::engine::FaultInjector;
        use crate::telemetry::{SloSpec, SloSpecSet};
        let slo = SloConfig {
            specs: SloSpecSet::new().with_spec(SloSpec::latency(
                "latency",
                Duration::from_micros(300),
                0.05,
            )),
            fast_window: Duration::from_millis(300),
            slow_window: Duration::from_millis(600),
            tick: Duration::from_millis(5),
            min_events: 4,
            tighten: 0.5,
            ..SloConfig::default()
        };
        let inner = Arc::try_unwrap(engine()).unwrap_or_else(|_| panic!("sole owner"));
        let faulty = Arc::new(FaultInjector::new(inner));
        faulty.set_forward_delay(Duration::from_millis(5));
        let server = Server::builder()
            .batch_window(Duration::ZERO)
            .workers(1)
            .adaptive_admission()
            .slo(slo)
            .start(Arc::clone(&faulty));
        let handle = server.handle();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut tightened = false;
        while !tightened && Instant::now() < deadline {
            for i in 0..8u32 {
                let _ = answer(handle.query(&[i]));
            }
            tightened = server
                .stats()
                .adaptive
                .is_some_and(|a| a.tighten_permille < 1000);
        }
        assert!(tightened, "breach must feed back into the derived deadline");
        // Clear the fault; burn decays within the fast window and the
        // monitor restores the full budget.
        faulty.set_forward_delay(Duration::ZERO);
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut restored = false;
        while !restored && Instant::now() < deadline {
            for i in 0..8u32 {
                let _ = answer(handle.query(&[i]));
            }
            std::thread::sleep(Duration::from_millis(20));
            restored = server
                .stats()
                .adaptive
                .is_some_and(|a| a.tighten_permille == 1000);
        }
        assert!(restored, "recovery must restore the full deadline budget");
        let _ = server.shutdown();
    }
}
