//! Sharded serving: one inference engine per graph shard behind a
//! scatter/gather router.
//!
//! A single [`InferenceEngine`] holds the whole normalized adjacency and
//! the full feature matrix, so serving capacity is bounded by one
//! machine's memory. [`ShardedEngine`] splits the graph into `S`
//! halo-augmented shards (`maxk_graph::shard`): each shard's engine holds
//! only its owned nodes plus their reverse L-hop ghost rows — features
//! and populated adjacency rows shrink per shard as `S` grows — yet every
//! seed a shard owns is answerable locally and **bitwise-identically** to
//! the unsharded engine, because ghost rows carry the exact global
//! adjacency rows (values included, columns compact-remapped in order)
//! and features, and extraction runs on the already-normalized operand.
//!
//! Per batch, the router scatters the seed union to owner shards, runs
//! the per-shard forwards concurrently (one thread per participating
//! shard; each shard plans full-vs-partial over *its* seeds with the
//! shared cost model), and gathers the logit rows back into seed-union
//! order. It implements [`BatchEngine`], so the micro-batching
//! [`crate::Server`] drives it through the same `Server`/`ServerHandle`
//! API as the single engine.

use crate::cache::LogitCache;
use crate::engine::{check_seeds, BatchEngine, BatchLogits, BatchOutcome, InferenceEngine};
use crate::exec::{Executor, StdThreadExecutor};
use crate::telemetry::Telemetry;
use crate::ServeError;
use maxk_graph::shard::{ShardStrategy, Sharding};
use maxk_graph::{Csr, NodeSet, WarpPartition};
use maxk_nn::plan::{ForwardPlan, ForwardTimer, PlanConfig};
use maxk_nn::snapshot::ModelSnapshot;
use maxk_nn::{GraphContext, GraphVersion, SnapshotGeneration};
use maxk_tensor::Matrix;
use std::sync::Arc;
use std::time::Instant;

/// How [`ShardedEngine::from_snapshot`] partitions the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards (each gets one engine).
    pub num_shards: usize,
    /// Owned-node assignment strategy.
    pub strategy: ShardStrategy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            num_shards: 2,
            strategy: ShardStrategy::DegreeBalanced,
        }
    }
}

/// Memory-footprint read-out of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Nodes this shard owns (answers queries for).
    pub owned_nodes: usize,
    /// Local universe: owned plus reverse-halo ghosts.
    pub local_nodes: usize,
    /// Ghost nodes carried beyond the owned set.
    pub ghost_nodes: usize,
    /// Nonzeros resident in the shard's sub-adjacency.
    pub resident_edges: usize,
    /// Feature rows resident in the shard (== `local_nodes`).
    pub feature_rows: usize,
}

/// One shard's serving state: the mapping plus its private engine.
#[derive(Debug, Clone)]
struct ShardSlot {
    /// Global ids the shard owns.
    owned: NodeSet,
    /// Local universe (owned ∪ halo); a node's local id is its compact
    /// index here.
    local: NodeSet,
    engine: InferenceEngine,
}

/// A sharded serving router: one [`InferenceEngine`] per halo-augmented
/// shard, scatter/gather over the batch seed union.
///
/// # Examples
///
/// ```
/// use maxk_serve::{ShardConfig, ShardedEngine};
/// use maxk_graph::shard::ShardStrategy;
/// use maxk_nn::snapshot::ModelSnapshot;
/// use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
/// use maxk_graph::generate;
/// use maxk_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let graph = generate::chung_lu_power_law(60, 5.0, 2.3, 1).to_csr().unwrap();
/// let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 8, 3);
/// cfg.hidden_dim = 16;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = GnnModel::new(cfg, &graph, &mut rng);
/// let features = Matrix::xavier(60, 8, &mut rng);
///
/// let sharded = ShardedEngine::from_snapshot(
///     &ModelSnapshot::capture(&model),
///     &graph,
///     &features,
///     ShardConfig { num_shards: 2, strategy: ShardStrategy::Contiguous },
/// )
/// .unwrap();
/// let logits = sharded.logits_for(&[0, 31, 59]).unwrap();
/// assert_eq!(logits.shape(), (3, 3));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    slots: Vec<ShardSlot>,
    /// Global node id → owning shard index.
    owner: Vec<u32>,
    num_nodes: usize,
    out_dim: usize,
    /// The weight set all shard engines were built from.
    generation: SnapshotGeneration,
    /// One version shared by every shard context: the shards are slices
    /// of a single normalized operand, so they form one cacheable graph
    /// identity.
    graph_version: GraphVersion,
    /// Optional router-level logit cache: probe before scatter, fill
    /// after gather.
    cache: Option<Arc<LogitCache>>,
}

impl ShardedEngine {
    /// Builds one engine per shard from a snapshot.
    ///
    /// The global graph is normalized **once** (exactly as the unsharded
    /// engine would), then each shard extracts its halo-augmented slice
    /// of the normalized operand and of `features`; the global context
    /// and feature matrix are dropped before this returns, so the
    /// resident state is per-shard only.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadModel`] on snapshot/feature/graph inconsistencies
    /// or a shard count the graph cannot satisfy.
    pub fn from_snapshot(
        snapshot: &ModelSnapshot,
        graph: &Csr,
        features: &Matrix,
        cfg: ShardConfig,
    ) -> Result<Self, ServeError> {
        if features.rows() != graph.num_nodes() {
            return Err(ServeError::BadModel(format!(
                "feature rows {} != graph nodes {}",
                features.rows(),
                graph.num_nodes()
            )));
        }
        if cfg.num_shards == 0 || cfg.num_shards > graph.num_nodes() {
            return Err(ServeError::BadModel(format!(
                "cannot split {} nodes into {} shards",
                graph.num_nodes(),
                cfg.num_shards
            )));
        }
        let mcfg = &snapshot.config;
        // Only the normalized operand is needed globally — the transpose
        // and Edge-Group partition are built per shard on the (smaller)
        // sub-adjacencies, so the global graph is never duplicated.
        let adj = GraphContext::normalized_adjacency(graph, mcfg.arch);
        let sharding = Sharding::build(&adj, cfg.num_shards, mcfg.num_layers, cfg.strategy)
            .map_err(|e| ServeError::BadModel(e.to_string()))?;
        let (shards, owner) = sharding.into_parts();
        // All shards slice one normalized operand, so they share one
        // graph identity — a cache row computed by any shard is valid
        // for the whole router.
        let graph_version = GraphVersion::mint();
        let mut slots = Vec::with_capacity(shards.len());
        for shard in shards {
            let (owned, local, sub_adj) = shard.into_parts();
            let mut local_features = Matrix::zeros(local.len(), features.cols());
            for (l, &g) in local.ids().iter().enumerate() {
                local_features
                    .row_mut(l)
                    .copy_from_slice(features.row(g as usize));
            }
            // The sub-adjacency is already normalized (it is a row slice
            // of the global normalized operand), so the context is
            // assembled directly — GraphContext::build would re-normalize
            // against the shard's truncated degrees and break bitwise
            // fidelity.
            let local_ctx = GraphContext {
                adj_t: sub_adj.transpose(),
                part: WarpPartition::build(&sub_adj, mcfg.eg_width),
                adj: sub_adj,
                version: graph_version,
            };
            let engine = InferenceEngine::with_context(snapshot, local_ctx, local_features)?;
            slots.push(ShardSlot {
                owned,
                local,
                engine,
            });
        }
        let num_nodes = graph.num_nodes();
        let out_dim = mcfg.out_dim;
        Ok(ShardedEngine {
            slots,
            owner,
            num_nodes,
            out_dim,
            generation: snapshot.generation,
            graph_version,
            cache: None,
        })
    }

    /// Replaces the full-vs-partial cost heuristic on every shard engine
    /// (builder style).
    #[must_use]
    pub fn with_plan_config(mut self, cfg: PlanConfig) -> Self {
        for slot in &mut self.slots {
            slot.engine.set_plan_config(cfg);
        }
        self
    }

    /// Attaches a router-level logit cache (builder style): every
    /// [`BatchEngine::forward_union`] probes it before scattering —
    /// resident seeds never reach a shard — and fills the computed rows
    /// after the gather.
    ///
    /// This is for driving the router directly (e.g. embedded in another
    /// service). When the router sits behind a [`crate::Server`] with a
    /// server-level cache, do **not** also attach one here: the server
    /// already probes and coalesces ahead of the batcher, so a second
    /// layer only double-copies rows and double-counts hit/miss books.
    #[must_use]
    pub fn with_logit_cache(mut self, cache: Arc<LogitCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// Nodes served across all shards.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Output (logit) dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn owner_of(&self, node: u32) -> usize {
        self.owner[node as usize] as usize
    }

    /// Memory-footprint read-out of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s >= num_shards()`.
    pub fn shard_info(&self, s: usize) -> ShardInfo {
        let slot = &self.slots[s];
        ShardInfo {
            owned_nodes: slot.owned.len(),
            local_nodes: slot.local.len(),
            ghost_nodes: slot.local.len() - slot.owned.len(),
            resident_edges: slot.engine.context().adj.num_edges(),
            feature_rows: slot.local.len(),
        }
    }

    /// Logit rows for `seeds` in request order (duplicates allowed),
    /// scattered to owner shards and gathered back — bitwise equal to the
    /// unsharded engine's rows.
    ///
    /// # Errors
    ///
    /// [`ServeError::SeedOutOfRange`] / [`ServeError::EmptyQuery`] on bad
    /// seed sets.
    pub fn logits_for(&self, seeds: &[u32]) -> Result<Matrix, ServeError> {
        check_seeds(seeds, self.num_nodes)?;
        let mut union = seeds.to_vec();
        union.sort_unstable();
        union.dedup();
        Ok(self.forward_union(&union).logits.gather(seeds))
    }

    /// The scatter/gather core over owner shards, ignoring the cache.
    /// When `obs` carries the telemetry hub and batch id, each
    /// participating shard records its plan/forward/kernel times (and a
    /// `shard_forward` span) from its own thread — [`Telemetry`] is
    /// `Sync`, so the fan-out needs no extra coordination.
    fn scatter_gather(&self, union: &[u32], obs: Option<(&Telemetry, u64)>) -> BatchOutcome {
        let set = NodeSet::from_unsorted(union, self.num_nodes)
            .expect("server validates seeds before batching");
        // Scatter: per shard, the local seed ids plus each seed's row
        // position in the union-compact output.
        let mut local_seeds: Vec<Vec<u32>> = vec![Vec::new(); self.slots.len()];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (pos, &g) in set.ids().iter().enumerate() {
            let s = self.owner[g as usize] as usize;
            let l = self.slots[s]
                .local
                .compact(g)
                .expect("owner shard holds its owned nodes");
            local_seeds[s].push(l as u32);
            positions[s].push(pos);
        }
        // Fan out: one thread per participating shard — except for the
        // common single-shard batch (skewed traffic concentrates on hub
        // owners), which runs inline to skip the spawn. Each shard runs
        // its own full-vs-partial plan over its slice of the union and
        // gathers its seed rows compactly.
        let run_shard = |s: usize| {
            let seeds = &local_seeds[s];
            let engine = &self.slots[s].engine;
            let plan_start = Instant::now();
            let plan = engine.plan_for(seeds).unwrap_or(ForwardPlan::Full);
            let plan_dur = plan_start.elapsed();
            let partial = plan.is_partial();
            let Some((tel, batch_id)) = obs else {
                return (engine.forward_planned(&plan).gather(seeds), partial);
            };
            tel.record_plan(plan_dur);
            let path = if partial { "partial" } else { "full" };
            let fwd_start = Instant::now();
            let out = if tel.config().kernel_timing {
                let mut timer = ForwardTimer::new();
                let out = engine.forward_planned_timed(&plan, Some(&mut timer));
                tel.record_kernel_laps(path, timer.laps());
                out
            } else {
                engine.forward_planned(&plan)
            };
            let fwd_dur = fwd_start.elapsed();
            tel.record_forward(path, fwd_dur);
            tel.record_shard_forward(s, fwd_dur, partial);
            if tel.spans_enabled() {
                tel.push_span("shard_forward", batch_id, fwd_start, fwd_dur, s as u64);
            }
            (out.gather(seeds), partial)
        };
        let participating = local_seeds.iter().filter(|s| !s.is_empty()).count();
        let mut results: Vec<Option<(Matrix, bool)>> = vec![None; self.slots.len()];
        if participating == 1 {
            let s = local_seeds
                .iter()
                .position(|s| !s.is_empty())
                .expect("non-empty union owns a shard");
            results[s] = Some(run_shard(s));
        } else {
            StdThreadExecutor.scope(|scope| {
                for (s, out) in results.iter_mut().enumerate() {
                    if local_seeds[s].is_empty() {
                        continue;
                    }
                    let run_shard = &run_shard;
                    scope.spawn(move || *out = Some(run_shard(s)));
                }
            });
        }
        // Gather: copy each shard's rows into union-compact order.
        let mut logits = Matrix::zeros(set.len(), self.out_dim);
        let mut shards = Vec::new();
        for (s, result) in results.into_iter().enumerate() {
            let Some((rows, partial)) = result else {
                continue;
            };
            for (r, &pos) in positions[s].iter().enumerate() {
                logits.row_mut(pos).copy_from_slice(rows.row(r));
            }
            shards.push((s, partial));
        }
        BatchOutcome {
            logits: BatchLogits::compact(logits, set),
            shards,
        }
    }
}

impl BatchEngine for ShardedEngine {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn num_shards(&self) -> usize {
        self.slots.len()
    }

    fn generation(&self) -> SnapshotGeneration {
        self.generation
    }

    fn graph_version(&self) -> GraphVersion {
        self.graph_version
    }

    fn forward_union(&self, union: &[u32]) -> BatchOutcome {
        self.forward_union_impl(union, None)
    }

    fn forward_union_observed(
        &self,
        union: &[u32],
        obs: Option<(&Telemetry, u64)>,
    ) -> BatchOutcome {
        self.forward_union_impl(union, obs)
    }
}

impl ShardedEngine {
    /// Shared body of the two [`BatchEngine`] forward entry points:
    /// probe the router cache (when attached), scatter the misses,
    /// fill and merge.
    fn forward_union_impl(&self, union: &[u32], obs: Option<(&Telemetry, u64)>) -> BatchOutcome {
        let Some(cache) = &self.cache else {
            return self.scatter_gather(union, obs);
        };
        // Probe before scatter: resident seeds never reach a shard.
        let mut missing: Vec<u32> = Vec::new();
        let mut hit_rows: Vec<(usize, Arc<[f32]>)> = Vec::new();
        for (pos, &g) in union.iter().enumerate() {
            match cache.probe(self.generation, self.graph_version, g) {
                Some(row) => hit_rows.push((pos, row)),
                None => missing.push(g),
            }
        }
        cache.record_misses(missing.len() as u64);
        if missing.is_empty() {
            // Fully hot: assemble from cache, no shard participates.
            let set = NodeSet::from_unsorted(union, self.num_nodes)
                .expect("server validates seeds before batching");
            let mut logits = Matrix::zeros(union.len(), self.out_dim);
            for (pos, row) in hit_rows {
                logits.row_mut(pos).copy_from_slice(&row);
            }
            return BatchOutcome {
                logits: BatchLogits::compact(logits, set),
                shards: Vec::new(),
            };
        }
        // Register uncounted leadership *before* the scatter so a
        // mutation's invalidation racing the shard forwards poisons the
        // slots and the fill below skips the stale rows (the misses are
        // already counted above — leadership here moves no books).
        let lead = cache.lead_uncounted(self.generation, self.graph_version, &missing);
        let computed = self.scatter_gather(&missing, obs);
        // Fill after gather: `missing` preserves the union's sorted order,
        // matching the compact row order of the gathered logits.
        let lead_seeds = lead.seeds();
        if lead_seeds.len() == missing.len() {
            lead.fill(computed.logits.logits());
        } else if !lead_seeds.is_empty() {
            // Some misses are led by another in-flight batch; publish
            // only the rows this scatter leads.
            let rows = computed.logits.logits();
            let mut sub = Matrix::zeros(lead_seeds.len(), self.out_dim);
            for (j, s) in lead_seeds.iter().enumerate() {
                let i = missing.binary_search(s).expect("lead seed is a miss");
                sub.row_mut(j).copy_from_slice(rows.row(i));
            }
            lead.fill(&sub);
        }
        if hit_rows.is_empty() {
            return computed;
        }
        // Merge cached and computed rows back into union-compact order.
        let set = NodeSet::from_unsorted(union, self.num_nodes)
            .expect("server validates seeds before batching");
        let mut logits = Matrix::zeros(union.len(), self.out_dim);
        for (pos, row) in hit_rows {
            logits.row_mut(pos).copy_from_slice(&row);
        }
        for (r, &seed) in missing.iter().enumerate() {
            let pos = set.compact(seed).expect("missing seed is in the union");
            logits
                .row_mut(pos)
                .copy_from_slice(computed.logits.logits().row(r));
        }
        BatchOutcome {
            logits: BatchLogits::compact(logits, set),
            shards: computed.shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxk_graph::generate;
    use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(arch: Arch, act: Activation) -> (Csr, Matrix, ModelSnapshot) {
        let graph = generate::chung_lu_power_law(80, 5.0, 2.3, 11)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(arch, act, 6, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(21);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(80, 6, &mut rng);
        (graph, x, ModelSnapshot::capture(&model))
    }

    #[test]
    fn sharded_logits_bitwise_match_single_engine_all_combos() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Activation::Relu, Activation::MaxK(4)] {
                let (graph, x, snap) = setup(arch, act);
                let single = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
                for shards in [2usize, 4] {
                    for strategy in [ShardStrategy::Contiguous, ShardStrategy::DegreeBalanced] {
                        let sharded = ShardedEngine::from_snapshot(
                            &snap,
                            &graph,
                            &x,
                            ShardConfig {
                                num_shards: shards,
                                strategy,
                            },
                        )
                        .unwrap();
                        let seeds = [79u32, 0, 40, 13, 0];
                        assert_eq!(
                            sharded.logits_for(&seeds).unwrap(),
                            single.logits_full(&seeds).unwrap(),
                            "{arch:?} {act:?} S={shards} {strategy:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forward_union_reports_participating_shards_only() {
        let (graph, x, snap) = setup(Arch::Sage, Activation::MaxK(4));
        let sharded = ShardedEngine::from_snapshot(
            &snap,
            &graph,
            &x,
            ShardConfig {
                num_shards: 4,
                strategy: ShardStrategy::Contiguous,
            },
        )
        .unwrap();
        // All seeds owned by shard 0 (contiguous: low ids).
        let out = sharded.forward_union(&[0, 1, 2]);
        assert_eq!(out.shards.len(), 1);
        assert_eq!(out.shards[0].0, 0);
        assert_eq!(sharded.owner_of(0), 0);
        // A spread-out union touches several shards.
        let out = sharded.forward_union(&[0, 30, 79]);
        assert!(out.shards.len() > 1);
    }

    #[test]
    fn shard_info_accounts_memory() {
        let (graph, x, snap) = setup(Arch::Gcn, Activation::Relu);
        let sharded = ShardedEngine::from_snapshot(
            &snap,
            &graph,
            &x,
            ShardConfig {
                num_shards: 2,
                strategy: ShardStrategy::DegreeBalanced,
            },
        )
        .unwrap();
        let total_owned: usize = (0..2).map(|s| sharded.shard_info(s).owned_nodes).sum();
        assert_eq!(total_owned, 80);
        for s in 0..2 {
            let info = sharded.shard_info(s);
            assert_eq!(info.local_nodes, info.owned_nodes + info.ghost_nodes);
            assert_eq!(info.feature_rows, info.local_nodes);
            assert!(info.resident_edges <= graph.num_edges() + 80); // + GCN self-loops
        }
    }

    #[test]
    fn bad_shard_counts_rejected() {
        let (graph, x, snap) = setup(Arch::Gcn, Activation::Relu);
        for bad in [0usize, 81] {
            assert!(matches!(
                ShardedEngine::from_snapshot(
                    &snap,
                    &graph,
                    &x,
                    ShardConfig {
                        num_shards: bad,
                        strategy: ShardStrategy::Contiguous,
                    },
                ),
                Err(ServeError::BadModel(_))
            ));
        }
    }

    #[test]
    fn seed_validation() {
        let (graph, x, snap) = setup(Arch::Gcn, Activation::Relu);
        let sharded =
            ShardedEngine::from_snapshot(&snap, &graph, &x, ShardConfig::default()).unwrap();
        assert!(matches!(
            sharded.logits_for(&[]),
            Err(ServeError::EmptyQuery)
        ));
        assert!(matches!(
            sharded.logits_for(&[80]),
            Err(ServeError::SeedOutOfRange { seed: 80, .. })
        ));
    }

    #[test]
    fn plan_config_propagates_to_every_shard() {
        let (graph, x, snap) = setup(Arch::Sage, Activation::MaxK(4));
        let single = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
        // Force-partial and force-full shard planners must both stay
        // bitwise exact.
        for cfg in [
            PlanConfig {
                seed_frac_cutoff: 1.0,
                work_ratio: f64::INFINITY,
            },
            PlanConfig {
                seed_frac_cutoff: 0.0,
                work_ratio: 0.0,
            },
        ] {
            let sharded = ShardedEngine::from_snapshot(&snap, &graph, &x, ShardConfig::default())
                .unwrap()
                .with_plan_config(cfg);
            let seeds = [5u32, 60, 5, 33];
            assert_eq!(
                sharded.logits_for(&seeds).unwrap(),
                single.logits_full(&seeds).unwrap()
            );
            let mut union: Vec<u32> = seeds.to_vec();
            union.sort_unstable();
            union.dedup();
            let out = sharded.forward_union(&union);
            assert_eq!(out.any_partial(), cfg.work_ratio.is_infinite());
        }
    }
}
