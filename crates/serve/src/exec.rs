//! The concurrency substrate for every serving layer.
//!
//! Before this module existed, `server`, `admission`, `router`,
//! `mutation` and `loadgen` each hard-wired `std::thread` and
//! `std::sync::mpsc` into their own spawn/join/channel plumbing — the
//! coupling that blocked swapping the thread-per-worker model for an
//! async reactor. Everything that creates a thread or a channel on the
//! serving path now goes through the [`Executor`] trait defined here:
//!
//! * **named workers** — [`Executor::spawn_worker`] returns a
//!   [`Worker`] handle that joins by value and carries the thread's
//!   name for diagnostics;
//! * **scoped join** — [`Executor::scope`] mirrors
//!   [`std::thread::scope`]: borrowing fan-out (the router's per-shard
//!   scatter, the load generators' per-client drivers) that joins all
//!   tasks before returning;
//! * **bounded SPSC/MPSC channels** — [`Executor::bounded`] /
//!   [`Executor::unbounded`] construct [`Sender`]/[`Receiver`] pairs,
//!   so the load-bearing bound on the server's batch hand-off (depth 1:
//!   the batcher may stage at most one batch ahead of the workers) is
//!   expressed through the same seam;
//! * **shutdown barrier** — [`ShutdownBarrier`] joins whole pipeline
//!   stages *in registration order*. The server registers the batcher
//!   stage before the worker stage: joining the batcher first drops the
//!   batch sender, which disconnects the workers' receiver, which lets
//!   every worker drain and exit. The ordering is the deadlock-freedom
//!   argument, and it lives in one place instead of being implicit in
//!   field order.
//!
//! [`StdThreadExecutor`] is the default (and currently only)
//! implementation: plain OS threads and `std::sync::mpsc` channels,
//! preserving the exact semantics the serving layers had before the
//! refactor — bitwise-identical answers, same blocking behavior, same
//! shutdown order. The trait is the single seam for a future
//! tokio/io_uring backend: implement `Executor` for a reactor-backed
//! type and the five layers come along without touching engine or
//! metrics code. (The trait uses generic methods, so backends are
//! selected at compile time — the layers are monomorphic over the
//! executor rather than dynamically dispatched, which keeps the
//! hand-off paths free of virtual calls.)

use std::fmt;
use std::sync::mpsc;
use std::thread;

/// Spawns workers, builds channels, and scopes fan-out for the serving
/// layers.
///
/// All thread and channel construction in `maxk_serve` routes through
/// this trait; see the [module docs](self) for the seams it
/// centralizes. Implementations must uphold:
///
/// * `spawn_worker` runs the closure to completion on some execution
///   resource; [`Worker::join`] blocks until it finishes and returns
///   its result (or the payload of its panic).
/// * `scope` joins every task spawned on the [`TaskScope`] before
///   returning, so borrowed data outlives all tasks.
/// * `bounded(cap)` channels block senders once `cap` messages are
///   queued; both channel flavors report disconnection to whichever
///   side outlives the other.
pub trait Executor {
    /// Spawns a named worker running `f`, returning its join handle.
    ///
    /// The name shows up in thread dumps and panic messages
    /// (best-effort: if the platform rejects the name the worker is
    /// still spawned).
    fn spawn_worker<T, F>(&self, name: &str, f: F) -> Worker<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static;

    /// Runs `f` with a [`TaskScope`] on which borrowing tasks can be
    /// spawned; all of them are joined before `scope` returns.
    ///
    /// If any scoped task panics, the panic is propagated after the
    /// remaining tasks finish (matching [`std::thread::scope`]).
    fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&TaskScope<'scope, 'env>) -> R;

    /// Builds an unbounded MPSC channel.
    fn unbounded<T>(&self) -> (Sender<T>, Receiver<T>);

    /// Builds a bounded MPSC channel: `send` blocks once `capacity`
    /// messages are in flight.
    ///
    /// Capacity 0 is a rendezvous channel (every send waits for a
    /// matching receive).
    fn bounded<T>(&self, capacity: usize) -> (Sender<T>, Receiver<T>);
}

/// The default [`Executor`]: one OS thread per worker, `std::sync::mpsc`
/// channels, [`std::thread::scope`] for scoped fan-out.
///
/// A zero-sized token — construct it in place
/// (`StdThreadExecutor.spawn_worker(..)`) wherever a layer needs
/// concurrency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdThreadExecutor;

impl Executor for StdThreadExecutor {
    fn spawn_worker<T, F>(&self, name: &str, f: F) -> Worker<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let handle = thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .expect("failed to spawn worker thread");
        Worker {
            name: name.to_string(),
            handle,
        }
    }

    fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&TaskScope<'scope, 'env>) -> R,
    {
        thread::scope(|scope| f(&TaskScope { scope }))
    }

    fn unbounded<T>(&self) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
    }

    fn bounded<T>(&self, capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(SenderInner::Bounded(tx)), Receiver(rx))
    }
}

/// Join handle for a worker spawned through an [`Executor`].
///
/// Unlike a raw [`std::thread::JoinHandle`] it remembers the worker's
/// name, so shutdown paths can report *which* stage misbehaved.
#[derive(Debug)]
pub struct Worker<T = ()> {
    name: String,
    handle: thread::JoinHandle<T>,
}

impl<T> Worker<T> {
    /// The name the worker was spawned with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the worker finishes; `Err` carries the panic
    /// payload if it panicked.
    pub fn join(self) -> thread::Result<T> {
        self.handle.join()
    }
}

/// Scope handle passed to the closure of [`Executor::scope`].
///
/// Tasks spawned here may borrow from the enclosing environment
/// (`'env`); the executor joins all of them before `scope` returns.
#[derive(Debug)]
pub struct TaskScope<'scope, 'env: 'scope> {
    scope: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> TaskScope<'scope, 'env> {
    /// Spawns a borrowing task on this scope.
    ///
    /// The returned [`ScopedTask`] can be joined early for its result;
    /// dropping it simply leaves the task to be joined when the scope
    /// closes.
    pub fn spawn<F, T>(&self, f: F) -> ScopedTask<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedTask {
            handle: self.scope.spawn(f),
        }
    }
}

/// Handle to a task spawned on a [`TaskScope`].
#[derive(Debug)]
pub struct ScopedTask<'scope, T> {
    handle: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedTask<'_, T> {
    /// Blocks until the task finishes; `Err` carries the panic payload
    /// if it panicked.
    pub fn join(self) -> thread::Result<T> {
        self.handle.join()
    }
}

/// Sending half of an executor-built channel.
///
/// Clonable (MPSC); `send` on a [bounded](Executor::bounded) channel
/// blocks while the channel is full.
#[derive(Debug)]
pub struct Sender<T>(SenderInner<T>);

#[derive(Debug)]
enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(match &self.0 {
            SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
        })
    }
}

impl<T> Sender<T> {
    /// Delivers `value`, blocking on a bounded channel while it is
    /// full.
    ///
    /// Fails (returning the value) only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderInner::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            SenderInner::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

/// Receiving half of an executor-built channel.
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks for the next message; `Err` means every sender was
    /// dropped and the channel is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }
}

/// The receiver was dropped; the undelivered value is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

/// Every sender was dropped and the channel is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on a closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Joins pipeline stages in registration order at shutdown.
///
/// A stage is a named group of [`Worker`]s plus (implicitly) the
/// channel senders its closures own. Joining stages strictly in the
/// order they were registered is what makes shutdown deadlock-free for
/// a linear pipeline: when stage *i* exits, it drops its senders into
/// stage *i + 1*, whose receivers disconnect, so stage *i + 1* drains
/// whatever is in flight and exits in turn — no message is abandoned
/// and no join waits on a worker that is itself waiting on an earlier
/// stage.
///
/// The `Server` registers `batcher` then `workers`: closing the
/// admission queue stops the batcher, joining it drops the bounded
/// batch sender, and the worker pool drains the final staged batch
/// before its `recv` disconnects. This replaces the earlier ad-hoc
/// "join batcher before workers, and don't forget why" field-order
/// convention (the PR-2 handle-clone deadlock workaround) with an
/// explicit structure.
///
/// Panicking workers are tolerated: `join_all` swallows the panic
/// payload (the stage is being torn down regardless) and keeps joining
/// so shutdown always completes.
#[derive(Debug, Default)]
pub struct ShutdownBarrier {
    stages: Vec<(String, Vec<Worker>)>,
}

impl ShutdownBarrier {
    /// An empty barrier with no stages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named stage; stages are joined in registration
    /// order.
    pub fn add_stage(&mut self, name: &str, workers: Vec<Worker>) {
        self.stages.push((name.to_string(), workers));
    }

    /// Number of workers across all registered stages.
    pub fn workers(&self) -> usize {
        self.stages.iter().map(|(_, w)| w.len()).sum()
    }

    /// Joins every stage in registration order; idempotent (a second
    /// call is a no-op).
    pub fn join_all(&mut self) {
        for (_, workers) in self.stages.drain(..) {
            for worker in workers {
                // A panicked worker is still torn down; shutdown must
                // complete regardless.
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ShutdownBarrier {
    fn drop(&mut self) {
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn spawn_worker_returns_value_and_name() {
        let w = StdThreadExecutor.spawn_worker("test-worker", || 41 + 1);
        assert_eq!(w.name(), "test-worker");
        assert_eq!(w.join().unwrap(), 42);
    }

    #[test]
    fn worker_panic_is_reported_not_swallowed() {
        let w = StdThreadExecutor.spawn_worker("test-panic", || panic!("boom"));
        assert!(w.join().is_err());
    }

    #[test]
    fn scope_joins_borrowing_tasks() {
        let data = [1u64, 2, 3, 4];
        let total = StdThreadExecutor.scope(|s| {
            let tasks: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                .collect();
            tasks.into_iter().map(|t| t.join().unwrap()).sum::<u64>()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn bounded_channel_blocks_at_capacity() {
        let (tx, rx) = StdThreadExecutor.bounded::<u32>(1);
        tx.send(1).unwrap();
        let started = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let w = {
            let (started, done) = (started.clone(), done.clone());
            StdThreadExecutor.spawn_worker("test-sender", move || {
                started.store(1, Ordering::SeqCst);
                tx.send(2).unwrap(); // blocks: capacity 1, one queued
                done.store(1, Ordering::SeqCst);
            })
        };
        while started.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "send should be blocked");
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        w.join().unwrap();
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn unbounded_channel_reports_disconnect_both_ways() {
        let (tx, rx) = StdThreadExecutor.unbounded::<u32>();
        tx.send(7).unwrap();
        drop(rx);
        assert_eq!(tx.send(8), Err(SendError(8)));
        let (tx2, rx2) = StdThreadExecutor.unbounded::<u32>();
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn barrier_joins_stages_in_registration_order() {
        // Linear pipeline: producer stage owns the sender into the
        // consumer stage. Joining in registration order must drain the
        // consumer without deadlock.
        let (tx, rx) = StdThreadExecutor.bounded::<u32>(1);
        let consumed = Arc::new(AtomicUsize::new(0));
        let producer = StdThreadExecutor.spawn_worker("test-producer", move || {
            for i in 0..8 {
                tx.send(i).unwrap();
            }
            // tx drops here: the consumer's recv disconnects.
        });
        let consumer = {
            let consumed = consumed.clone();
            StdThreadExecutor.spawn_worker("test-consumer", move || {
                while rx.recv().is_ok() {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        let mut barrier = ShutdownBarrier::new();
        barrier.add_stage("producer", vec![producer]);
        barrier.add_stage("consumer", vec![consumer]);
        assert_eq!(barrier.workers(), 2);
        barrier.join_all();
        assert_eq!(consumed.load(Ordering::SeqCst), 8, "no message abandoned");
        barrier.join_all(); // idempotent
    }

    #[test]
    fn barrier_tolerates_panicked_worker() {
        let mut barrier = ShutdownBarrier::new();
        barrier.add_stage(
            "panicky",
            vec![StdThreadExecutor.spawn_worker("test-boom", || panic!("boom"))],
        );
        barrier.join_all(); // must not propagate
    }
}
