//! Inference-only forward engine.
//!
//! [`InferenceEngine`] is the serving-side counterpart of
//! [`maxk_nn::GnnModel`]: it holds immutable layer weights extracted from
//! a [`ModelSnapshot`] plus the node features and the pre-normalized graph
//! context, and runs the eval-mode forward path with none of the training
//! baggage — no dropout, no phase timers, no gradient caches, no `&mut`.
//! That makes a single engine shareable across server worker threads
//! behind an `Arc`.
//!
//! The per-graph normalization (adjacency normalization + Edge-Group
//! partition) is the expensive part of engine construction; it is computed
//! once and cached in the engine, and [`InferenceEngine::context`] /
//! [`InferenceEngine::with_context`] let several engines (e.g. different
//! snapshot generations of the same model) share one copy.

use crate::telemetry::Telemetry;
use crate::ServeError;
use maxk_core::maxk::{maxk_backward, maxk_forward};
use maxk_core::spgemm::spgemm_forward;
use maxk_core::spmm::spmm_rowwise;
use maxk_graph::{Csr, Frontier, NodeSet};
use maxk_nn::plan::{
    partial_forward_timed, timed_lap, ForwardPlan, ForwardTimer, KernelKind, LayerCost, PlanConfig,
    PlanLayer,
};
use maxk_nn::snapshot::ModelSnapshot;
use maxk_nn::{Activation, Arch, GraphContext, GraphVersion, SnapshotGeneration};
use maxk_tensor::{ops, Matrix};
use std::time::Instant;

/// One inference layer: immutable weights plus the layer activation.
#[derive(Debug, Clone)]
struct InferLayer {
    activation: Option<Activation>,
    eps: f32,
    neigh_weight: Matrix,
    neigh_bias: Vec<f32>,
    self_path: Option<(Matrix, Vec<f32>)>,
}

impl InferLayer {
    /// Eval-mode forward, mirroring `Conv::forward` with `train = false`
    /// (same kernels in the same order, so logits are bit-identical to the
    /// training model's eval pass). When `timer` is set, each kernel call
    /// is timed as a [`KernelKind`] lap against the carried layer index.
    fn forward(
        &self,
        ctx: &GraphContext,
        arch: Arch,
        x: &Matrix,
        mut timer: Option<(&mut ForwardTimer, usize)>,
    ) -> Matrix {
        let z = timed_lap(&mut timer, KernelKind::DenseLinear, || {
            let mut z = ops::matmul(x, &self.neigh_weight);
            ops::add_bias(&mut z, &self.neigh_bias);
            z
        });

        let mut pattern = None;
        let mut y = match self.activation {
            Some(Activation::MaxK(k)) => {
                let hs = timed_lap(&mut timer, KernelKind::MaxK, || {
                    maxk_forward(&z, k).expect("k validated at engine construction")
                });
                let y = timed_lap(&mut timer, KernelKind::SSpMM, || {
                    spgemm_forward(&ctx.adj, &hs, &ctx.part)
                });
                pattern = Some(hs);
                y
            }
            Some(Activation::Relu) => timed_lap(&mut timer, KernelKind::SpMM, || {
                spmm_rowwise(&ctx.adj, &ops::relu(&z))
            }),
            None => timed_lap(&mut timer, KernelKind::SpMM, || spmm_rowwise(&ctx.adj, &z)),
        };

        match arch {
            Arch::Sage => {
                let (w, b) = self.self_path.as_ref().expect("SAGE has a self linear");
                timed_lap(&mut timer, KernelKind::DenseLinear, || {
                    let mut self_y = ops::matmul(x, w);
                    ops::add_bias(&mut self_y, b);
                    ops::add_assign(&mut y, &self_y);
                });
            }
            Arch::Gin => {
                let scale = 1.0 + self.eps;
                match (&self.activation, &pattern) {
                    (Some(Activation::MaxK(_)), Some(hs)) => {
                        timed_lap(&mut timer, KernelKind::MaxK, || {
                            let mut d = maxk_backward(hs);
                            ops::scale_assign(&mut d, scale);
                            ops::add_assign(&mut y, &d);
                        });
                    }
                    (Some(Activation::Relu), _) => {
                        timed_lap(&mut timer, KernelKind::DenseLinear, || {
                            let mut h = ops::relu(&z);
                            ops::scale_assign(&mut h, scale);
                            ops::add_assign(&mut y, &h);
                        });
                    }
                    _ => {
                        timed_lap(&mut timer, KernelKind::DenseLinear, || {
                            let mut zz = z.clone();
                            ops::scale_assign(&mut zz, scale);
                            ops::add_assign(&mut y, &zz);
                        });
                    }
                }
            }
            Arch::Gcn => {}
        }
        y
    }
}

/// Logits produced for one batch, either full-graph or seed-restricted.
///
/// Abstracts over where a seed's row lives: at index `seed` in a
/// full-graph matrix, or at the seed's compact frontier position in a
/// partial one. Produced by [`InferenceEngine::forward_planned`].
#[derive(Debug, Clone)]
pub struct BatchLogits {
    logits: Matrix,
    /// `None` = full-graph logits (row index == node id).
    seeds: Option<NodeSet>,
}

impl BatchLogits {
    /// Wraps compact logits covering exactly `seeds` (row `r` belongs to
    /// `seeds.ids()[r]`) — the sharded router's gather result.
    pub(crate) fn compact(logits: Matrix, seeds: NodeSet) -> Self {
        debug_assert_eq!(logits.rows(), seeds.len());
        BatchLogits {
            logits,
            seeds: Some(seeds),
        }
    }

    /// True when the logit rows are **compact** over a covered seed set
    /// (row index = the seed's rank in the set) rather than full-graph
    /// (row index = node id). A single engine produces compact logits
    /// exactly when it ran the seed-restricted partial path; the sharded
    /// router's gathered logits are always compact, whichever path each
    /// shard took — consult [`BatchOutcome::any_partial`] for that.
    pub fn is_compact(&self) -> bool {
        self.seeds.is_some()
    }

    /// The raw logit matrix (full-graph, or compact over the plan seeds).
    pub fn logits(&self) -> &Matrix {
        &self.logits
    }

    /// Copies the logit rows for `seeds` in request order.
    ///
    /// # Panics
    ///
    /// Panics when a seed was not part of the plan this batch ran under
    /// (partial plans only cover their seed union).
    pub fn gather(&self, seeds: &[u32]) -> Matrix {
        match &self.seeds {
            None => gather_rows(&self.logits, seeds),
            Some(set) => {
                let mut out = Matrix::zeros(seeds.len(), self.logits.cols());
                for (i, &s) in seeds.iter().enumerate() {
                    let c = set.compact(s).expect("seed covered by the batch plan");
                    out.row_mut(i).copy_from_slice(self.logits.row(c));
                }
                out
            }
        }
    }
}

/// A read-only, thread-shareable inference model over one graph.
///
/// # Examples
///
/// ```
/// use maxk_serve::InferenceEngine;
/// use maxk_nn::snapshot::ModelSnapshot;
/// use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
/// use maxk_graph::generate;
/// use maxk_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let graph = generate::chung_lu_power_law(50, 5.0, 2.3, 1).to_csr().unwrap();
/// let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 8, 3);
/// cfg.hidden_dim = 16;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = GnnModel::new(cfg, &graph, &mut rng);
/// let features = Matrix::xavier(50, 8, &mut rng);
///
/// let snapshot = ModelSnapshot::capture(&model);
/// let engine = InferenceEngine::from_snapshot(&snapshot, &graph, features).unwrap();
/// // Heuristic full/partial choice; always exact for the requested seeds.
/// let logits = engine.logits_for(&[0, 7, 13]).unwrap();
/// assert_eq!(logits.shape(), (3, 3));
/// ```
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    layers: Vec<InferLayer>,
    /// Per-layer cost shapes, precomputed once — `plan_for` runs per
    /// batch on the serving hot path.
    layer_costs: Vec<LayerCost>,
    ctx: GraphContext,
    arch: Arch,
    features: Matrix,
    out_dim: usize,
    plan_cfg: PlanConfig,
    /// The weight set this engine serves (copied from the snapshot at
    /// construction); cache keys and [`crate::QueryAnswer`] carry it.
    generation: SnapshotGeneration,
}

impl InferenceEngine {
    /// Builds an engine from a snapshot, normalizing `graph` per the
    /// snapshot's architecture (the expensive per-graph step, done once).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadModel`] when the snapshot is internally
    /// inconsistent or `features` does not match the graph/model shape.
    pub fn from_snapshot(
        snapshot: &ModelSnapshot,
        graph: &Csr,
        features: Matrix,
    ) -> Result<Self, ServeError> {
        if features.rows() != graph.num_nodes() {
            return Err(ServeError::BadModel(format!(
                "feature rows {} != graph nodes {}",
                features.rows(),
                graph.num_nodes()
            )));
        }
        let cfg = &snapshot.config;
        let ctx = GraphContext::build(graph, cfg.arch, cfg.eg_width);
        Self::with_context(snapshot, ctx, features)
    }

    /// Builds an engine reusing an already-built [`GraphContext`] — the
    /// per-graph normalization cache path: hot-swapping a new snapshot
    /// generation onto the same graph skips renormalization entirely.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadModel`] on shape or consistency mismatches.
    pub fn with_context(
        snapshot: &ModelSnapshot,
        ctx: GraphContext,
        features: Matrix,
    ) -> Result<Self, ServeError> {
        let cfg = &snapshot.config;
        // Same gate the snapshot restore path uses: layer count (>= 2),
        // MaxK k bounds, self-path presence and every per-layer weight
        // shape. A hand-built snapshot that never went through
        // `from_bytes` must fail here rather than panic in a worker
        // thread (or silently serve wrong-shaped logits).
        snapshot
            .check_consistency()
            .map_err(|e| ServeError::BadModel(e.to_string()))?;
        if features.cols() != cfg.in_dim {
            return Err(ServeError::BadModel(format!(
                "feature dim {} != model in_dim {}",
                features.cols(),
                cfg.in_dim
            )));
        }
        if features.rows() != ctx.adj.num_nodes() {
            return Err(ServeError::BadModel(format!(
                "feature rows {} != context nodes {}",
                features.rows(),
                ctx.adj.num_nodes()
            )));
        }
        let mut layers = Vec::with_capacity(snapshot.layers.len());
        for (i, layer) in snapshot.layers.iter().enumerate() {
            let activation = if i + 1 == cfg.num_layers {
                None
            } else {
                Some(cfg.activation)
            };
            layers.push(InferLayer {
                activation,
                eps: layer.eps,
                neigh_weight: layer.neigh_weight.clone(),
                neigh_bias: layer.neigh_bias.clone(),
                self_path: layer.self_path.clone(),
            });
        }
        let layer_costs = layers
            .iter()
            .map(|l| {
                LayerCost::new(
                    l.neigh_weight.rows(),
                    l.neigh_weight.cols(),
                    l.activation,
                    l.self_path.is_some(),
                )
            })
            .collect();
        Ok(InferenceEngine {
            layers,
            layer_costs,
            ctx,
            arch: cfg.arch,
            out_dim: cfg.out_dim,
            features,
            plan_cfg: PlanConfig::default(),
            generation: snapshot.generation,
        })
    }

    /// Replaces the full-vs-partial cost heuristic (builder style).
    #[must_use]
    pub fn with_plan_config(mut self, cfg: PlanConfig) -> Self {
        self.plan_cfg = cfg;
        self
    }

    /// Replaces the full-vs-partial cost heuristic in place (the sharded
    /// router updates every shard engine without cloning their graph and
    /// feature state).
    pub fn set_plan_config(&mut self, cfg: PlanConfig) {
        self.plan_cfg = cfg;
    }

    /// The cost heuristic used by [`InferenceEngine::plan_for`].
    pub fn plan_config(&self) -> &PlanConfig {
        &self.plan_cfg
    }

    /// Number of nodes served by this engine.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Output (logit) dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The cached per-graph normalization bundle (shareable across
    /// engines via [`InferenceEngine::with_context`]).
    pub fn context(&self) -> &GraphContext {
        &self.ctx
    }

    /// The weight set this engine serves, inherited from the snapshot it
    /// was built from.
    pub fn generation(&self) -> SnapshotGeneration {
        self.generation
    }

    /// The graph operand this engine serves, inherited from its
    /// [`GraphContext`]. Engines sharing a context (the
    /// [`InferenceEngine::with_context`] renormalization-cache path)
    /// share the version.
    pub fn graph_version(&self) -> GraphVersion {
        self.ctx.version
    }

    /// Full-graph eval forward: logits for every node.
    ///
    /// One call serves an entire micro-batch — every query in the batch
    /// gathers its seed rows from this one result, which is what makes
    /// request coalescing pay off.
    ///
    /// The engine itself never memoizes this result: each call answers
    /// against the *current* feature/weight state (the ROADMAP's
    /// hot-snapshot-reload and feature-staleness items mutate both).
    /// Reuse across batches is the job of the opt-in seed-level
    /// [`crate::LogitCache`], whose `(SnapshotGeneration, GraphVersion,
    /// seed)` keys make stale rows unreachable the moment either
    /// identity changes — `serve_bench`'s batched-vs-unbatched
    /// comparison still runs uncached, measuring how well coalescing
    /// amortizes a mandatory recomputation.
    #[must_use]
    pub fn forward_all(&self) -> Matrix {
        self.forward_all_timed(None)
    }

    /// [`InferenceEngine::forward_all`] with optional per-layer kernel
    /// timing: every kernel call lands as a `(layer, kernel, duration)`
    /// lap in `timer`.
    #[must_use]
    pub fn forward_all_timed(&self, mut timer: Option<&mut ForwardTimer>) -> Matrix {
        // check_consistency guarantees >= 2 layers, so the first-layer
        // borrow avoids cloning the full feature matrix per forward.
        let slot = timer.as_deref_mut().map(|t| (t, 0));
        let mut h = self.layers[0].forward(&self.ctx, self.arch, &self.features, slot);
        for (l, layer) in self.layers.iter().enumerate().skip(1) {
            let slot = timer.as_deref_mut().map(|t| (t, l));
            h = layer.forward(&self.ctx, self.arch, &h, slot);
        }
        h
    }

    /// Per-layer cost shapes feeding the full-vs-partial heuristic (see
    /// [`maxk_nn::plan::LayerCost`]); precomputed at construction.
    pub fn layer_costs(&self) -> &[LayerCost] {
        &self.layer_costs
    }

    /// Plans full vs. seed-restricted forward for a batch's seed union
    /// using the engine's [`PlanConfig`] cost heuristic (modelled
    /// dense-linear plus aggregation work of the frontier vs. the full
    /// forward).
    ///
    /// # Errors
    ///
    /// [`ServeError::SeedOutOfRange`] / [`ServeError::EmptyQuery`] on bad
    /// seed sets.
    pub fn plan_for(&self, seeds: &[u32]) -> Result<ForwardPlan, ServeError> {
        check_seeds(seeds, self.num_nodes())?;
        ForwardPlan::choose(&self.ctx.adj, seeds, &self.layer_costs, &self.plan_cfg)
            .map_err(|e| ServeError::BadModel(e.to_string()))
    }

    /// Executes a plan: one full forward, or a partial forward over the
    /// plan's frontier. Either way the returned [`BatchLogits`] gathers
    /// bitwise-identical rows for every seed the plan covers.
    #[must_use]
    pub fn forward_planned(&self, plan: &ForwardPlan) -> BatchLogits {
        self.forward_planned_timed(plan, None)
    }

    /// [`InferenceEngine::forward_planned`] with optional per-layer kernel
    /// timing (laps land in `timer` whichever path the plan takes).
    #[must_use]
    pub fn forward_planned_timed(
        &self,
        plan: &ForwardPlan,
        timer: Option<&mut ForwardTimer>,
    ) -> BatchLogits {
        match plan {
            ForwardPlan::Full => BatchLogits {
                logits: self.forward_all_timed(timer),
                seeds: None,
            },
            ForwardPlan::Partial(frontier) => BatchLogits {
                logits: self.forward_partial_timed(frontier, timer),
                seeds: Some(frontier.seeds().clone()),
            },
        }
    }

    /// Seed-restricted forward: computes logits only at
    /// `frontier.seeds()` (compact order), running every layer on the
    /// frontier's row subsets via the `maxk_core::subset` kernels.
    ///
    /// # Panics
    ///
    /// Panics when the frontier depth does not match the model.
    #[must_use]
    pub fn forward_partial(&self, frontier: &Frontier) -> Matrix {
        self.forward_partial_timed(frontier, None)
    }

    /// [`InferenceEngine::forward_partial`] with optional per-layer kernel
    /// timing over the subset kernels (SSpMM/SpMM-on-rows laps instead of
    /// the full-graph ones).
    #[must_use]
    pub fn forward_partial_timed(
        &self,
        frontier: &Frontier,
        timer: Option<&mut ForwardTimer>,
    ) -> Matrix {
        let layers: Vec<PlanLayer<'_>> = self
            .layers
            .iter()
            .map(|l| PlanLayer {
                activation: l.activation,
                eps: l.eps,
                neigh_weight: &l.neigh_weight,
                neigh_bias: &l.neigh_bias,
                self_path: l.self_path.as_ref().map(|(w, b)| (w, b.as_slice())),
            })
            .collect();
        partial_forward_timed(
            &self.ctx.adj,
            self.arch,
            &layers,
            frontier,
            &self.features,
            timer,
        )
    }

    /// Convenience single-query path: plans the forward with the cost
    /// heuristic (partial when the seed frontier is small, full-graph
    /// otherwise) and gathers the seed rows in request order.
    ///
    /// # Errors
    ///
    /// [`ServeError::SeedOutOfRange`] / [`ServeError::EmptyQuery`] on bad
    /// seed sets.
    pub fn logits_for(&self, seeds: &[u32]) -> Result<Matrix, ServeError> {
        let plan = self.plan_for(seeds)?;
        Ok(self.forward_planned(&plan).gather(seeds))
    }

    /// The "one query per full forward" baseline path: always runs the
    /// full-graph forward and gathers the seed rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::logits_for`].
    pub fn logits_full(&self, seeds: &[u32]) -> Result<Matrix, ServeError> {
        check_seeds(seeds, self.num_nodes())?;
        let all = self.forward_all();
        Ok(gather_rows(&all, seeds))
    }

    /// Forces the seed-restricted path regardless of the cost heuristic
    /// (benchmarking hook; `serve_bench` sweeps it against
    /// [`InferenceEngine::logits_full`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::logits_for`].
    pub fn logits_partial(&self, seeds: &[u32]) -> Result<Matrix, ServeError> {
        check_seeds(seeds, self.num_nodes())?;
        let frontier = Frontier::reverse_hops(&self.ctx.adj, seeds, self.layers.len())
            .map_err(|e| ServeError::BadModel(e.to_string()))?;
        let out = BatchLogits {
            logits: self.forward_partial(&frontier),
            seeds: Some(frontier.seeds().clone()),
        };
        Ok(out.gather(seeds))
    }
}

/// What one batched forward produced, plus routing metadata.
///
/// Returned by [`BatchEngine::forward_union`]; the server gathers each
/// query's rows from `logits` and feeds `shards` into its per-shard
/// counters.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Logits covering the batch's entire seed union.
    pub logits: BatchLogits,
    /// Per shard that served part of the batch: `(shard index, ran the
    /// seed-restricted partial path)`. A single unsharded engine reports
    /// one entry for shard 0.
    pub shards: Vec<(usize, bool)>,
}

impl BatchOutcome {
    /// True when any participating shard ran the partial path.
    pub fn any_partial(&self) -> bool {
        self.shards.iter().any(|&(_, p)| p)
    }
}

/// A forward backend the micro-batching [`crate::Server`] can drive: the
/// single-graph [`InferenceEngine`], or the sharded
/// [`crate::ShardedEngine`] router.
///
/// Implementations answer a whole batch's **seed union** in one call; the
/// server coalesces queries, deduplicates their seeds and gathers each
/// query's rows from the returned [`BatchOutcome`].
pub trait BatchEngine: Send + Sync {
    /// Number of nodes served (valid seeds are `0..num_nodes`).
    fn num_nodes(&self) -> usize;

    /// Logit (output) dimension.
    fn out_dim(&self) -> usize;

    /// Number of shards behind this engine (1 when unsharded); sizes the
    /// server's per-shard counters.
    fn num_shards(&self) -> usize;

    /// The weight set every answer is computed from; cache keys and
    /// [`crate::QueryAnswer`] carry it.
    fn generation(&self) -> SnapshotGeneration;

    /// The graph operand every answer is computed over. A sharded engine
    /// reports the one version shared by all its shard contexts.
    fn graph_version(&self) -> GraphVersion;

    /// The mutation epoch the engine currently serves. Frozen-graph
    /// engines are forever at epoch 0; a mutable engine
    /// ([`crate::mutation::DynamicEngine`]) advances it per applied
    /// batch, and every [`crate::QueryAnswer`] carries the epoch its
    /// logits were computed against (the staleness bound).
    fn epoch(&self) -> u64 {
        0
    }

    /// Hands the engine the server's attached [`crate::LogitCache`] so
    /// mutation-driven invalidation can target it. Frozen-graph engines
    /// ignore the hook.
    fn bind_cache(&self, cache: &std::sync::Arc<crate::LogitCache>) {
        let _ = cache;
    }

    /// Hands the engine the server's [`crate::FlightRecorder`] so
    /// engine-side incidents (epoch swaps, invalidation churn) land in
    /// the black box at their exact time. Frozen-graph engines ignore
    /// the hook.
    fn bind_recorder(&self, recorder: &std::sync::Arc<crate::FlightRecorder>) {
        let _ = recorder;
    }

    /// Runs one forward covering every seed in `union`.
    ///
    /// `union` is validated, sorted and deduplicated by the caller; the
    /// returned logits must gather bitwise-identical rows to a full-graph
    /// forward for every seed in it.
    fn forward_union(&self, union: &[u32]) -> BatchOutcome;

    /// [`BatchEngine::forward_union`] with telemetry: when `obs` carries
    /// the server's [`Telemetry`] hub and the batch id, the engine
    /// records plan time, forward wall time and (when
    /// [`crate::TelemetryConfig::kernel_timing`] is on) per-layer kernel
    /// laps into the hub's registry, plus batch-level spans when span
    /// recording is enabled. The default implementation ignores `obs` —
    /// results are identical either way.
    fn forward_union_observed(
        &self,
        union: &[u32],
        obs: Option<(&Telemetry, u64)>,
    ) -> BatchOutcome {
        let _ = obs;
        self.forward_union(union)
    }
}

impl BatchEngine for InferenceEngine {
    fn num_nodes(&self) -> usize {
        InferenceEngine::num_nodes(self)
    }

    fn out_dim(&self) -> usize {
        InferenceEngine::out_dim(self)
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn generation(&self) -> SnapshotGeneration {
        InferenceEngine::generation(self)
    }

    fn graph_version(&self) -> GraphVersion {
        InferenceEngine::graph_version(self)
    }

    fn forward_union(&self, union: &[u32]) -> BatchOutcome {
        // Seeds were validated upstream, so planning only fails on
        // internal inconsistency — fall back to the full forward.
        let plan = self.plan_for(union).unwrap_or(ForwardPlan::Full);
        let partial = plan.is_partial();
        BatchOutcome {
            logits: self.forward_planned(&plan),
            shards: vec![(0, partial)],
        }
    }

    fn forward_union_observed(
        &self,
        union: &[u32],
        obs: Option<(&Telemetry, u64)>,
    ) -> BatchOutcome {
        let Some((tel, batch_id)) = obs else {
            return self.forward_union(union);
        };
        let plan_start = Instant::now();
        let plan = self.plan_for(union).unwrap_or(ForwardPlan::Full);
        let plan_dur = plan_start.elapsed();
        tel.record_plan(plan_dur);
        if tel.spans_enabled() {
            tel.push_span("plan", batch_id, plan_start, plan_dur, union.len() as u64);
        }
        let partial = plan.is_partial();
        let path = if partial { "partial" } else { "full" };
        let fwd_start = Instant::now();
        let logits = if tel.config().kernel_timing {
            let mut timer = ForwardTimer::new();
            let out = self.forward_planned_timed(&plan, Some(&mut timer));
            tel.record_kernel_laps(path, timer.laps());
            out
        } else {
            self.forward_planned(&plan)
        };
        let fwd_dur = fwd_start.elapsed();
        tel.record_forward(path, fwd_dur);
        if tel.spans_enabled() {
            tel.push_span("forward", batch_id, fwd_start, fwd_dur, union.len() as u64);
        }
        BatchOutcome {
            logits,
            shards: vec![(0, partial)],
        }
    }
}

/// A [`BatchEngine`] decorator that injects a configurable delay into
/// every forward pass — the controlled slow-batch fault used by the SLO
/// incident tests and `serve_bench --slo` smoke (breach a latency
/// objective on demand, with bitwise-identical results).
///
/// The delay is a live atomic: `set_forward_delay(Duration::ZERO)`
/// clears the fault mid-run, which is how tests drive the
/// degraded → recovered health transition.
#[derive(Debug)]
pub struct FaultInjector<E> {
    inner: E,
    delay_us: std::sync::atomic::AtomicU64,
}

impl<E: BatchEngine> FaultInjector<E> {
    /// Wraps `inner` with no fault active.
    pub fn new(inner: E) -> Self {
        FaultInjector {
            inner,
            delay_us: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Sets the per-forward injected delay (zero clears the fault).
    pub fn set_forward_delay(&self, delay: std::time::Duration) {
        self.delay_us.store(
            delay.as_micros().min(u128::from(u64::MAX)) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// The currently injected per-forward delay.
    pub fn forward_delay(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.delay_us.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn stall(&self) {
        let us = self.delay_us.load(std::sync::atomic::Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

impl<E: BatchEngine> BatchEngine for FaultInjector<E> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn out_dim(&self) -> usize {
        self.inner.out_dim()
    }

    fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    fn generation(&self) -> SnapshotGeneration {
        self.inner.generation()
    }

    fn graph_version(&self) -> GraphVersion {
        self.inner.graph_version()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn bind_cache(&self, cache: &std::sync::Arc<crate::LogitCache>) {
        self.inner.bind_cache(cache);
    }

    fn bind_recorder(&self, recorder: &std::sync::Arc<crate::FlightRecorder>) {
        self.inner.bind_recorder(recorder);
    }

    fn forward_union(&self, union: &[u32]) -> BatchOutcome {
        self.stall();
        self.inner.forward_union(union)
    }

    fn forward_union_observed(
        &self,
        union: &[u32],
        obs: Option<(&Telemetry, u64)>,
    ) -> BatchOutcome {
        self.stall();
        self.inner.forward_union_observed(union, obs)
    }
}

/// Validates a query's seed set against the node count.
pub(crate) fn check_seeds(seeds: &[u32], num_nodes: usize) -> Result<(), ServeError> {
    if seeds.is_empty() {
        return Err(ServeError::EmptyQuery);
    }
    for &s in seeds {
        if s as usize >= num_nodes {
            return Err(ServeError::SeedOutOfRange { seed: s, num_nodes });
        }
    }
    Ok(())
}

/// Copies the given rows of `m` into a fresh `seeds.len() × cols` matrix.
pub(crate) fn gather_rows(m: &Matrix, seeds: &[u32]) -> Matrix {
    let mut out = Matrix::zeros(seeds.len(), m.cols());
    for (i, &s) in seeds.iter().enumerate() {
        out.row_mut(i).copy_from_slice(m.row(s as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxk_graph::generate;
    use maxk_nn::{GnnModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(arch: Arch, act: Activation) -> (Csr, Matrix, GnnModel) {
        let graph = generate::chung_lu_power_law(50, 5.0, 2.3, 2)
            .to_csr()
            .unwrap();
        let mut cfg = ModelConfig::new(arch, act, 8, 3);
        cfg.hidden_dim = 12;
        cfg.dropout = 0.0;
        let mut rng = StdRng::seed_from_u64(4);
        let model = GnnModel::new(cfg, &graph, &mut rng);
        let x = Matrix::xavier(50, 8, &mut rng);
        (graph, x, model)
    }

    #[test]
    fn engine_matches_model_eval_forward_bitwise() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Activation::Relu, Activation::MaxK(4)] {
                let (graph, x, mut model) = setup(arch, act);
                let snap = ModelSnapshot::capture(&model);
                let engine = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
                let mut rng = StdRng::seed_from_u64(0);
                let expected = model.forward(&x, false, &mut rng);
                assert_eq!(engine.forward_all(), expected, "{arch:?} {act:?}");
            }
        }
    }

    #[test]
    fn logits_for_gathers_seed_rows() {
        let (graph, x, model) = setup(Arch::Gcn, Activation::MaxK(4));
        let snap = ModelSnapshot::capture(&model);
        let engine = InferenceEngine::from_snapshot(&snap, &graph, x).unwrap();
        let all = engine.forward_all();
        let got = engine.logits_for(&[7, 0, 42]).unwrap();
        assert_eq!(got.shape(), (3, 3));
        assert_eq!(got.row(0), all.row(7));
        assert_eq!(got.row(1), all.row(0));
        assert_eq!(got.row(2), all.row(42));
    }

    #[test]
    fn seed_validation() {
        let (graph, x, model) = setup(Arch::Gcn, Activation::Relu);
        let snap = ModelSnapshot::capture(&model);
        let engine = InferenceEngine::from_snapshot(&snap, &graph, x).unwrap();
        assert!(matches!(
            engine.logits_for(&[]),
            Err(ServeError::EmptyQuery)
        ));
        assert!(matches!(
            engine.logits_for(&[50]),
            Err(ServeError::SeedOutOfRange { seed: 50, .. })
        ));
    }

    #[test]
    fn hand_built_inconsistent_snapshot_rejected_not_panicking() {
        // A snapshot that never went through the byte-format checks must
        // still be validated layer-by-layer at engine construction.
        let (graph, x, model) = setup(Arch::Gcn, Activation::MaxK(4));
        let mut snap = ModelSnapshot::capture(&model);
        snap.layers[0].neigh_weight = Matrix::zeros(8, 6); // wrong out_dim
        assert!(matches!(
            InferenceEngine::from_snapshot(&snap, &graph, x.clone()),
            Err(ServeError::BadModel(_))
        ));

        // Zero layers must be rejected too, not served as an identity
        // model with the wrong output dimension.
        let mut empty = ModelSnapshot::capture(&model);
        empty.layers.clear();
        empty.config.num_layers = 0;
        assert!(matches!(
            InferenceEngine::from_snapshot(&empty, &graph, x),
            Err(ServeError::BadModel(_))
        ));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (graph, x, model) = setup(Arch::Gcn, Activation::Relu);
        let snap = ModelSnapshot::capture(&model);
        let bad_rows = Matrix::zeros(49, 8);
        assert!(matches!(
            InferenceEngine::from_snapshot(&snap, &graph, bad_rows),
            Err(ServeError::BadModel(_))
        ));
        let bad_cols = Matrix::zeros(50, 9);
        assert!(matches!(
            InferenceEngine::from_snapshot(&snap, &graph, bad_cols),
            Err(ServeError::BadModel(_))
        ));
        drop(x);
    }

    #[test]
    fn partial_forward_bitwise_matches_full_all_combos() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            for act in [Activation::Relu, Activation::MaxK(4)] {
                let (graph, x, model) = setup(arch, act);
                let snap = ModelSnapshot::capture(&model);
                let engine = InferenceEngine::from_snapshot(&snap, &graph, x).unwrap();
                let seeds = [9u32, 0, 49, 9];
                let full = engine.logits_full(&seeds).unwrap();
                let partial = engine.logits_partial(&seeds).unwrap();
                assert_eq!(partial, full, "{arch:?} {act:?}");
            }
        }
    }

    #[test]
    fn heuristic_plan_stays_exact_both_ways() {
        let (graph, x, model) = setup(Arch::Sage, Activation::MaxK(4));
        let snap = ModelSnapshot::capture(&model);
        // Force each decision via the heuristic knobs.
        for cfg in [
            maxk_nn::PlanConfig {
                seed_frac_cutoff: 1.0,
                work_ratio: 1.1, // always partial
            },
            maxk_nn::PlanConfig {
                seed_frac_cutoff: 0.0,
                work_ratio: 0.0, // always full
            },
        ] {
            let engine = InferenceEngine::from_snapshot(&snap, &graph, x.clone())
                .unwrap()
                .with_plan_config(cfg);
            let plan = engine.plan_for(&[2, 31]).unwrap();
            assert_eq!(plan.is_partial(), cfg.work_ratio > 1.0);
            let out = engine.forward_planned(&plan);
            assert_eq!(out.is_compact(), plan.is_partial());
            assert_eq!(out.gather(&[2, 31]), engine.logits_full(&[2, 31]).unwrap());
        }
    }

    #[test]
    fn context_reuse_skips_renormalization() {
        let (graph, x, model) = setup(Arch::Sage, Activation::MaxK(4));
        let snap = ModelSnapshot::capture(&model);
        let first = InferenceEngine::from_snapshot(&snap, &graph, x.clone()).unwrap();
        let second = InferenceEngine::with_context(&snap, first.context().clone(), x).unwrap();
        assert_eq!(first.forward_all(), second.forward_all());
    }
}
