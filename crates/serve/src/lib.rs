//! Batched inference serving for the MaxK-GNN reproduction.
//!
//! Training (the `maxk-nn` crate) ends with a trained `GnnModel`; this
//! crate is everything after that:
//!
//! * **Snapshots** — models persist through
//!   [`maxk_nn::snapshot::ModelSnapshot`]'s versioned binary format and
//!   reload bit-exactly;
//! * [`InferenceEngine`] — an immutable, `Arc`-shareable eval-mode
//!   forward path over the `maxk-core` SpGEMM/SpMM kernels, with the
//!   per-graph normalization computed once and cached. Per batch it
//!   plans **full-graph vs. seed-restricted partial forward**
//!   ([`ForwardPlan`]): when the batch's seed-union reverse frontier is
//!   small, only the frontier rows are computed (`maxk_core::subset`
//!   kernels), bitwise-equal to the full forward for the requested seeds;
//! * [`ShardedEngine`] — sharded serving: the graph splits into `S`
//!   halo-augmented shards (`maxk_graph::shard`), one [`InferenceEngine`]
//!   per shard holding only its owned nodes plus their reverse L-hop
//!   ghost rows; a scatter/gather router answers any seed set
//!   bitwise-identically to the single engine, so serving capacity
//!   scales with shard count instead of one machine's memory;
//! * [`exec`] — the concurrency substrate: every serving layer spawns
//!   workers, scopes fan-out, and builds channels through the
//!   [`Executor`] trait ([`StdThreadExecutor`] is the thread-per-worker
//!   default, and the single seam where an async backend can slot in);
//! * [`Server`] — a micro-batching request queue (on [`exec`]):
//!   queries arriving within a configurable window coalesce
//!   into one batched forward, so a batch of `B` queries costs one
//!   forward instead of `B`; it drives any [`BatchEngine`] (single or
//!   sharded);
//! * [`LogitCache`] — an opt-in bounded seed-level logit cache keyed by
//!   `(SnapshotGeneration, GraphVersion, seed)` with CLOCK eviction and
//!   in-flight coalescing: under Zipf traffic a hot seed is computed
//!   once per weight/graph identity, repeats are answered without
//!   touching the engine, and identical seeds wanted by overlapping
//!   batches share one computation ([`ServerBuilder::cache_capacity`]
//!   enables it; [`StatsSnapshot::cache`] reports
//!   hits/misses/coalesced/evictions);
//! * [`DynamicEngine`] — streaming graph mutations on a live server:
//!   edge inserts/deletes and feature writes are applied incrementally
//!   (CSR splice + dirty-row renormalization, never a from-scratch
//!   rebuild), a new engine epoch is swapped in atomically, and the
//!   mutation's reverse L-hop dirty cone is invalidated from the cache
//!   ([`InvalidationStrategy::DirtyCone`]) instead of cold-starting every
//!   row; answers carry the epoch they were computed against
//!   ([`QueryAnswer::epoch`]) and post-mutation logits are bitwise
//!   identical to an engine built fresh on the mutated graph;
//! * [`admission`] — the control plane between clients and the batcher:
//!   a **bounded ingress queue** with a pluggable overload policy
//!   ([`OverloadPolicy`]: block, reject-newest, drop-oldest, or
//!   deadline-aware shedding) and per-client token-bucket fairness
//!   ([`FairnessConfig`]), so offered load past forward throughput
//!   yields bounded p99 and explicit [`QueryResponse::Rejected`] /
//!   [`QueryResponse::Shed`] outcomes instead of unbounded queueing;
//! * [`LatencyHistogram`] / [`StatsSnapshot`] — p50/p95/p99 latency,
//!   throughput, admission accounting (submitted/rejected/shed, queue
//!   depth and its peak) and per-client stats on the serving path;
//! * [`replay`] / [`open_loop`] — Zipf-traffic load generators with
//!   deterministic per-client query streams ([`QueryStream`]):
//!   closed-loop replay for sustainable-throughput benchmarks, and an
//!   open-loop Poisson process that can push offered load past
//!   saturation to measure overload behavior (`serve_bench` in
//!   `maxk-bench` emits both `BENCH_serve.json` and
//!   `BENCH_admission.json` from them).
//!
//! # Quickstart
//!
//! ```
//! use maxk_serve::{InferenceEngine, Server};
//! use maxk_nn::snapshot::ModelSnapshot;
//! use maxk_nn::{Activation, Arch, GnnModel, ModelConfig};
//! use maxk_graph::generate;
//! use maxk_tensor::Matrix;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! // Train (elsewhere), snapshot, then serve:
//! let graph = generate::chung_lu_power_law(50, 5.0, 2.3, 1).to_csr().unwrap();
//! let mut cfg = ModelConfig::new(Arch::Gcn, Activation::MaxK(4), 8, 3);
//! cfg.hidden_dim = 16;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = GnnModel::new(cfg, &graph, &mut rng);
//! let snapshot = ModelSnapshot::capture(&model);
//!
//! let features = Matrix::xavier(50, 8, &mut rng);
//! let engine = Arc::new(InferenceEngine::from_snapshot(&snapshot, &graph, features).unwrap());
//! let server = Server::builder()
//!     .cache_capacity(1024) // seed-level logit cache (optional)
//!     .start(engine);
//! // Under the default `Block` admission policy every valid query is
//! // answered; overload policies surface Rejected/Shed outcomes here.
//! let answer = server.handle().query(&[0, 7, 13]).unwrap().into_answer().unwrap();
//! assert_eq!(answer.logits.shape(), (3, 3));
//! // A repeat of hot seeds is served from the cache, bitwise-identical:
//! let again = server.handle().query(&[0, 7, 13]).unwrap().into_answer().unwrap();
//! assert!(again.cached);
//! assert_eq!(again.logits, answer.logits);
//! let stats = server.shutdown();
//! assert_eq!(stats.queries, 2);
//! assert_eq!(stats.cached_queries, 1);
//! assert_eq!(stats.submitted, 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod exec;
pub mod loadgen;
pub mod metrics;
pub mod mutation;
pub mod router;
pub mod server;
pub mod telemetry;

pub use admission::{
    AdaptiveConfig, AdaptiveController, AdaptiveSnapshot, AdmissionConfig, AdmissionTotals,
    ClassStats, ClassWeights, FairnessConfig, OverloadPolicy, RejectReason, ShedReason,
};
pub use cache::{CacheConfig, CacheKey, CacheSnapshot, LogitCache};
pub use engine::{BatchEngine, BatchLogits, BatchOutcome, FaultInjector, InferenceEngine};
pub use exec::{Executor, ShutdownBarrier, StdThreadExecutor, TaskScope, Worker};
pub use loadgen::{
    open_loop, replay, LoadConfig, LoadReport, OpenLoopConfig, OpenLoopReport, QueryStream,
    ZipfSampler,
};
pub use maxk_graph::shard::ShardStrategy;
pub use maxk_nn::plan::{ForwardPlan, PlanConfig};
pub use maxk_nn::{GraphVersion, SnapshotGeneration};
pub use metrics::{ClientStats, EvictedClientStats, LatencyHistogram, LatencySummary};
pub use mutation::{
    DynamicEngine, DynamicStats, InvalidationStrategy, Mutation, MutationIngress, MutationReport,
};
pub use router::{ShardConfig, ShardInfo, ShardedEngine};
pub use server::{
    BuildInfo, PendingQuery, QueryAnswer, QueryOptions, QueryResponse, ServeConfig, Server,
    ServerBuilder, ServerHandle, StatsSnapshot, StatsSource,
};
pub use telemetry::{
    AnswerObs, EventKind, FlightEvent, FlightRecorder, HealthCheck, HealthReport, IncidentReport,
    MetricsExporter, RecorderConfig, Registry, SloConfig, SloEvent, SloHub, SloKind, SloSpec,
    SloSpecSet, SloState, SloStatus, SloTracker, SpanRecord, Stage, StageBreakdown, Telemetry,
    TelemetryConfig, TraceContext, TraceRing,
};

use std::error::Error;
use std::fmt;

/// Errors on the serving path.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A query referenced a node outside the served graph.
    SeedOutOfRange {
        /// The offending seed id.
        seed: u32,
        /// Number of nodes actually served.
        num_nodes: usize,
    },
    /// A query carried no seeds.
    EmptyQuery,
    /// The server has shut down (or a channel endpoint was dropped).
    ChannelClosed,
    /// Snapshot/feature/graph shapes disagree.
    BadModel(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::SeedOutOfRange { seed, num_nodes } => {
                write!(f, "seed {seed} out of range (serving {num_nodes} nodes)")
            }
            ServeError::EmptyQuery => write!(f, "query carried no seeds"),
            ServeError::ChannelClosed => write!(f, "serving channel closed"),
            ServeError::BadModel(msg) => write!(f, "bad model for serving: {msg}"),
        }
    }
}

impl Error for ServeError {}
